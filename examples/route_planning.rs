//! Optimal route planning (MaxRkNNT / MinRkNNT): find, between two stops of
//! the bus network, the route that attracts the most (or the fewest)
//! passengers without exceeding a travel-distance threshold — the Uber-driver
//! and ambulance scenarios from the paper's introduction.
//!
//! Run with `cargo run --release --example route_planning`.

use rknnt::prelude::*;
use rknnt::routeplan::{BruteForcePlanner, PruningPlanner};

fn main() {
    // City, passengers, indexes and the bus-network graph. Planning
    // pre-computation is cubic in the vertex count (one RkNNT per vertex +
    // all-pairs shortest distances), so the example city is kept small
    // enough that CI can build and run it in seconds; scale `num_routes`
    // up for a more realistic network.
    let mut city_config = CityConfig::small(23);
    city_config.num_routes = 24;
    city_config.stops_per_route = (6, 14);
    let city = CityGenerator::new(city_config).generate();
    let routes = city.route_store();
    let transitions =
        TransitionGenerator::new(TransitionConfig::checkin_like(2_000, 9)).generate_store(&city);
    let graph = city.graph();

    // Pre-computation (Algorithm 5): one RkNNT per vertex + all-pairs
    // shortest distances. k is fixed here, as in the paper.
    let config = PlannerConfig {
        k: 5,
        max_candidate_paths: 512,
    };
    let pre = Precomputation::build(&graph, &routes, &transitions, config.k);
    println!(
        "pre-computation: {:?} for per-vertex RkNNT, {:?} for all-pairs shortest distances",
        pre.rknnt_time(),
        pre.shortest_time()
    );

    // Plan between the endpoints of the longest existing line — guaranteed
    // connected in the bus network — and allow a 40% detour over the
    // shortest possible travel distance.
    let longest = city
        .routes
        .iter()
        .max_by_key(|r| r.len())
        .expect("at least one route");
    let start = graph
        .nearest_vertex(longest.first().expect("route"))
        .expect("non-empty graph");
    let end = graph
        .nearest_vertex(longest.last().expect("route"))
        .expect("non-empty graph");
    let shortest = pre.matrix().distance(start, end);
    assert!(shortest.is_finite(), "route endpoints are connected");
    let query = rknnt::routeplan::PlanQuery {
        start,
        end,
        tau: shortest * 1.4,
    };
    println!(
        "planning from {start} to {end}: shortest possible {:.0} m, threshold τ = {:.0} m",
        shortest, query.tau
    );

    // The efficient planner (Algorithm 6) for both objectives, plus the
    // brute-force planner as a sanity check on the passenger counts.
    let pruning = PruningPlanner::new(&graph, &pre);
    let brute = BruteForcePlanner::new(&graph, &routes, &transitions, config);
    for objective in [Objective::Maximize, Objective::Minimize] {
        let fast = pruning.plan(&query, objective);
        let slow = brute.plan(&query, objective);
        let label = match objective {
            Objective::Maximize => "MaxRkNNT",
            Objective::Minimize => "MinRkNNT",
        };
        println!(
            "{label}: {:>3} passengers over {:>7.0} m and {:>2} stops \
             (pruning search {:?}, {} partial routes; brute force agrees: {})",
            fast.passenger_count(),
            fast.travel_distance(),
            fast.route.as_ref().map(|r| r.len()).unwrap_or(0),
            fast.elapsed,
            fast.candidates_examined,
            fast.passenger_count() == slow.passenger_count(),
        );
    }
}
