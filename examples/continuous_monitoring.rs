//! Continuous RkNNT monitoring: standing subscriptions kept current under
//! store churn, with per-update deltas instead of re-polling.
//!
//! A transit-planning dashboard watches a handful of candidate corridors:
//! "which passenger transitions would adopt this route?" The answer must
//! stay fresh as requests arrive and expire and as lines occasionally
//! change. Re-running every watched query after every update burns CPU on
//! answers that did not change; [`QueryService::subscribe`] instead keeps
//! each standing result current across [`QueryService::apply_updates`] —
//! classifying each subscription per update as unaffected, certified stable
//! or dirty, re-executing only the dirty ones — and reports what changed as
//! [`SubscriptionDelta`]s.
//!
//! Run with `cargo run --release --example continuous_monitoring`.

use rknnt::data::{workload, ChurnConfig, ChurnEvent};
use rknnt::prelude::*;
use rknnt::service::StoreUpdate;

fn main() {
    let city = CityGenerator::new(CityConfig::small(47)).generate();
    let routes = city.route_store();
    let transitions =
        TransitionGenerator::new(TransitionConfig::checkin_like(4_000, 13)).generate_store(&city);

    let mut service = QueryService::new(routes, transitions, ServiceConfig::default());

    // Watch 8 candidate corridors as standing queries.
    let watched = workload::rknnt_queries(&city, 8, 4, 1_000.0, 5);
    let subs: Vec<SubscriptionId> = watched
        .iter()
        .map(|route| service.subscribe(RknntQuery::exists(route.clone(), 5)))
        .collect();
    for id in &subs {
        println!(
            "{id}: {} transitions would adopt the corridor",
            service.subscription_result(*id).unwrap().len()
        );
    }

    // A morning of churn: transition-dominated updates with occasional line
    // changes, resolved against the live id lists.
    let stream = workload::churn_stream(&city, &ChurnConfig::new(600, 1.0, 99));
    let mut live = service.transitions().transition_ids();
    let mut live_routes = service.routes().route_ids();
    let (mut updates_applied, mut reexecutions, mut stable, mut unaffected) = (0, 0, 0, 0);
    let mut delta_log = 0usize;

    for chunk in stream.chunks(20) {
        let updates: Vec<StoreUpdate> = chunk
            .iter()
            .filter_map(|event| match event {
                ChurnEvent::InsertTransition(origin, destination) => {
                    Some(StoreUpdate::InsertTransition {
                        origin: *origin,
                        destination: *destination,
                    })
                }
                ChurnEvent::ExpireTransition(draw) => {
                    if live.is_empty() {
                        return None;
                    }
                    let victim = *draw as usize % live.len();
                    Some(StoreUpdate::ExpireTransition(live.swap_remove(victim)))
                }
                ChurnEvent::InsertRoute(points) => Some(StoreUpdate::InsertRoute(points.clone())),
                ChurnEvent::RemoveRoute(draw) => {
                    if live_routes.len() <= 4 {
                        return None;
                    }
                    let victim = *draw as usize % live_routes.len();
                    Some(StoreUpdate::RemoveRoute(live_routes.swap_remove(victim)))
                }
                ChurnEvent::Query(_) => None,
            })
            .collect();
        let stats = service.apply_updates(updates);
        live.extend(stats.inserted_transitions.iter().copied());
        live_routes.extend(stats.inserted_routes.iter().copied());
        updates_applied += stats.applied;
        reexecutions += stats.subs_reexecuted;
        stable += stats.subs_stable;
        unaffected += stats.subs_unaffected;
        // The dashboard consumes deltas, never re-polls.
        for delta in &stats.deltas {
            delta_log += 1;
            if delta_log <= 5 {
                println!(
                    "delta: {} +{} / -{} transitions ({:?})",
                    delta.subscription,
                    delta.entered.len(),
                    delta.left.len(),
                    delta.reason,
                );
            }
        }
    }

    let classified = (unaffected + stable + reexecutions) as f64;
    println!(
        "\n{updates_applied} updates against {} subscriptions: \
         {unaffected} unaffected, {stable} certified stable, \
         {reexecutions} re-executed ({:.1}% of the re-run-all cost), \
         {delta_log} deltas emitted",
        subs.len(),
        100.0 * reexecutions as f64 / classified.max(1.0),
    );

    // The maintained results are byte-identical to fresh execution.
    let fresh = EngineKind::Voronoi.build(service.routes(), service.transitions());
    for (id, route) in subs.iter().zip(&watched) {
        let expected = fresh.execute(&RknntQuery::exists(route.clone(), 5));
        assert_eq!(
            service.subscription_result(*id).unwrap(),
            expected.transitions.as_slice(),
            "maintained result diverged"
        );
    }
    println!("all maintained results verified against fresh execution");
}
