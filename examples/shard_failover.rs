//! Distributed shard fleet with partial-failure semantics: a shard dies
//! mid-stream, the router degrades to typed partial answers, and recovery
//! resyncs the shard from the router's update log.
//!
//! The example builds a four-shard [`FleetRouter`] — each shard a real
//! `rknnt_net` server behind a health-tracked connection with deadlines,
//! seeded retry backoff and a circuit breaker — plus an unsharded
//! [`QueryService`] as the reference. A stream of localized demand probes
//! and updates runs against both; a third of the way in, one shard is
//! killed. While it is down every answer is a typed [`FleetResult`] naming
//! the missing shard and carrying *exactly* the healthy-shard subset of
//! the reference answer (asserted below — never a silent wrong answer,
//! never a hang), and updates routed to the dead shard defer in the
//! router's log. After a restart the router health-probes the shard's
//! applied-update watermark, replays only the missing suffix, and answers
//! are byte-identical to the reference again.
//!
//! Run with `cargo run --release --example shard_failover`.
//! Exits nonzero if any invariant fails — CI runs it as a chaos smoke.

use rknnt::data::workload;
use rknnt::net::{FleetConfig, FleetRouter, RemoteShardConfig};
use rknnt::prelude::*;
use rknnt::service::StoreUpdate;

/// Local trips only: both endpoints in one neighbourhood, so transitions
/// shard cleanly by origin cell.
fn local_pairs(city: &rknnt::data::City, count: usize, seed: u64) -> Vec<(Point, Point)> {
    TransitionGenerator::new(TransitionConfig::checkin_like(count, seed))
        .generate(city)
        .into_iter()
        .map(|(origin, destination)| {
            let dx = destination.x - origin.x;
            let dy = destination.y - origin.y;
            let len = (dx * dx + dy * dy).sqrt().max(1.0);
            let cap = 600.0_f64.min(len);
            (
                origin,
                Point::new(origin.x + dx * cap / len, origin.y + dy * cap / len),
            )
        })
        .collect()
}

fn main() {
    let city = CityGenerator::new(CityConfig::small(42)).generate();
    let pairs = local_pairs(&city, 2_000, 7);

    let mut reference = QueryService::new(
        city.route_store(),
        TransitionStore::bulk_build(Default::default(), pairs.clone()),
        ServiceConfig::default(),
    );
    let mut fleet = FleetRouter::bulk_build(
        FleetConfig {
            shards: 4,
            remote: RemoteShardConfig {
                failure_threshold: 2,
                ..RemoteShardConfig::default()
            },
            ..FleetConfig::default()
        },
        city.routes.clone(),
        pairs,
    )
    .expect("fleet build");
    println!(
        "fleet up: {} shards, each a TCP server behind retry + breaker dispatch",
        fleet.shard_count()
    );

    // A stream of neighbourhood probes interleaved with inserts near the
    // probed corridors.
    let probes: Vec<RknntQuery> = workload::rknnt_queries(&city, 30, 3, 400.0, 42 ^ 0xbee)
        .into_iter()
        .map(|route| RknntQuery::exists(route, 1))
        .collect();
    let inserts = local_pairs(&city, probes.len(), 99);
    let victim = 1usize;
    let kill_at = probes.len() / 3;
    let recover_at = 2 * probes.len() / 3;
    let mut degraded = 0usize;
    for (i, probe) in probes.iter().enumerate() {
        if i == kill_at {
            fleet.kill_shard(victim, "example: simulated shard crash");
            println!("-- step {i}: shard {victim} killed --");
        }
        if i == recover_at {
            fleet
                .restart_shard(victim)
                .expect("restart must resync from the router log");
            let (acked, total) = fleet.shard_progress(victim);
            assert_eq!(acked, total, "resync must drain the deferred records");
            println!("-- step {i}: shard {victim} restarted, log replayed to {total} --");
        }
        // One insert per step keeps the stores churning; while the victim
        // is down its records defer in the router log.
        let (origin, destination) = inserts[i];
        reference.apply_updates(vec![StoreUpdate::InsertTransition {
            origin,
            destination,
        }]);
        fleet.apply_updates(vec![StoreUpdate::InsertTransition {
            origin,
            destination,
        }]);

        let want = reference.execute(probe).transitions;
        let answer = fleet.execute(probe);
        if answer.is_complete() {
            assert_eq!(
                answer.transitions, want,
                "a complete fleet answer must be byte-identical to the reference"
            );
        } else {
            degraded += 1;
            assert_eq!(
                answer.missing_shards,
                vec![victim],
                "degradation must name exactly the dead shard"
            );
            let healthy: Vec<TransitionId> = want
                .iter()
                .copied()
                .filter(|id| fleet.owner_of(*id) != Some(victim))
                .collect();
            assert_eq!(
                answer.transitions, healthy,
                "a degraded answer must be exactly the healthy-shard subset"
            );
        }
    }
    assert!(degraded > 0, "the outage window must cover some probes");
    let stats = fleet.shard_stats(victim);
    println!(
        "{} probes: {} degraded (typed, exact healthy subset), rest byte-identical",
        probes.len(),
        degraded
    );
    println!(
        "victim dispatch stats: {} dispatches, {} retries, {} breaker denials, {} dials",
        stats.dispatches, stats.retries, stats.breaker_denials, stats.dials
    );
    print!("{}", fleet.metrics_text());
    fleet.shutdown();
    println!("every partial-failure invariant held");
}
