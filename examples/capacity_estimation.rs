//! Capacity estimation for an existing bus line (the paper's headline use
//! case): how many passengers would take each existing route as one of their
//! k nearest travel options, and how does the answer change as new passenger
//! transitions stream in?
//!
//! Run with `cargo run --release --example capacity_estimation`.

use rknnt::core::RknnTEngine;
use rknnt::prelude::*;

fn main() {
    // A medium synthetic city and an initial batch of passenger transitions.
    let city = CityGenerator::new(CityConfig::small(11)).generate();
    let routes = city.route_store();
    let mut transitions =
        TransitionGenerator::new(TransitionConfig::checkin_like(8_000, 5)).generate_store(&city);

    // Estimate the capacity (|RkNNT| with k = 5) of the five longest routes.
    let mut by_len: Vec<usize> = (0..city.routes.len()).collect();
    by_len.sort_by_key(|i| std::cmp::Reverse(city.routes[*i].len()));
    let engine = VoronoiEngine::new(&routes, &transitions);
    println!("-- initial capacity estimates (k = 5) --");
    let mut watched = Vec::new();
    for &i in by_len.iter().take(5) {
        let query = RknntQuery::exists(city.routes[i].clone(), 5);
        let result = engine.execute(&query);
        println!(
            "route #{i:<3} ({:>2} stops): {:>4} potential passengers",
            city.routes[i].len(),
            result.len()
        );
        watched.push(i);
    }

    // New passenger requests arrive near the first watched route: dynamic
    // updates go straight into the TR-tree, no retraining needed (this is
    // the advantage over the model-based planners discussed in Sec. 2.2).
    let hot_route = &city.routes[watched[0]];
    let mid = hot_route[hot_route.len() / 2];
    for j in 0..200 {
        let offset = 30.0 + (j % 17) as f64 * 10.0;
        transitions
            .insert(
                Point::new(mid.x + offset, mid.y + offset / 2.0),
                Point::new(mid.x - offset, mid.y - offset),
            )
            .expect("finite endpoints");
    }
    println!(
        "\n-- after 200 new transitions near route #{} --",
        watched[0]
    );
    let engine = VoronoiEngine::new(&routes, &transitions);
    for &i in &watched {
        let query = RknntQuery::exists(city.routes[i].clone(), 5);
        let result = engine.execute(&query);
        println!(
            "route #{i:<3} ({:>2} stops): {:>4} potential passengers",
            city.routes[i].len(),
            result.len()
        );
    }

    // The strict ∀ semantics (both endpoints must prefer the route) gives a
    // conservative capacity lower bound.
    let strict = engine.execute(&RknntQuery::for_all(city.routes[watched[0]].clone(), 5));
    println!(
        "\nroute #{}: {} passengers under the strict (∀) semantics",
        watched[0],
        strict.len()
    );
}
