//! Durability end to end: write, crash, recover, verify.
//!
//! The example drives the storage engine the way a deployment would:
//!
//! 1. build a small city and attach a storage directory to the service
//!    (initial checkpoint = the snapshot);
//! 2. stream live updates through `apply_updates` — each batch is WAL-logged
//!    before it applies;
//! 3. checkpoint mid-stream, then keep streaming so the WAL holds a tail the
//!    snapshot does not cover;
//! 4. *crash*: drop the service without any shutdown ceremony;
//! 5. reopen with `QueryService::open` — snapshot + WAL replay — and verify
//!    the recovered service answers byte-identically to an uninterrupted
//!    in-memory twin that saw the exact same updates.
//!
//! Run with `cargo run --release --example durability`. The exit code is
//! nonzero if any recovered answer diverges, which is what lets CI use this
//! example as its storage smoke test.

use rknnt::prelude::*;
use rknnt::service::StoreUpdate;

fn main() {
    // A small city and a day's worth of passenger transitions.
    let city = CityGenerator::new(CityConfig::small(23)).generate();
    let routes = city.route_store();
    let generator = TransitionGenerator::new(TransitionConfig::checkin_like(2_000, 7));
    let mut transitions = rknnt::index::TransitionStore::default();
    let pairs = generator.generate(&city);
    for (o, d) in &pairs[..1_000] {
        transitions.insert(*o, *d);
    }

    let config = ServiceConfig::default().with_workers(2);
    let dir = std::env::temp_dir().join(format!("rknnt-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The durable service and its uninterrupted in-memory twin.
    let mut durable = QueryService::new(routes.clone(), transitions.clone(), config);
    let mut twin = QueryService::new(routes, transitions, config);
    let stats = durable
        .attach_storage(&dir, StorageConfig::default())
        .expect("attach storage");
    println!(
        "attached {} — initial snapshot {} bytes",
        dir.display(),
        stats.snapshot_bytes
    );

    // Stream updates: new requests arrive, old ones expire, applied in
    // batches of 25 (one WAL fsync per batch). Checkpoint once mid-stream.
    let mut expired = 0u32;
    let mut batches = 0usize;
    for chunk in pairs[1_000..].chunks(25) {
        let mut batch: Vec<StoreUpdate> = chunk
            .iter()
            .map(|(o, d)| StoreUpdate::InsertTransition {
                origin: *o,
                destination: *d,
            })
            .collect();
        for _ in 0..10 {
            batch.push(StoreUpdate::ExpireTransition(TransitionId(expired)));
            expired += 1;
        }
        let stats = durable.apply_updates(batch.clone());
        twin.apply_updates(batch);
        batches += 1;
        if batches == 20 {
            let cp = durable.checkpoint().expect("mid-stream checkpoint");
            println!(
                "checkpoint after {batches} batches: snapshot {} bytes, WAL truncated to {} segments",
                cp.snapshot_bytes, cp.segments
            );
        } else if batches.is_multiple_of(10) {
            println!(
                "batch {batches}: {} WAL frames, {} bytes this batch",
                stats.wal_appends, stats.wal_bytes
            );
        }
    }
    let pre_crash = durable.storage_stats().expect("storage attached");
    println!(
        "pre-crash: next_seq {}, {} segments, {} WAL bytes beyond the snapshot",
        pre_crash.next_seq, pre_crash.segments, pre_crash.wal_bytes
    );
    println!("pre-crash metrics snapshot (WAL fsync / checkpoint latencies):");
    for line in durable.metrics_text().lines() {
        if line.starts_with("histogram=storage.")
            || line.starts_with("gauge=storage.")
            || line.starts_with("counter=storage.")
            || line.starts_with("counter=service.update.")
        {
            println!("  {line}");
        }
    }

    // The crash: no checkpoint, no flush call, just gone.
    drop(durable);

    // Recovery: snapshot + WAL tail, replayed through the update path.
    let (recovered, stats) =
        QueryService::open(&dir, config, StorageConfig::default()).expect("recover");
    println!(
        "recovered: replayed {} WAL records (torn tail: {})",
        stats.replayed_records, stats.torn_tail
    );
    println!("recovered metrics snapshot (replay went through the update path):");
    for line in recovered.metrics_text().lines() {
        if line.starts_with("counter=service.update.") {
            println!("  {line}");
        }
    }

    // Verify: byte-identical answers against the uninterrupted twin.
    let queries: Vec<RknntQuery> = city.routes[..20]
        .iter()
        .map(|route| RknntQuery::exists(route.clone(), 5))
        .collect();
    let (twin_answers, _) = twin.execute_batch(&queries);
    let (recovered_answers, _) = recovered.execute_batch(&queries);
    let mut diverged = 0usize;
    let mut qualifying = 0usize;
    for (a, b) in twin_answers.iter().zip(&recovered_answers) {
        if a.transitions != b.transitions {
            diverged += 1;
        }
        qualifying += a.len();
    }
    println!(
        "verified {} queries ({} qualifying transitions): {} diverged",
        queries.len(),
        qualifying,
        diverged
    );
    assert_eq!(
        recovered.transitions().len(),
        twin.transitions().len(),
        "live transition counts must match"
    );

    let _ = std::fs::remove_dir_all(&dir);
    if diverged > 0 {
        eprintln!("FAIL: recovered answers diverged from the uninterrupted twin");
        std::process::exit(1);
    }
    println!("OK: crash recovery is exact");
}
