//! Service throughput: drive the batch query service over a synthetic city
//! and watch QPS, worker fan-out, shared-filter reuse and cache hits.
//!
//! Run with `cargo run --release --example service_throughput -- \
//!     [--queries N] [--batch N] [--workers N] [--k N] \
//!     [--semantics exists|forall] [--engine auto|voronoi|...]`.
//!
//! The engine and semantics flags are parsed through the `FromStr` impls on
//! [`EnginePolicy`] and [`Semantics`] — no hard-coded variants.

use rknnt::data::workload;
use rknnt::prelude::*;

struct Args {
    queries: usize,
    batch: usize,
    workers: usize,
    k: usize,
    semantics: Semantics,
    policy: EnginePolicy,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        queries: 512,
        batch: 256,
        workers: 4,
        k: 10,
        semantics: Semantics::Exists,
        policy: EnginePolicy::Auto,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--queries" => {
                args.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--semantics" => args.semantics = value("--semantics")?.parse()?,
            "--engine" => args.policy = value("--engine")?.parse()?,
            other => {
                return Err(format!(
                    "unknown flag {other}; expected --queries, --batch, --workers, --k, \
                     --semantics or --engine"
                ))
            }
        }
    }
    if args.batch == 0 || args.queries == 0 {
        return Err("--queries and --batch must be positive".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    // A small city and a check-in-like transition set, as in `quickstart`.
    let city = CityGenerator::new(CityConfig::small(42)).generate();
    let transitions =
        TransitionGenerator::new(TransitionConfig::checkin_like(20_000, 7)).generate_store(&city);
    let routes = city.route_store();
    println!(
        "city: {} routes, {} stops, {} transitions",
        routes.num_routes(),
        routes.num_stops(),
        transitions.len()
    );

    // The query stream cycles a pool of generated routes, so popular routes
    // repeat — the shape that makes batching and caching pay.
    let pool = workload::rknnt_queries(&city, 32, 5, 1_000.0, 3);
    let stream: Vec<RknntQuery> = (0..args.queries)
        .map(|i| RknntQuery {
            route: pool[i % pool.len()].clone(),
            k: args.k,
            semantics: args.semantics,
        })
        .collect();

    let service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(args.workers)
            .with_policy(args.policy),
    );
    println!(
        "service: policy {}, {} workers, batch {}, {} semantics\n",
        args.policy, args.workers, args.batch, args.semantics
    );

    let started = std::time::Instant::now();
    let mut answered = 0usize;
    let mut total = BatchStats::default();
    for chunk in stream.chunks(args.batch) {
        let (results, stats) = service.execute_batch(chunk);
        answered += results.len();
        total.cache_hits += stats.cache_hits;
        total.groups += stats.groups;
        total.filter_constructions += stats.filter_constructions;
        total.filters_saved += stats.filters_saved;
        total.duplicates_coalesced += stats.duplicates_coalesced;
    }
    let elapsed = started.elapsed();

    println!(
        "answered {answered} queries in {:.2}s -> {:.0} QPS",
        elapsed.as_secs_f64(),
        answered as f64 / elapsed.as_secs_f64()
    );
    println!(
        "groups {} | filter constructions {} (saved {}) | duplicates coalesced {} | cache hits {}",
        total.groups,
        total.filter_constructions,
        total.filters_saved,
        total.duplicates_coalesced,
        total.cache_hits
    );
    let cache = service.cache_stats();
    let lookups = cache.hits + cache.misses;
    println!(
        "cache: {} hits / {} misses / {} insertions / {} evictions (hit rate {:.1}%)",
        cache.hits,
        cache.misses,
        cache.insertions,
        cache.evictions,
        if lookups == 0 {
            0.0
        } else {
            100.0 * cache.hits as f64 / lookups as f64
        }
    );

    // The same run through the telemetry layer: per-stage latency
    // percentiles and the full counter catalog, straight from the registry.
    println!("\nmetrics snapshot (per-stage breakdown):");
    for line in service.metrics_text().lines() {
        println!("  {line}");
    }
}
