//! Spatial sharding: a city partitioned into Z-order shards behind a
//! footprint-pruned router.
//!
//! The example builds the same city twice — once as a single
//! [`QueryService`], once as a [`ShardedService`] with 8 shards — and runs
//! a round of localized demand probes (short routes, k = 1) against both.
//! Every transition lives in exactly one shard, chosen by the Z-order cell
//! of its origin; at query time the router builds the filter once against
//! its full-city planner replica and skips every shard whose TR-tree root
//! MBR the filter certifies candidate-free. Answers are byte-identical to
//! the unsharded service — asserted below — and the router's fan-out
//! counters show how much of the fleet each query actually touched.
//!
//! Run with `cargo run --release --example shard_scaleout`.

use rknnt::data::workload;
use rknnt::prelude::*;
use rknnt::service::{ShardedConfig, ShardedService};

/// Demand here is local trips: both endpoints in one neighbourhood. That
/// is the workload sharding is for — a hub-to-hub trip would pin its
/// far-away destination into its origin's shard and inflate that shard's
/// root MBR until no filter can write it off.
fn local_pairs(city: &rknnt::data::City, count: usize, seed: u64) -> Vec<(Point, Point)> {
    TransitionGenerator::new(TransitionConfig::checkin_like(count, seed))
        .generate(city)
        .into_iter()
        .map(|(origin, destination)| {
            let dx = destination.x - origin.x;
            let dy = destination.y - origin.y;
            let len = (dx * dx + dy * dy).sqrt().max(1.0);
            let cap = 600.0_f64.min(len);
            (
                origin,
                Point::new(origin.x + dx * cap / len, origin.y + dy * cap / len),
            )
        })
        .collect()
}

fn main() {
    let city = CityGenerator::new(CityConfig::small(42)).generate();
    let pairs = local_pairs(&city, 2_000, 7);

    let unsharded = QueryService::new(
        city.route_store(),
        TransitionStore::bulk_build(Default::default(), pairs.clone()),
        ServiceConfig::default(),
    );
    let sharded = ShardedService::bulk_build(
        ShardedConfig::default().with_shards(8),
        city.routes.clone(),
        pairs,
    );
    println!(
        "{} routes, {} transitions, {} shards",
        sharded.routes().num_routes(),
        sharded.num_transitions(),
        sharded.shard_count(),
    );

    // A round of neighbourhood demand probes: short routes, k = 1.
    let probes: Vec<RknntQuery> = workload::rknnt_queries(&city, 24, 3, 400.0, 42 ^ 0xbee)
        .into_iter()
        .map(|route| RknntQuery::exists(route, 1))
        .collect();
    let (expected, _) = unsharded.execute_batch(&probes);
    let (answers, _) = sharded.execute_batch(&probes);
    for (want, got) in expected.iter().zip(&answers) {
        assert_eq!(
            want.transitions, got.transitions,
            "sharded answers must be byte-identical to the unsharded service"
        );
    }
    println!(
        "{} probes answered, byte-identical to the unsharded service",
        probes.len()
    );

    let stats = sharded.router_stats();
    println!(
        "router: {} fresh executions, {} shard dispatches, {} shards pruned \
         -> mean fan-out {:.2} of {} shards",
        stats.executions,
        stats.dispatches,
        stats.shards_pruned,
        stats.mean_fanout(),
        sharded.shard_count(),
    );
    assert!(
        stats.shards_pruned > 0,
        "the footprint certificate should write off at least some shards"
    );
}
