//! The TCP serving edge: a real client → server round trip with admission
//! control.
//!
//! The example builds a small city as a [`QueryService`], puts it behind
//! the [`Server`] (length-prefixed, checksummed frames over a local TCP
//! socket), and drives it with the blocking [`Client`]:
//!
//! 1. a round of queries whose answers are asserted byte-identical to
//!    executing the same batch in-process,
//! 2. a subscription whose delta is pushed to the client when an update
//!    lands, and
//! 3. a traced query whose span tree — admission, queue, execution, the
//!    batch pipeline — is promoted into the slow-query log and fetched
//!    back over the same socket via `Introspect`, and
//! 4. a deliberately overloaded server (zero cost budget) that *sheds*
//!    every query with a typed `Overloaded` reply carrying the admission
//!    numbers — never a silent drop, never an unbounded queue.
//!
//! Nonzero exit on any divergence. Run with
//! `cargo run --release --example net_serving`.

use rknnt::data::workload;
use rknnt::net::{IntrospectReport, IntrospectWhat};
use rknnt::prelude::*;
use rknnt::service::StoreUpdate;

fn main() {
    let city = CityGenerator::new(CityConfig::small(42)).generate();
    let pairs = TransitionGenerator::new(TransitionConfig::checkin_like(2_000, 7)).generate(&city);
    let service = QueryService::new(
        city.route_store(),
        TransitionStore::bulk_build(Default::default(), pairs.clone()),
        ServiceConfig::default(),
    );
    // An identical twin stays in-process to check the wire answers against.
    let mut twin = QueryService::new(
        city.route_store(),
        TransitionStore::bulk_build(Default::default(), pairs),
        ServiceConfig::default(),
    );

    let queries: Vec<RknntQuery> = workload::rknnt_queries(&city, 24, 4, 600.0, 42 ^ 0xcafe)
        .into_iter()
        .map(|route| RknntQuery::exists(route, 4))
        .collect();
    let (expected, _) = twin.execute_batch(&queries);

    // 1. Queries over TCP, byte-identical to in-process execution.
    let server = Server::start(Backend::Single(service), ServerConfig::default())
        .expect("bind a loopback listener");
    let mut client = Client::connect(server.local_addr()).expect("connect to the server");
    for (query, want) in queries.iter().zip(&expected) {
        match client.query(query).expect("query round trip") {
            Reply::Answered(transitions) => assert_eq!(
                transitions, want.transitions,
                "wire answers must be byte-identical to in-process execution"
            ),
            Reply::Overloaded(info) => {
                panic!("an idle server shed a query: {info:?}")
            }
        }
    }
    println!(
        "{} queries answered over TCP, byte-identical to in-process execution",
        queries.len()
    );

    // 2. A subscription: the server pushes a delta when an update changes
    // its answer set (here: a new transition right on the route).
    let route = queries[0].route.clone();
    let sub = client
        .subscribe(&RknntQuery::exists(route.clone(), 1))
        .expect("subscribe round trip")
        .answered()
        .expect("an idle server admits the subscription");
    let counts = client
        .apply_updates(vec![StoreUpdate::InsertTransition {
            origin: route[0],
            destination: route[1],
        }])
        .expect("update round trip")
        .answered()
        .expect("an idle server admits the update");
    assert_eq!(counts.applied, 1, "the insert must apply");
    // Keep the twin in lockstep so later wire answers stay comparable.
    twin.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: route[0],
        destination: route[1],
    }]);
    let delta = client.recv_delta().expect("the delta is pushed to us");
    assert_eq!(delta.subscription, sub.subscription);
    assert!(
        !delta.entered.is_empty(),
        "a transition landing on the route must enter the answer set"
    );
    println!(
        "subscription {} saw {} transition(s) enter after the update",
        sub.subscription,
        delta.entered.len()
    );

    // 3. Tracing: tag a query with a caller-chosen trace id, let the
    // slow-query log promote it (threshold 0 — everything counts as slow),
    // and pull the span tree back over the same socket. `Introspect` is
    // answered from the connection's reader thread, so it works even when
    // the executor is saturated.
    let backend = server.stop();
    let server = Server::start(
        backend,
        ServerConfig::default().with_slow_query_threshold_ns(0),
    )
    .expect("bind a loopback listener");
    let mut client = Client::connect(server.local_addr()).expect("connect to the server");
    const TRACE_ID: u64 = 0x00C0_FFEE;
    let (post_update, _) = twin.execute_batch(std::slice::from_ref(&queries[0]));
    match client
        .query_traced(&queries[0], TRACE_ID)
        .expect("traced query round trip")
    {
        Reply::Answered(transitions) => assert_eq!(
            transitions, post_update[0].transitions,
            "a traced query must answer byte-identically to an untraced one"
        ),
        Reply::Overloaded(info) => panic!("an idle server shed the traced query: {info:?}"),
    }
    let report = client
        .introspect(IntrospectWhat::SlowQueries)
        .expect("introspect round trip");
    let IntrospectReport::SlowQueries { entries } = report else {
        panic!("asked for SlowQueries, got a different report")
    };
    let slow = entries
        .iter()
        .find(|entry| entry.trace_id == TRACE_ID)
        .expect("a threshold-0 log must promote the traced query");
    println!(
        "trace {:#x}: {} span(s), root {} ns",
        slow.trace_id,
        slow.spans.len(),
        slow.root_dur_ns
    );
    for span in &slow.spans {
        // Indent by tree depth so the hierarchy reads off the terminal.
        let mut depth = 0;
        let mut at = span.parent_index();
        while let Some(parent) = at {
            depth += 1;
            at = slow.spans[parent].parent_index();
        }
        println!(
            "  {:indent$}{} {} ns {:?}",
            "",
            span.name,
            span.dur_ns,
            span.attrs,
            indent = depth * 2
        );
    }

    // 4. Overload: a server with a zero cost budget sheds every query with
    // a typed reply — load shedding is an answer, not a dropped request.
    let backend = server.stop();
    let server = Server::start(backend, ServerConfig::default().with_cost_budget(0))
        .expect("bind a loopback listener");
    let mut client = Client::connect(server.local_addr()).expect("connect to the server");
    let mut sheds = 0u64;
    for query in &queries {
        match client.query(query).expect("shed replies still arrive") {
            Reply::Answered(_) => panic!("a zero-budget server must not admit queries"),
            Reply::Overloaded(info) => {
                assert!(info.estimated_cost > info.cost_budget);
                sheds += 1;
            }
        }
    }
    assert_eq!(server.shed(), sheds);
    println!(
        "zero-budget server shed all {sheds} queries with typed replies \
         (admitted={}, shed={})",
        server.admitted(),
        server.shed()
    );
}
