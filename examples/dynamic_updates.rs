//! Dynamic transition updates: the stream of arriving and expiring passenger
//! requests the paper's index is designed for (Uber-style demand).
//!
//! The example replays a sliding window over a day of synthetic passenger
//! requests through [`QueryService::apply_updates`] — the incremental update
//! path with region-scoped cache invalidation. Each hour arrives as ten
//! bursts of requests with the popular-route capacity queries re-running
//! between bursts, the interleaving a live deployment sees. The wholesale
//! `update_stores` path would drop the whole result cache on every burst;
//! the region-scoped path keeps the entries the burst provably cannot have
//! changed, and the day-level cache hit-rate printed at the end is the
//! difference.
//!
//! Run with `cargo run --release --example dynamic_updates`.

use rknnt::prelude::*;
use rknnt::service::StoreUpdate;
use std::collections::VecDeque;

fn main() {
    let city = CityGenerator::new(CityConfig::small(31)).generate();
    let routes = city.route_store();

    // The "day" of requests: 12 hours × 10 bursts × 15 transitions; the
    // window keeps the 4 most recent hours (old requests expire).
    let generator = TransitionGenerator::new(TransitionConfig::checkin_like(6_000, 17));
    let all_pairs = generator.generate(&city);
    let bursts: Vec<_> = all_pairs.chunks(15).take(120).collect();
    let window_bursts = 40usize;

    let mut service =
        QueryService::new(routes, TransitionStore::default(), ServiceConfig::default());
    let mut window: VecDeque<Vec<TransitionId>> = VecDeque::new();

    // Monitor a handful of popular routes between bursts. Small k keeps the
    // uncovered region (where an arriving request could change the answer)
    // tight, which is what lets entries ride out unrelated churn.
    let watched: Vec<RknntQuery> = city
        .routes
        .iter()
        .take(6)
        .map(|r| RknntQuery::exists(r.clone(), 1))
        .collect();
    println!(
        "monitoring {} routes (k = 1) between bursts\n",
        watched.len()
    );

    for hour in 0..12 {
        let mut evicted = 0usize;
        let mut retained = 0usize;
        let mut capacity = 0usize;
        for burst in 0..10 {
            let mut updates: Vec<StoreUpdate> = bursts[hour * 10 + burst]
                .iter()
                .map(|(origin, destination)| StoreUpdate::InsertTransition {
                    origin: *origin,
                    destination: *destination,
                })
                .collect();
            if window.len() >= window_bursts {
                updates.extend(
                    window
                        .pop_front()
                        .expect("non-empty window")
                        .into_iter()
                        .map(StoreUpdate::ExpireTransition),
                );
            }
            let stats = service.apply_updates(updates);
            window.push_back(stats.inserted_transitions);
            evicted += stats.evicted_entries;
            retained = stats.retained_entries;

            let (results, _) = service.execute_batch(&watched);
            capacity = results[0].len();
        }
        println!(
            "hour {hour:>2}: {:>5} live transitions -> {:>3} would take route #0 \
             ({:>2} entries evicted this hour, {} still warm)",
            service.transitions().len(),
            capacity,
            evicted,
            retained,
        );
    }

    let cache = service.cache_stats();
    println!(
        "\ncache over the whole day: {} hits / {} lookups ({:.0}% — a full-drop \
         update path would have scored 0%), {} targeted evictions",
        cache.hits,
        cache.hits + cache.misses,
        100.0 * cache.hits as f64 / (cache.hits + cache.misses) as f64,
        cache.targeted_evictions,
    );
}
