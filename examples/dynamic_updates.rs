//! Dynamic transition updates: the stream of arriving and expiring passenger
//! requests the paper's index is designed for (Uber-style demand).
//!
//! The example replays a sliding window over a day of synthetic passenger
//! requests, keeping only the most recent ones in the TR-tree and re-running
//! the same capacity query after each batch.
//!
//! Run with `cargo run --release --example dynamic_updates`.

use rknnt::core::RknnTEngine;
use rknnt::prelude::*;
use std::collections::VecDeque;

fn main() {
    let city = CityGenerator::new(CityConfig::small(31)).generate();
    let routes = city.route_store();

    // The "day" of requests: 12 batches of 500 transitions each; the window
    // keeps the 4 most recent batches (old requests expire).
    let generator = TransitionGenerator::new(TransitionConfig::checkin_like(6_000, 17));
    let all_pairs = generator.generate(&city);
    let batches: Vec<_> = all_pairs.chunks(500).take(12).collect();
    let window_batches = 4usize;

    let mut store = TransitionStore::default();
    let mut window: VecDeque<Vec<TransitionId>> = VecDeque::new();

    // Watch the capacity of the longest route as the window slides.
    let watched = city
        .routes
        .iter()
        .max_by_key(|r| r.len())
        .expect("city has routes")
        .clone();
    println!("watching a route with {} stops (k = 5)\n", watched.len());

    for (hour, batch) in batches.iter().enumerate() {
        // New requests arrive...
        let ids: Vec<TransitionId> = batch
            .iter()
            .map(|(origin, destination)| store.insert(*origin, *destination))
            .collect();
        window.push_back(ids);
        // ...and the oldest batch expires once the window is full.
        if window.len() > window_batches {
            for id in window.pop_front().expect("non-empty window") {
                store.remove(id);
            }
        }

        let engine = FilterRefineEngine::new(&routes, &store);
        let result = engine.execute(&RknntQuery::exists(watched.clone(), 5));
        println!(
            "hour {hour:>2}: {:>5} live transitions -> {:>4} would take the watched route \
             ({} candidate endpoints verified)",
            store.len(),
            result.len(),
            result.stats.candidate_endpoints
        );
    }
}
