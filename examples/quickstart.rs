//! Quickstart: build a small synthetic city, index it, and answer one RkNNT
//! query with each engine.
//!
//! Run with `cargo run --release --example quickstart`.

use rknnt::core::RknnTEngine;
use rknnt::data::workload;
use rknnt::prelude::*;

fn main() {
    // 1. Generate a small synthetic city (60 bus routes) and a check-in-like
    //    transition set (5,000 passenger origin/destination pairs).
    let city = CityGenerator::new(CityConfig::small(42)).generate();
    let transitions =
        TransitionGenerator::new(TransitionConfig::checkin_like(5_000, 7)).generate_store(&city);
    let routes = city.route_store();
    println!(
        "city: {} routes, {} distinct stops, {} transitions",
        routes.num_routes(),
        routes.num_stops(),
        transitions.len()
    );

    // 2. Generate one query route: 5 points, ~1 km apart, following the
    //    bounded-rotation procedure of the paper's experiments.
    let query_route = workload::rknnt_queries(&city, 1, 5, 1_000.0, 3)
        .pop()
        .expect("one query");
    let query = RknntQuery::exists(query_route, 10);

    // 3. Answer it with the three index-based engines and the brute-force
    //    oracle; all of them return the same transition set.
    let filter_refine = FilterRefineEngine::new(&routes, &transitions);
    let voronoi = VoronoiEngine::new(&routes, &transitions);
    let divide_conquer = DivideConquerEngine::new(&routes, &transitions);
    let brute = BruteForceEngine::new(&routes, &transitions);

    for engine in [
        &filter_refine as &dyn RknnTEngine,
        &voronoi,
        &divide_conquer,
        &brute,
    ] {
        let result = engine.execute(&query);
        println!(
            "{:<15} -> {:>4} transitions take the query as a {}-NN route \
             (filtering {:?}, verification {:?})",
            engine.name(),
            result.len(),
            query.k,
            result.timings.filtering,
            result.timings.verification,
        );
    }
}
