//! Yen's loopless k-shortest-paths algorithm and the τ-bounded candidate
//! enumeration used by the baseline route planners.
//!
//! The `BruteForce` planner of Section 6.1 "extends the k shortest path
//! method with a loop to find the sub-optimal route until the distance
//! threshold τ is met": [`paths_within`] implements exactly that loop on top
//! of [`yen_k_shortest_paths`].

use crate::graph::{Path, RouteGraph, VertexId};
use std::collections::HashSet;

/// Computes up to `k` loopless shortest paths from `source` to `target`,
/// ordered by non-decreasing length (Yen's algorithm).
pub fn yen_k_shortest_paths(
    graph: &RouteGraph,
    source: VertexId,
    target: VertexId,
    k: usize,
) -> Vec<Path> {
    let mut result: Vec<Path> = Vec::new();
    if k == 0 || graph.is_empty() {
        return result;
    }
    let Some(first) = graph.shortest_path(source, target) else {
        return result;
    };
    result.push(first);

    // Candidate paths not yet promoted into the result, kept sorted by
    // length so the best is popped first.
    let mut candidates: Vec<Path> = Vec::new();

    while result.len() < k {
        let previous = result.last().expect("at least the first path").clone();
        // Each vertex of the previous path except the last is a spur node.
        for spur_idx in 0..previous.vertices.len() - 1 {
            let spur_node = previous.vertices[spur_idx];
            let root: Vec<VertexId> = previous.vertices[..=spur_idx].to_vec();

            // Edges to remove: for every already-accepted path sharing the
            // same root, the edge it takes out of the spur node.
            let mut removed_edges: HashSet<(VertexId, VertexId)> = HashSet::new();
            for p in result.iter().chain(candidates.iter()) {
                if p.vertices.len() > spur_idx && p.vertices[..=spur_idx] == root[..] {
                    if let Some(next) = p.vertices.get(spur_idx + 1) {
                        removed_edges.insert((spur_node, *next));
                        removed_edges.insert((*next, spur_node));
                    }
                }
            }
            // Vertices of the root (except the spur node) are excluded to
            // keep paths loopless.
            let removed_vertices: HashSet<VertexId> = root[..spur_idx].iter().copied().collect();

            let tree = graph.dijkstra_filtered(spur_node, |from, to| {
                !removed_edges.contains(&(from, to))
                    && !removed_vertices.contains(&from)
                    && !removed_vertices.contains(&to)
            });
            let Some(spur_path) = tree.path_to(target) else {
                continue;
            };

            // Total path = root (up to spur) + spur path (starts at spur).
            let mut vertices = root.clone();
            vertices.pop(); // spur node is the first vertex of the spur path
            vertices.extend(spur_path.vertices.iter().copied());
            let Some(length) = graph.path_length(&vertices) else {
                continue;
            };
            // Loopless check: Dijkstra guarantees no repeats within each
            // part, but root and spur segments could still overlap.
            let mut seen = HashSet::new();
            if !vertices.iter().all(|v| seen.insert(*v)) {
                continue;
            }
            let candidate = Path { vertices, length };
            if !result.contains(&candidate) && !candidates.contains(&candidate) {
                candidates.push(candidate);
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| a.length.total_cmp(&b.length));
        result.push(candidates.remove(0));
    }
    result
}

/// Enumerates every loopless path from `source` to `target` whose travel
/// distance does not exceed `tau`, in non-decreasing length order.
///
/// Internally calls Yen's algorithm with a growing `k` until the next path
/// exceeds the threshold (or no further path exists). `max_paths` caps the
/// enumeration so a generous τ on a dense network cannot explode; the cap is
/// reported to callers via the boolean in the return value (`true` when the
/// enumeration was truncated).
pub fn paths_within(
    graph: &RouteGraph,
    source: VertexId,
    target: VertexId,
    tau: f64,
    max_paths: usize,
) -> (Vec<Path>, bool) {
    let mut k = 8usize;
    loop {
        let paths = yen_k_shortest_paths(graph, source, target, k.min(max_paths));
        let within: Vec<Path> = paths.iter().filter(|p| p.length <= tau).cloned().collect();
        let exhausted = paths.len() < k.min(max_paths);
        let beyond_tau = paths.last().map(|p| p.length > tau).unwrap_or(true);
        if exhausted || beyond_tau {
            return (within, false);
        }
        if k >= max_paths {
            return (within, true);
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// The classic Yen example shape: a small graph with several alternative
    /// routes of increasing length.
    fn diamond() -> (RouteGraph, VertexId, VertexId) {
        let mut g = RouteGraph::new();
        let a = g.add_vertex(p(0.0, 0.0));
        let b = g.add_vertex(p(1.0, 1.0));
        let c = g.add_vertex(p(1.0, -1.0));
        let d = g.add_vertex(p(2.0, 0.0));
        let e = g.add_vertex(p(3.0, 0.0));
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 2.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(c, d, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(d, e, 1.0);
        g.add_edge(c, e, 4.0);
        (g, a, e)
    }

    #[test]
    fn shortest_path_comes_first_and_lengths_are_monotone() {
        let (g, s, t) = diamond();
        let paths = yen_k_shortest_paths(&g, s, t, 5);
        assert!(!paths.is_empty());
        assert_eq!(paths[0].length, 3.0, "a-b-d-e");
        for w in paths.windows(2) {
            assert!(w[0].length <= w[1].length + 1e-12);
        }
        // All paths are loopless and genuinely distinct.
        for path in &paths {
            let mut seen = HashSet::new();
            assert!(path.vertices.iter().all(|v| seen.insert(*v)));
            assert_eq!(path.vertices.first(), Some(&s));
            assert_eq!(path.vertices.last(), Some(&t));
            assert_eq!(g.path_length(&path.vertices).unwrap(), path.length);
        }
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i].vertices, paths[j].vertices);
            }
        }
    }

    #[test]
    fn k_larger_than_path_count_returns_all() {
        let (g, s, t) = diamond();
        let few = yen_k_shortest_paths(&g, s, t, 3);
        let many = yen_k_shortest_paths(&g, s, t, 100);
        assert!(many.len() >= few.len());
        // Requesting zero paths yields nothing.
        assert!(yen_k_shortest_paths(&g, s, t, 0).is_empty());
    }

    #[test]
    fn disconnected_pair_has_no_paths() {
        let mut g = RouteGraph::new();
        let a = g.add_vertex(p(0.0, 0.0));
        let b = g.add_vertex(p(100.0, 0.0));
        assert!(yen_k_shortest_paths(&g, a, b, 4).is_empty());
        let (within, truncated) = paths_within(&g, a, b, 1e9, 100);
        assert!(within.is_empty());
        assert!(!truncated);
    }

    #[test]
    fn paths_within_respects_threshold() {
        let (g, s, t) = diamond();
        let (within, truncated) = paths_within(&g, s, t, 4.0, 100);
        assert!(!truncated);
        assert!(!within.is_empty());
        assert!(within.iter().all(|p| p.length <= 4.0));
        // A tighter threshold returns fewer (or equal) paths.
        let (tight, _) = paths_within(&g, s, t, 3.0, 100);
        assert!(tight.len() <= within.len());
        // An enormous threshold returns every loopless path; the count must
        // match unrestricted Yen with a large k.
        let (all, _) = paths_within(&g, s, t, 1e9, 1000);
        let yen_all = yen_k_shortest_paths(&g, s, t, 1000);
        assert_eq!(all.len(), yen_all.len());
    }

    #[test]
    fn grid_alternative_paths_share_length() {
        // On a uniform grid many shortest paths tie; Yen must enumerate
        // distinct vertex sequences.
        let mut g = RouteGraph::new();
        let mut ids = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                ids.push(g.add_vertex(p(x as f64, y as f64)));
            }
        }
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    g.add_edge_euclidean(ids[i], ids[i + 1]);
                }
                if y + 1 < 3 {
                    g.add_edge_euclidean(ids[i], ids[i + 3]);
                }
            }
        }
        let paths = yen_k_shortest_paths(&g, ids[0], ids[8], 6);
        assert_eq!(paths.len(), 6);
        assert!((paths[0].length - 4.0).abs() < 1e-12);
        assert!((paths[5].length - 4.0).abs() < 1e-12 || paths[5].length > 4.0);
    }
}
