//! The weighted bus-network graph (Definition 9).

use rknnt_geo::Point;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a vertex (bus stop) in a [`RouteGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index into the graph's dense vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A route through the graph: an ordered vertex sequence and its travel
/// distance ψ(R) (Equation 6, evaluated over edge weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Vertices visited in order, starting at the source and ending at the
    /// destination.
    pub vertices: Vec<VertexId>,
    /// Total travel distance along the edges.
    pub length: f64,
}

impl Path {
    /// Number of vertices on the path.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the path has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// An undirected weighted graph of bus stops.
///
/// The bus network is modelled as undirected (a street segment can be
/// traversed in either direction), matching the paper's examples where routes
/// are planned between arbitrary origin/destination stops.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RouteGraph {
    positions: Vec<Point>,
    adjacency: Vec<Vec<(VertexId, f64)>>,
    edge_count: usize,
}

impl RouteGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the graph induced by a collection of routes: each distinct
    /// point becomes a vertex, and consecutive points on any route become an
    /// edge weighted by their Euclidean distance.
    ///
    /// Points are deduplicated by exact coordinates, so a stop shared by
    /// several routes becomes a single vertex — this is what makes transfers
    /// between lines possible in the planning graph.
    pub fn from_routes<'a, I>(routes: I) -> Self
    where
        I: IntoIterator<Item = &'a [Point]>,
    {
        let mut graph = RouteGraph::new();
        let mut lookup: HashMap<(u64, u64), VertexId> = HashMap::new();
        for route in routes {
            let mut previous: Option<VertexId> = None;
            for p in route {
                let key = (p.x.to_bits(), p.y.to_bits());
                let v = *lookup.entry(key).or_insert_with(|| graph.add_vertex(*p));
                if let Some(prev) = previous {
                    if prev != v {
                        graph.add_edge_euclidean(prev, v);
                    }
                }
                previous = Some(v);
            }
        }
        graph
    }

    /// Adds an isolated vertex at `position` and returns its id.
    pub fn add_vertex(&mut self, position: Point) -> VertexId {
        let id = VertexId(self.positions.len() as u32);
        self.positions.push(position);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge with an explicit weight. Parallel edges are
    /// coalesced, keeping the smaller weight.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId, weight: f64) {
        assert!(a.index() < self.positions.len(), "unknown vertex {a}");
        assert!(b.index() < self.positions.len(), "unknown vertex {b}");
        assert!(weight >= 0.0, "edge weights must be non-negative");
        if a == b {
            return;
        }
        let updated = Self::upsert(&mut self.adjacency[a.index()], b, weight);
        Self::upsert(&mut self.adjacency[b.index()], a, weight);
        if !updated {
            self.edge_count += 1;
        }
    }

    /// Returns true when the neighbour already existed (weight possibly
    /// lowered), false when a new adjacency entry was created.
    fn upsert(list: &mut Vec<(VertexId, f64)>, to: VertexId, weight: f64) -> bool {
        if let Some(entry) = list.iter_mut().find(|(v, _)| *v == to) {
            entry.1 = entry.1.min(weight);
            true
        } else {
            list.push((to, weight));
            false
        }
    }

    /// Adds an undirected edge weighted by the Euclidean distance between the
    /// two vertex positions.
    pub fn add_edge_euclidean(&mut self, a: VertexId, b: VertexId) {
        let w = self.positions[a.index()].distance(&self.positions[b.index()]);
        self.add_edge(a, b, w);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a vertex.
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.index()]
    }

    /// Neighbours of a vertex with their edge weights.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, f64)] {
        &self.adjacency[v.index()]
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.positions.len() as u32).map(VertexId)
    }

    /// The vertex closest (Euclidean) to an arbitrary point, if the graph is
    /// non-empty. Used to snap query origins/destinations onto the network.
    pub fn nearest_vertex(&self, p: &Point) -> Option<VertexId> {
        self.positions
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.distance_sq(p).total_cmp(&b.1.distance_sq(p)))
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Weight of the edge between two vertices, if present.
    pub fn edge_weight(&self, a: VertexId, b: VertexId) -> Option<f64> {
        self.adjacency[a.index()]
            .iter()
            .find(|(v, _)| *v == b)
            .map(|(_, w)| *w)
    }

    /// Travel distance ψ of a vertex sequence along existing edges; `None`
    /// when some consecutive pair is not connected.
    pub fn path_length(&self, vertices: &[VertexId]) -> Option<f64> {
        let mut total = 0.0;
        for w in vertices.windows(2) {
            total += self.edge_weight(w[0], w[1])?;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn build_from_routes_dedups_shared_stops() {
        let r1 = vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)];
        let r2 = vec![p(10.0, 0.0), p(10.0, 10.0)];
        let g = RouteGraph::from_routes([r1.as_slice(), r2.as_slice()]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        let shared = g.nearest_vertex(&p(10.0, 0.0)).unwrap();
        assert_eq!(g.neighbors(shared).len(), 3);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut g = RouteGraph::new();
        let a = g.add_vertex(p(0.0, 0.0));
        let b = g.add_vertex(p(3.0, 4.0));
        g.add_edge(a, b, 9.0);
        g.add_edge(a, b, 5.0);
        g.add_edge(a, b, 7.0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(a, b), Some(5.0));
        assert_eq!(g.edge_weight(b, a), Some(5.0));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = RouteGraph::new();
        let a = g.add_vertex(p(0.0, 0.0));
        g.add_edge(a, a, 1.0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.neighbors(a).is_empty());
    }

    #[test]
    fn path_length_follows_edges() {
        let r = vec![p(0.0, 0.0), p(3.0, 4.0), p(3.0, 10.0)];
        let g = RouteGraph::from_routes([r.as_slice()]);
        let vs: Vec<VertexId> = g.vertices().collect();
        assert_eq!(g.path_length(&vs), Some(11.0));
        // Non-adjacent pair yields None.
        assert_eq!(g.path_length(&[vs[0], vs[2]]), None);
        assert_eq!(g.path_length(&[vs[0]]), Some(0.0));
    }

    #[test]
    fn nearest_vertex_and_positions() {
        let r = vec![p(0.0, 0.0), p(10.0, 0.0)];
        let g = RouteGraph::from_routes([r.as_slice()]);
        let v = g.nearest_vertex(&p(8.0, 1.0)).unwrap();
        assert_eq!(g.position(v), p(10.0, 0.0));
        assert!(RouteGraph::new().nearest_vertex(&p(0.0, 0.0)).is_none());
    }

    #[test]
    fn duplicate_consecutive_points_do_not_create_self_loops() {
        let r = vec![p(0.0, 0.0), p(0.0, 0.0), p(5.0, 0.0)];
        let g = RouteGraph::from_routes([r.as_slice()]);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }
}
