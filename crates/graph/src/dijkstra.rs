//! Single-source shortest paths (Dijkstra) and path extraction.

use crate::graph::{Path, RouteGraph, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The result of a single-source Dijkstra run: distances and predecessor
/// links for every vertex reachable from the source.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: VertexId,
    dist: Vec<f64>,
    prev: Vec<Option<VertexId>>,
}

impl ShortestPathTree {
    /// Source vertex of the tree.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Shortest distance from the source to `v`; `f64::INFINITY` when
    /// unreachable.
    pub fn distance(&self, v: VertexId) -> f64 {
        self.dist[v.index()]
    }

    /// Whether `v` is reachable from the source.
    pub fn reachable(&self, v: VertexId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// Reconstructs the shortest path from the source to `target`, or `None`
    /// when the target is unreachable.
    pub fn path_to(&self, target: VertexId) -> Option<Path> {
        if !self.reachable(target) {
            return None;
        }
        let mut vertices = vec![target];
        let mut cur = target;
        while let Some(prev) = self.prev[cur.index()] {
            vertices.push(prev);
            cur = prev;
        }
        vertices.reverse();
        debug_assert_eq!(vertices[0], self.source);
        Some(Path {
            vertices,
            length: self.distance(target),
        })
    }

    /// All distances, indexed by vertex id (infinite for unreachable).
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }
}

struct QueueItem {
    dist: f64,
    vertex: VertexId,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist)
    }
}

impl RouteGraph {
    /// Runs Dijkstra from `source` over the whole graph.
    pub fn dijkstra(&self, source: VertexId) -> ShortestPathTree {
        self.dijkstra_filtered(source, |_, _| true)
    }

    /// Dijkstra that only relaxes edges for which `allow(from, to)` returns
    /// true. Yen's algorithm uses this to exclude edges and vertices removed
    /// by the spur-path construction.
    pub fn dijkstra_filtered<F>(&self, source: VertexId, allow: F) -> ShortestPathTree
    where
        F: Fn(VertexId, VertexId) -> bool,
    {
        let n = self.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<VertexId>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[source.index()] = 0.0;
        heap.push(QueueItem {
            dist: 0.0,
            vertex: source,
        });
        while let Some(QueueItem { dist: d, vertex }) = heap.pop() {
            if done[vertex.index()] {
                continue;
            }
            done[vertex.index()] = true;
            for (next, weight) in self.neighbors(vertex) {
                if !allow(vertex, *next) {
                    continue;
                }
                let candidate = d + weight;
                if candidate < dist[next.index()] {
                    dist[next.index()] = candidate;
                    prev[next.index()] = Some(vertex);
                    heap.push(QueueItem {
                        dist: candidate,
                        vertex: *next,
                    });
                }
            }
        }
        ShortestPathTree { source, dist, prev }
    }

    /// Shortest path between two vertices, or `None` when disconnected.
    pub fn shortest_path(&self, source: VertexId, target: VertexId) -> Option<Path> {
        self.dijkstra(source).path_to(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// A 3x3 grid graph with unit spacing.
    fn grid() -> (RouteGraph, Vec<VertexId>) {
        let mut g = RouteGraph::new();
        let mut ids = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                ids.push(g.add_vertex(p(x as f64, y as f64)));
            }
        }
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    g.add_edge_euclidean(ids[i], ids[i + 1]);
                }
                if y + 1 < 3 {
                    g.add_edge_euclidean(ids[i], ids[i + 3]);
                }
            }
        }
        (g, ids)
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let (g, ids) = grid();
        let tree = g.dijkstra(ids[0]);
        assert_eq!(tree.distance(ids[0]), 0.0);
        assert_eq!(tree.distance(ids[2]), 2.0);
        assert_eq!(tree.distance(ids[8]), 4.0);
        assert_eq!(tree.source(), ids[0]);
        assert!(tree.reachable(ids[8]));
    }

    #[test]
    fn path_reconstruction_is_consistent() {
        let (g, ids) = grid();
        let path = g.shortest_path(ids[0], ids[8]).unwrap();
        assert_eq!(path.vertices.first(), Some(&ids[0]));
        assert_eq!(path.vertices.last(), Some(&ids[8]));
        assert_eq!(path.len(), 5);
        assert!((path.length - 4.0).abs() < 1e-12);
        assert_eq!(g.path_length(&path.vertices), Some(path.length));
    }

    #[test]
    fn unreachable_vertices_report_infinity() {
        let mut g = RouteGraph::new();
        let a = g.add_vertex(p(0.0, 0.0));
        let b = g.add_vertex(p(1.0, 0.0));
        let c = g.add_vertex(p(100.0, 100.0)); // isolated
        g.add_edge_euclidean(a, b);
        let tree = g.dijkstra(a);
        assert!(!tree.reachable(c));
        assert!(tree.path_to(c).is_none());
        assert!(tree.distance(c).is_infinite());
        assert_eq!(tree.distances().len(), 3);
    }

    #[test]
    fn filtered_dijkstra_respects_exclusions() {
        let (g, ids) = grid();
        // Block the direct corridor along the bottom row.
        let tree = g.dijkstra_filtered(ids[0], |from, to| {
            !((from == ids[0] && to == ids[1]) || (from == ids[1] && to == ids[0]))
        });
        // Still reachable, but the path must detour (same length on a grid).
        assert!(tree.reachable(ids[2]));
        let path = tree.path_to(ids[2]).unwrap();
        assert!(!path.vertices.windows(2).any(|w| w == [ids[0], ids[1]]));
    }

    #[test]
    fn shortest_path_prefers_light_edges() {
        let mut g = RouteGraph::new();
        let a = g.add_vertex(p(0.0, 0.0));
        let b = g.add_vertex(p(1.0, 0.0));
        let c = g.add_vertex(p(2.0, 0.0));
        // Direct heavy edge vs a lighter two-hop detour.
        g.add_edge(a, c, 10.0);
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        let path = g.shortest_path(a, c).unwrap();
        assert_eq!(path.vertices, vec![a, b, c]);
        assert_eq!(path.length, 2.0);
    }
}
