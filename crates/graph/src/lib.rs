//! Bus-network graph substrate.
//!
//! Section 6 of the paper casts the bus network as a weighted graph
//! (Definition 9): vertices are bus stops, edges connect stops that are
//! adjacent on some route, and edge weights are Euclidean distances. The
//! route-planning queries need three pieces of machinery on top of the graph,
//! all implemented here from scratch:
//!
//! * [`RouteGraph::dijkstra`] / [`RouteGraph::shortest_path`] — single-source
//!   shortest distances and path extraction.
//! * [`DistanceMatrix`] — all-pairs shortest distances, computable either
//!   with the Floyd–Warshall algorithm the paper cites or with repeated
//!   Dijkstra (identical results, better asymptotics on sparse networks).
//!   This is the lower-bound matrix `Mψ` used by the reachability check.
//! * [`yen_k_shortest_paths`] / [`paths_within`] — Yen's loopless k-shortest
//!   path enumeration, used by the `BruteForce` and `Pre` route planners to
//!   enumerate all candidate routes under the travel-distance threshold τ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dijkstra;
mod graph;
mod matrix;
mod yen;

pub use dijkstra::ShortestPathTree;
pub use graph::{Path, RouteGraph, VertexId};
pub use matrix::DistanceMatrix;
pub use yen::{paths_within, yen_k_shortest_paths};
