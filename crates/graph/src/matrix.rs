//! All-pairs shortest distances: the lower-bound matrix `Mψ` of Algorithm 5.

use crate::graph::{RouteGraph, VertexId};
use serde::{Deserialize, Serialize};

/// A dense all-pairs shortest-distance matrix.
///
/// `Mψ[i][j]` is the length of the shortest route from vertex `i` to vertex
/// `j` in the bus network; the `checkReachability` pruning rule of
/// Algorithm 6 compares it against the remaining distance budget
/// `τ − ψ(R*)`. Two constructions are provided: the Floyd–Warshall dynamic
/// program the paper cites (O(V³), fine for small graphs and used as a
/// cross-check) and repeated Dijkstra (O(V·(E+V log V)), preferable on the
/// sparse street networks the evaluation uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the matrix with the Floyd–Warshall algorithm.
    pub fn floyd_warshall(graph: &RouteGraph) -> Self {
        let n = graph.num_vertices();
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            dist[i * n + i] = 0.0;
        }
        for v in graph.vertices() {
            for (u, w) in graph.neighbors(v) {
                let idx = v.index() * n + u.index();
                if *w < dist[idx] {
                    dist[idx] = *w;
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik.is_infinite() {
                    continue;
                }
                for j in 0..n {
                    let through = dik + dist[k * n + j];
                    if through < dist[i * n + j] {
                        dist[i * n + j] = through;
                    }
                }
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Builds the matrix by running Dijkstra from every vertex.
    pub fn from_dijkstra(graph: &RouteGraph) -> Self {
        let n = graph.num_vertices();
        let mut dist = vec![f64::INFINITY; n * n];
        for v in graph.vertices() {
            let tree = graph.dijkstra(v);
            let row = &mut dist[v.index() * n..(v.index() + 1) * n];
            row.copy_from_slice(tree.distances());
        }
        DistanceMatrix { n, dist }
    }

    /// Number of vertices covered by the matrix.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Shortest distance from `a` to `b` (`f64::INFINITY` when disconnected).
    #[inline]
    pub fn distance(&self, a: VertexId, b: VertexId) -> f64 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// Whether `b` is reachable from `a`.
    pub fn reachable(&self, a: VertexId, b: VertexId) -> bool {
        self.distance(a, b).is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn sample_graph() -> RouteGraph {
        // Two routes sharing a transfer stop plus one isolated vertex.
        let r1 = vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0), p(30.0, 0.0)];
        let r2 = vec![p(10.0, 0.0), p(10.0, 10.0), p(10.0, 20.0)];
        let mut g = RouteGraph::from_routes([r1.as_slice(), r2.as_slice()]);
        g.add_vertex(p(500.0, 500.0));
        g
    }

    #[test]
    fn floyd_warshall_matches_dijkstra() {
        let g = sample_graph();
        let fw = DistanceMatrix::floyd_warshall(&g);
        let dj = DistanceMatrix::from_dijkstra(&g);
        assert_eq!(fw.num_vertices(), dj.num_vertices());
        for a in g.vertices() {
            for b in g.vertices() {
                let x = fw.distance(a, b);
                let y = dj.distance(a, b);
                if x.is_infinite() || y.is_infinite() {
                    assert_eq!(x.is_infinite(), y.is_infinite(), "{a} -> {b}");
                } else {
                    assert!((x - y).abs() < 1e-9, "{a} -> {b}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn diagonal_is_zero_and_matrix_symmetric() {
        let g = sample_graph();
        let m = DistanceMatrix::from_dijkstra(&g);
        for v in g.vertices() {
            assert_eq!(m.distance(v, v), 0.0);
        }
        for a in g.vertices() {
            for b in g.vertices() {
                let x = m.distance(a, b);
                let y = m.distance(b, a);
                if x.is_finite() {
                    assert!((x - y).abs() < 1e-9, "undirected graph must be symmetric");
                }
            }
        }
    }

    #[test]
    fn transfer_distance_through_shared_stop() {
        let g = sample_graph();
        let m = DistanceMatrix::from_dijkstra(&g);
        let start = g.nearest_vertex(&p(30.0, 0.0)).unwrap();
        let end = g.nearest_vertex(&p(10.0, 20.0)).unwrap();
        // 30,0 -> 10,0 (20) -> 10,20 (20) = 40.
        assert!((m.distance(start, end) - 40.0).abs() < 1e-9);
        assert!(m.reachable(start, end));
    }

    #[test]
    fn isolated_vertex_is_unreachable() {
        let g = sample_graph();
        let m = DistanceMatrix::floyd_warshall(&g);
        let isolated = g.nearest_vertex(&p(500.0, 500.0)).unwrap();
        let origin = g.nearest_vertex(&p(0.0, 0.0)).unwrap();
        assert!(!m.reachable(origin, isolated));
        assert!(m.reachable(isolated, isolated));
    }
}
