//! Property-based tests for the R-tree substrate: the tree must behave like
//! a plain multiset of points under insert/remove and its queries must agree
//! with linear scans.

use proptest::prelude::*;
use rknnt_geo::{Point, Rect};
use rknnt_rtree::{RTree, RTreeConfig};

fn pt() -> impl Strategy<Value = Point> {
    (-500.0f64..500.0, -500.0f64..500.0).prop_map(|(x, y)| Point::new(x, y))
}

/// A point list where coordinates are drawn from a small lattice too, so
/// duplicates and collinear layouts get exercised.
fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop_oneof![
            pt(),
            (-5i32..5, -5i32..5).prop_map(|(x, y)| Point::new(x as f64, y as f64)),
        ],
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after any sequence of inserts, and the tree contains
    /// exactly the inserted multiset.
    #[test]
    fn inserts_preserve_invariants(ps in points(300)) {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        for (i, p) in ps.iter().enumerate() {
            tree.insert(*p, i as u32);
        }
        prop_assert_eq!(tree.len(), ps.len());
        prop_assert!(tree.check_invariants().is_ok());
        let mut ids: Vec<u32> = tree.entries().iter().map(|e| e.data).collect();
        ids.sort_unstable();
        let expected: Vec<u32> = (0..ps.len() as u32).collect();
        prop_assert_eq!(ids, expected);
    }

    /// Range queries agree with a linear scan.
    #[test]
    fn range_agrees_with_scan(ps in points(300), a in pt(), b in pt()) {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        for (i, p) in ps.iter().enumerate() {
            tree.insert(*p, i as u32);
        }
        let rect = Rect::new(a, b);
        let mut got: Vec<u32> = tree.range(&rect).iter().map(|e| e.data).collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = ps
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// kNN distances agree with a sorted linear scan (payload ties may be
    /// returned in any order, so distances are compared).
    #[test]
    fn knn_agrees_with_scan(ps in points(200), q in pt(), k in 1usize..20) {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        for (i, p) in ps.iter().enumerate() {
            tree.insert(*p, i as u32);
        }
        let got = tree.knn(&q, k);
        let mut dists: Vec<f64> = ps.iter().map(|p| p.distance(&q)).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(got.len(), k.min(ps.len()));
        for (i, r) in got.iter().enumerate() {
            prop_assert!((r.distance - dists[i]).abs() < 1e-9);
        }
    }

    /// Removing a random subset leaves exactly the complement, with
    /// invariants intact throughout.
    #[test]
    fn removals_preserve_contents(ps in points(200), seed in any::<u64>()) {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        for (i, p) in ps.iter().enumerate() {
            tree.insert(*p, i as u32);
        }
        // Deterministically choose which ids to remove from the seed.
        let keep_mask: Vec<bool> = (0..ps.len())
            .map(|i| (seed.rotate_left((i % 63) as u32) ^ i as u64) & 1 == 0)
            .collect();
        for (i, p) in ps.iter().enumerate() {
            if !keep_mask[i] {
                prop_assert!(tree.remove(p, &(i as u32)));
            }
        }
        prop_assert!(tree.check_invariants().is_ok());
        let mut ids: Vec<u32> = tree.entries().iter().map(|e| e.data).collect();
        ids.sort_unstable();
        let mut expected: Vec<u32> = (0..ps.len())
            .filter(|i| keep_mask[*i])
            .map(|i| i as u32)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(ids, expected);
    }

    /// Random *interleavings* of insert and remove, checked step by step
    /// against a linear-scan oracle for `range` and `nearest` — the churn
    /// shape the dynamic stores drive, which exercises underflow handling,
    /// orphan reinsertion and root collapse between queries rather than
    /// only at the end.
    #[test]
    fn interleaved_insert_remove_agree_with_oracle(
        ps in points(120),
        ops in prop::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 1..240),
        probe in pt(),
        a in pt(),
        b in pt(),
    ) {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(6, 2));
        let mut oracle: Vec<(Point, u32)> = Vec::new();
        let mut next_id = 0u32;
        let rect = Rect::new(a, b);
        for (is_insert, which) in &ops {
            if *is_insert || oracle.is_empty() {
                let p = ps[which.index(ps.len())];
                tree.insert(p, next_id);
                oracle.push((p, next_id));
                next_id += 1;
            } else {
                let victim = which.index(oracle.len());
                let (p, id) = oracle.swap_remove(victim);
                prop_assert!(tree.remove(&p, &id), "oracle entry {id} missing");
                // A second removal of the same entry must fail.
                prop_assert!(!tree.remove(&p, &id));
            }
            prop_assert_eq!(tree.len(), oracle.len());
            tree.check_invariants().unwrap();

            // range agrees with the oracle scan.
            let mut got: Vec<u32> = tree.range(&rect).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut expected: Vec<u32> = oracle
                .iter()
                .filter(|(p, _)| rect.contains_point(p))
                .map(|(_, id)| *id)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);

            // nearest agrees with the oracle minimum (distances compare
            // exactly: both sides use the same Point::distance arithmetic).
            let nearest = tree.nearest(&probe);
            let oracle_min = oracle
                .iter()
                .map(|(p, _)| p.distance(&probe))
                .fold(f64::INFINITY, f64::min);
            match nearest {
                Some(hit) => prop_assert_eq!(hit.distance, oracle_min),
                None => prop_assert!(oracle.is_empty()),
            }
        }
        // Drain everything: the tree must collapse back to empty.
        for (p, id) in oracle.drain(..) {
            prop_assert!(tree.remove(&p, &id));
            tree.check_invariants().unwrap();
        }
        prop_assert!(tree.is_empty());
        prop_assert!(tree.nearest(&probe).is_none());
    }

    /// Bulk loading and incremental insertion produce trees with identical
    /// contents and identical query answers.
    #[test]
    fn bulk_load_equivalent_to_inserts(ps in points(300), q in pt(), k in 1usize..10) {
        let items: Vec<(Point, u32)> = ps.iter().enumerate().map(|(i, p)| (*p, i as u32)).collect();
        let bulk = RTree::bulk_load(RTreeConfig::new(8, 3), items.clone());
        let mut incr: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        for (p, d) in &items {
            incr.insert(*p, *d);
        }
        prop_assert!(bulk.check_invariants_bulk().is_ok());
        prop_assert_eq!(bulk.len(), incr.len());
        let mut a: Vec<u32> = bulk.entries().iter().map(|e| e.data).collect();
        let mut b: Vec<u32> = incr.entries().iter().map(|e| e.data).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        let ka = bulk.knn(&q, k);
        let kb = incr.knn(&q, k);
        prop_assert_eq!(ka.len(), kb.len());
        for (x, y) in ka.iter().zip(kb.iter()) {
            prop_assert!((x.distance - y.distance).abs() < 1e-9);
        }
    }
}
