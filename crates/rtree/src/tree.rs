//! The dynamic R-tree: insertion, deletion and the read-only node API.

use crate::config::RTreeConfig;
use crate::entry::LeafEntry;
use crate::node::{Node, NodeId, NodeKind};
use crate::split;
use rknnt_geo::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A dynamic R-tree over point entries with payload `D`.
///
/// See the crate-level documentation for the design rationale. The tree is
/// an arena of nodes; deleted nodes are recycled through a free list so node
/// ids stay small and dense, which the `NList` structure of the index crate
/// relies on for its per-node vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree<D> {
    pub(crate) nodes: Vec<Node<D>>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: Option<NodeId>,
    config: RTreeConfig,
    pub(crate) len: usize,
}

impl<D: Clone + PartialEq> Default for RTree<D> {
    fn default() -> Self {
        Self::new(RTreeConfig::default())
    }
}

impl<D: Clone + PartialEq> RTree<D> {
    /// Creates an empty tree with the given fan-out configuration.
    pub fn new(config: RTreeConfig) -> Self {
        RTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            config,
            len: 0,
        }
    }

    /// Fan-out configuration of the tree.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Number of data entries in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live nodes (leaves plus internal nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.live).count()
    }

    /// Height of the tree: 0 for an empty tree, 1 for a single leaf root.
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut cur = self.root;
        while let Some(id) = cur {
            h += 1;
            cur = match &self.node(id).kind {
                NodeKind::Leaf(_) => None,
                NodeKind::Internal(children) => children.first().copied(),
            };
        }
        h
    }

    /// Read-only reference to the root node, if any.
    pub fn root(&self) -> Option<NodeRef<'_, D>> {
        self.root.map(|id| NodeRef { tree: self, id })
    }

    /// Read-only reference to an arbitrary live node by id.
    ///
    /// Returns `None` when the id does not refer to a live node of this tree.
    pub fn node_ref(&self, id: NodeId) -> Option<NodeRef<'_, D>> {
        self.nodes
            .get(id.index())
            .filter(|n| n.live)
            .map(|_| NodeRef { tree: self, id })
    }

    /// Upper bound (exclusive) on node ids ever allocated; useful to size
    /// per-node side tables such as the NList.
    pub fn node_id_bound(&self) -> usize {
        self.nodes.len()
    }

    // ------------------------------------------------------------------
    // Arena plumbing
    // ------------------------------------------------------------------

    pub(crate) fn node(&self, id: NodeId) -> &Node<D> {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node<D> {
        &mut self.nodes[id.index()]
    }

    pub(crate) fn alloc(&mut self, node: Node<D>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = node;
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(node);
            id
        }
    }

    fn release(&mut self, id: NodeId) {
        let node = self.node_mut(id);
        node.live = false;
        node.parent = None;
        node.mbr = Rect::empty();
        node.kind = NodeKind::Leaf(Vec::new());
        self.free.push(id);
    }

    /// Recomputes the MBR of `id` from its contents.
    pub(crate) fn recompute_mbr(&mut self, id: NodeId) {
        let mbr = match &self.node(id).kind {
            NodeKind::Leaf(entries) => {
                let mut r = Rect::empty();
                for e in entries {
                    r.expand_to_point(&e.point);
                }
                r
            }
            NodeKind::Internal(children) => {
                let mut r = Rect::empty();
                for c in children {
                    r.expand_to_rect(&self.node(*c).mbr);
                }
                r
            }
        };
        self.node_mut(id).mbr = mbr;
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts an entry into the tree.
    pub fn insert(&mut self, point: Point, data: D) {
        let entry = LeafEntry::new(point, data);
        match self.root {
            None => {
                let mut leaf = Node::new_leaf();
                leaf.mbr = Rect::from_point(point);
                if let NodeKind::Leaf(entries) = &mut leaf.kind {
                    entries.push(entry);
                }
                let id = self.alloc(leaf);
                self.root = Some(id);
            }
            Some(root) => {
                let leaf = self.choose_leaf(root, &point);
                if let NodeKind::Leaf(entries) = &mut self.node_mut(leaf).kind {
                    entries.push(entry);
                }
                self.node_mut(leaf).mbr.expand_to_point(&point);
                self.adjust_upwards(leaf, &point);
                if self.node(leaf).len() > self.config.max_entries {
                    self.split_node(leaf);
                }
            }
        }
        self.len += 1;
    }

    /// Descends from `from` picking at each level the child whose MBR needs
    /// the least enlargement to cover `point` (ties broken by smaller area),
    /// until a leaf is reached.
    fn choose_leaf(&self, from: NodeId, point: &Point) -> NodeId {
        let mut cur = from;
        loop {
            match &self.node(cur).kind {
                NodeKind::Leaf(_) => return cur,
                NodeKind::Internal(children) => {
                    debug_assert!(!children.is_empty());
                    let target = Rect::from_point(*point);
                    let mut best = children[0];
                    let mut best_enl = f64::INFINITY;
                    let mut best_area = f64::INFINITY;
                    for &c in children {
                        let mbr = self.node(c).mbr;
                        let enl = mbr.enlargement(&target);
                        let area = mbr.area();
                        if enl < best_enl || (enl == best_enl && area < best_area) {
                            best = c;
                            best_enl = enl;
                            best_area = area;
                        }
                    }
                    cur = best;
                }
            }
        }
    }

    /// Expands ancestor MBRs after adding `point` beneath `from`.
    fn adjust_upwards(&mut self, from: NodeId, point: &Point) {
        let mut cur = self.node(from).parent;
        while let Some(id) = cur {
            self.node_mut(id).mbr.expand_to_point(point);
            cur = self.node(id).parent;
        }
    }

    /// Splits an overflowing node and propagates splits upward as needed.
    fn split_node(&mut self, id: NodeId) {
        let sibling_id = match &self.node(id).kind {
            NodeKind::Leaf(_) => {
                let entries = match &mut self.node_mut(id).kind {
                    NodeKind::Leaf(e) => std::mem::take(e),
                    NodeKind::Internal(_) => unreachable!(),
                };
                let (group_a, group_b) =
                    split::quadratic_split_entries(entries, self.config.min_entries);
                if let NodeKind::Leaf(e) = &mut self.node_mut(id).kind {
                    *e = group_a;
                }
                let mut sibling = Node::new_leaf();
                sibling.kind = NodeKind::Leaf(group_b);
                let sid = self.alloc(sibling);
                self.recompute_mbr(id);
                self.recompute_mbr(sid);
                sid
            }
            NodeKind::Internal(_) => {
                let children = match &mut self.node_mut(id).kind {
                    NodeKind::Internal(c) => std::mem::take(c),
                    NodeKind::Leaf(_) => unreachable!(),
                };
                let rects: Vec<Rect> = children.iter().map(|c| self.node(*c).mbr).collect();
                let (group_a, group_b) =
                    split::quadratic_split_children(children, rects, self.config.min_entries);
                if let NodeKind::Internal(c) = &mut self.node_mut(id).kind {
                    *c = group_a;
                }
                let mut sibling = Node::new_internal();
                sibling.kind = NodeKind::Internal(group_b);
                let sid = self.alloc(sibling);
                // Fix parent pointers of the children that moved.
                let moved: Vec<NodeId> = match &self.node(sid).kind {
                    NodeKind::Internal(c) => c.clone(),
                    NodeKind::Leaf(_) => unreachable!(),
                };
                for m in moved {
                    self.node_mut(m).parent = Some(sid);
                }
                self.recompute_mbr(id);
                self.recompute_mbr(sid);
                sid
            }
        };

        match self.node(id).parent {
            Some(parent) => {
                self.node_mut(sibling_id).parent = Some(parent);
                if let NodeKind::Internal(children) = &mut self.node_mut(parent).kind {
                    children.push(sibling_id);
                }
                self.recompute_mbr(parent);
                if self.node(parent).len() > self.config.max_entries {
                    self.split_node(parent);
                }
            }
            None => {
                // The root split: create a new root holding both halves.
                let mut new_root = Node::new_internal();
                new_root.kind = NodeKind::Internal(vec![id, sibling_id]);
                let rid = self.alloc(new_root);
                self.node_mut(id).parent = Some(rid);
                self.node_mut(sibling_id).parent = Some(rid);
                self.recompute_mbr(rid);
                self.root = Some(rid);
            }
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes one entry equal to `(point, data)`. Returns `true` when an
    /// entry was found and removed.
    pub fn remove(&mut self, point: &Point, data: &D) -> bool {
        let Some(root) = self.root else {
            return false;
        };
        let Some(leaf) = self.find_leaf(root, point, data) else {
            return false;
        };
        if let NodeKind::Leaf(entries) = &mut self.node_mut(leaf).kind {
            if let Some(pos) = entries
                .iter()
                .position(|e| e.point == *point && e.data == *data)
            {
                entries.swap_remove(pos);
            } else {
                return false;
            }
        }
        self.len -= 1;
        self.condense(leaf);
        true
    }

    /// Finds the leaf containing an entry equal to `(point, data)` by
    /// descending only into nodes whose MBR contains the point.
    fn find_leaf(&self, from: NodeId, point: &Point, data: &D) -> Option<NodeId> {
        let node = self.node(from);
        if !node.mbr.contains_point(point) {
            return None;
        }
        match &node.kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .any(|e| e.point == *point && e.data == *data)
                .then_some(from),
            NodeKind::Internal(children) => children
                .iter()
                .find_map(|c| self.find_leaf(*c, point, data)),
        }
    }

    /// Classic condense-tree: walk from the modified leaf to the root,
    /// removing underflowing nodes and collecting their orphaned entries,
    /// then reinsert the orphans and shrink the root if necessary.
    fn condense(&mut self, from: NodeId) {
        let mut orphans: Vec<LeafEntry<D>> = Vec::new();
        let mut cur = from;
        loop {
            let parent = self.node(cur).parent;
            let underflow = self.node(cur).len() < self.config.min_entries;
            match parent {
                Some(p) => {
                    if underflow {
                        // Detach cur from its parent and collect its entries.
                        if let NodeKind::Internal(children) = &mut self.node_mut(p).kind {
                            children.retain(|c| *c != cur);
                        }
                        self.collect_entries(cur, &mut orphans);
                        self.release_subtree(cur);
                    } else {
                        self.recompute_mbr(cur);
                    }
                    cur = p;
                }
                None => {
                    // cur is the root.
                    self.recompute_mbr(cur);
                    break;
                }
            }
        }
        // Shrink the root: an internal root with a single child is replaced
        // by that child; an empty root empties the tree.
        while let Some(root) = self.root {
            match &self.node(root).kind {
                NodeKind::Leaf(entries) => {
                    if entries.is_empty() && orphans.is_empty() {
                        self.release(root);
                        self.root = None;
                    }
                    break;
                }
                NodeKind::Internal(children) => {
                    if children.is_empty() {
                        self.release(root);
                        self.root = None;
                        break;
                    } else if children.len() == 1 {
                        let child = children[0];
                        self.node_mut(child).parent = None;
                        self.release(root);
                        self.root = Some(child);
                    } else {
                        break;
                    }
                }
            }
        }
        // Reinsert orphaned entries.
        for e in orphans {
            self.len -= 1; // insert() will add it back.
            self.insert(e.point, e.data);
        }
    }

    fn collect_entries(&self, from: NodeId, out: &mut Vec<LeafEntry<D>>) {
        match &self.node(from).kind {
            NodeKind::Leaf(entries) => out.extend(entries.iter().cloned()),
            NodeKind::Internal(children) => {
                for c in children {
                    self.collect_entries(*c, out);
                }
            }
        }
    }

    fn release_subtree(&mut self, from: NodeId) {
        let children: Vec<NodeId> = match &self.node(from).kind {
            NodeKind::Internal(c) => c.clone(),
            NodeKind::Leaf(_) => Vec::new(),
        };
        for c in children {
            self.release_subtree(c);
        }
        self.release(from);
    }

    // ------------------------------------------------------------------
    // Invariant checking (used heavily by the test-suite)
    // ------------------------------------------------------------------

    /// Verifies the structural invariants of the tree, returning a
    /// description of the first violation found. Intended for tests and
    /// debugging; cost is O(n).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_invariants_inner(true)
    }

    /// Like [`RTree::check_invariants`] but without the minimum-fill check.
    ///
    /// STR bulk loading can legitimately leave the final leaf of a slice (and
    /// the final node of an internal level) under-filled, so bulk-loaded
    /// trees are validated with this relaxed variant.
    pub fn check_invariants_bulk(&self) -> Result<(), String> {
        self.check_invariants_inner(false)
    }

    fn check_invariants_inner(&self, check_fill: bool) -> Result<(), String> {
        let Some(root) = self.root else {
            return if self.len == 0 {
                Ok(())
            } else {
                Err(format!("empty root but len = {}", self.len))
            };
        };
        if self.node(root).parent.is_some() {
            return Err("root has a parent".into());
        }
        let mut counted = 0usize;
        let mut leaf_depths = Vec::new();
        self.check_node(root, 0, &mut counted, &mut leaf_depths, check_fill)?;
        if counted != self.len {
            return Err(format!("len {} but counted {}", self.len, counted));
        }
        if let (Some(min), Some(max)) = (leaf_depths.iter().min(), leaf_depths.iter().max()) {
            if min != max {
                return Err(format!("leaves at different depths {min} vs {max}"));
            }
        }
        Ok(())
    }

    fn check_node(
        &self,
        id: NodeId,
        depth: usize,
        counted: &mut usize,
        leaf_depths: &mut Vec<usize>,
        check_fill: bool,
    ) -> Result<(), String> {
        let node = self.node(id);
        if !node.live {
            return Err(format!("node {id:?} reachable but not live"));
        }
        let is_root = self.root == Some(id);
        if check_fill && !is_root && node.len() < self.config.min_entries {
            return Err(format!(
                "node {id:?} underflows: {} < {}",
                node.len(),
                self.config.min_entries
            ));
        }
        if node.len() > self.config.max_entries {
            return Err(format!(
                "node {id:?} overflows: {} > {}",
                node.len(),
                self.config.max_entries
            ));
        }
        match &node.kind {
            NodeKind::Leaf(entries) => {
                leaf_depths.push(depth);
                *counted += entries.len();
                for e in entries {
                    if !node.mbr.contains_point(&e.point) {
                        return Err(format!(
                            "leaf {id:?} MBR does not contain entry {:?}",
                            e.point
                        ));
                    }
                }
                let mut exact = Rect::empty();
                for e in entries {
                    exact.expand_to_point(&e.point);
                }
                if (!is_root || !entries.is_empty()) && exact != node.mbr {
                    return Err(format!("leaf {id:?} MBR is not tight"));
                }
            }
            NodeKind::Internal(children) => {
                if children.is_empty() {
                    return Err(format!("internal node {id:?} has no children"));
                }
                let mut exact = Rect::empty();
                for c in children {
                    let child = self.node(*c);
                    if child.parent != Some(id) {
                        return Err(format!("child {c:?} has wrong parent"));
                    }
                    if !node.mbr.contains_rect(&child.mbr) {
                        return Err(format!("node {id:?} MBR does not contain child {c:?}"));
                    }
                    exact.expand_to_rect(&child.mbr);
                    self.check_node(*c, depth + 1, counted, leaf_depths, check_fill)?;
                }
                if exact != node.mbr {
                    return Err(format!("internal {id:?} MBR is not tight"));
                }
            }
        }
        Ok(())
    }
}

/// A read-only reference to a node of an [`RTree`], exposing exactly the
/// information the RkNNT traversal algorithms need: the node's MBR, whether
/// it is a leaf, its children and its leaf entries.
#[derive(Clone, Copy)]
pub struct NodeRef<'a, D> {
    tree: &'a RTree<D>,
    id: NodeId,
}

impl<'a, D: Clone + PartialEq> NodeRef<'a, D> {
    /// Builds a reference to a node the caller knows to be live (used by the
    /// traversal helpers in `query.rs`).
    pub(crate) fn make(tree: &'a RTree<D>, id: NodeId) -> Self {
        NodeRef { tree, id }
    }

    /// Identifier of this node within the tree arena.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Minimum bounding rectangle of the subtree rooted here.
    pub fn mbr(&self) -> Rect {
        self.tree.node(self.id).mbr
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.tree.node(self.id).is_leaf()
    }

    /// Number of entries (leaf) or children (internal).
    pub fn len(&self) -> usize {
        self.tree.node(self.id).len()
    }

    /// True when the node holds nothing (only possible for an empty root).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f` once per child of an internal node (no-op for leaves),
    /// allocating nothing. This is the traversal primitive the query hot
    /// paths use: a caller-owned `Vec<NodeId>` stack plus `for_each_child`
    /// replaces one `Vec<NodeRef>` allocation per node visit.
    #[inline]
    pub fn for_each_child<F: FnMut(NodeRef<'a, D>)>(&self, mut f: F) {
        if let NodeKind::Internal(children) = &self.tree.node(self.id).kind {
            for c in children {
                f(NodeRef {
                    tree: self.tree,
                    id: *c,
                });
            }
        }
    }

    /// Children of an internal node (empty for leaves).
    ///
    /// Thin allocating wrapper over [`NodeRef::for_each_child`], kept for
    /// tests and non-hot callers; traversal loops should use the visitor.
    pub fn children(&self) -> Vec<NodeRef<'a, D>> {
        let mut out = Vec::new();
        self.for_each_child(|c| out.push(c));
        out
    }

    /// Leaf entries of a leaf node (empty slice for internal nodes).
    pub fn entries(&self) -> &'a [LeafEntry<D>] {
        match &self.tree.node(self.id).kind {
            NodeKind::Leaf(entries) => entries,
            NodeKind::Internal(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        // Deterministic pseudo-random scatter without a rand dependency.
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 10_000) as f64 / 10.0;
                let y = ((i * 40503 + 17) % 10_000) as f64 / 10.0;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn insert_many_keeps_invariants() {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        for (i, p) in pts(500).into_iter().enumerate() {
            tree.insert(p, i as u32);
            if i % 50 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        assert_eq!(tree.len(), 500);
        tree.check_invariants().unwrap();
        assert!(tree.height() >= 2);
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        let points = pts(200);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i as u32);
        }
        assert!(tree.remove(&points[17], &17));
        assert!(!tree.remove(&points[17], &17), "already removed");
        assert!(!tree.remove(&Point::new(-1.0, -1.0), &9999));
        assert_eq!(tree.len(), 199);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn remove_everything_empties_tree() {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        let points = pts(120);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i as u32);
        }
        for (i, p) in points.iter().enumerate() {
            assert!(tree.remove(p, &(i as u32)), "entry {i} should exist");
            tree.check_invariants().unwrap();
        }
        assert!(tree.is_empty());
        assert!(tree.root().is_none());
    }

    #[test]
    fn duplicate_points_are_supported() {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        let p = Point::new(5.0, 5.0);
        for i in 0..50 {
            tree.insert(p, i);
        }
        assert_eq!(tree.len(), 50);
        tree.check_invariants().unwrap();
        assert!(tree.remove(&p, &25));
        assert!(!tree.remove(&p, &25));
        assert_eq!(tree.len(), 49);
    }

    #[test]
    fn node_ref_navigation_reaches_all_entries() {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        for (i, p) in pts(300).into_iter().enumerate() {
            tree.insert(p, i as u32);
        }
        let mut stack = vec![tree.root().unwrap()];
        let mut seen = 0;
        while let Some(node) = stack.pop() {
            if node.is_leaf() {
                seen += node.entries().len();
                // Every entry is inside the node MBR.
                for e in node.entries() {
                    assert!(node.mbr().contains_point(&e.point));
                }
            } else {
                assert!(node.entries().is_empty());
                for c in node.children() {
                    assert!(node.mbr().contains_rect(&c.mbr()));
                    stack.push(c);
                }
            }
        }
        assert_eq!(seen, 300);
    }

    #[test]
    fn node_ref_lookup_by_id() {
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::default());
        tree.insert(Point::new(1.0, 1.0), 1);
        let root = tree.root().unwrap();
        let id = root.id();
        assert!(tree.node_ref(id).is_some());
        assert!(tree.node_ref(NodeId::from_index(999)).is_none());
    }
}
