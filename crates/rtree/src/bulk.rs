//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs points into leaves by sorting on x, cutting into vertical
//! slices of ~√(n/fanout) leaves each, sorting each slice on y, and chunking
//! into full leaves. Upper levels are packed the same way over the node
//! centres. Bulk loading produces a tree with near-100% node utilisation,
//! which is what the paper's (static) route index wants, while later dynamic
//! inserts and deletes keep working through the normal maintenance paths.

use crate::config::RTreeConfig;
use crate::entry::LeafEntry;
use crate::node::{Node, NodeId, NodeKind};
use crate::tree::RTree;
use rknnt_geo::Point;

impl<D: Clone + PartialEq> RTree<D> {
    /// Builds a tree containing `items` using STR bulk loading.
    pub fn bulk_load(config: RTreeConfig, items: Vec<(Point, D)>) -> Self {
        let mut tree = RTree::new(config);
        if items.is_empty() {
            return tree;
        }
        let entries: Vec<LeafEntry<D>> = items
            .into_iter()
            .map(|(p, d)| LeafEntry::new(p, d))
            .collect();
        let total = entries.len();

        // Pack leaves.
        let leaf_ids = pack_leaves(&mut tree, entries, config.max_entries);

        // Pack internal levels until a single root remains.
        let mut level = leaf_ids;
        while level.len() > 1 {
            level = pack_internal(&mut tree, level, config.max_entries);
        }
        let root = level[0];
        tree.root = Some(root);
        tree.len = total;
        tree
    }
}

/// Groups sorted entries into leaves using the STR tiling and returns the
/// allocated leaf node ids.
fn pack_leaves<D: Clone + PartialEq>(
    tree: &mut RTree<D>,
    mut entries: Vec<LeafEntry<D>>,
    capacity: usize,
) -> Vec<NodeId> {
    let n = entries.len();
    let leaf_count = n.div_ceil(capacity);
    let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slice_count.max(1)).max(1);

    entries.sort_by(|a, b| a.point.x.total_cmp(&b.point.x));

    let mut ids = Vec::with_capacity(leaf_count);
    let mut start = 0;
    while start < entries.len() {
        let end = (start + slice_size).min(entries.len());
        let slice = &mut entries[start..end];
        slice.sort_by(|a, b| a.point.y.total_cmp(&b.point.y));
        let mut chunk_start = 0;
        while chunk_start < slice.len() {
            let chunk_end = (chunk_start + capacity).min(slice.len());
            let chunk: Vec<LeafEntry<D>> = slice[chunk_start..chunk_end].to_vec();
            let mut leaf = Node::new_leaf();
            leaf.kind = NodeKind::Leaf(chunk);
            let id = tree.alloc(leaf);
            tree.recompute_mbr(id);
            ids.push(id);
            chunk_start = chunk_end;
        }
        start = end;
    }
    ids
}

/// Packs one internal level above `children` and returns the new level's ids.
fn pack_internal<D: Clone + PartialEq>(
    tree: &mut RTree<D>,
    mut children: Vec<NodeId>,
    capacity: usize,
) -> Vec<NodeId> {
    let n = children.len();
    let node_count = n.div_ceil(capacity);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slice_count.max(1)).max(1);

    children.sort_by(|a, b| tree_center(tree, *a).x.total_cmp(&tree_center(tree, *b).x));

    let mut ids = Vec::with_capacity(node_count);
    let mut start = 0;
    while start < children.len() {
        let end = (start + slice_size).min(children.len());
        let slice = &mut children[start..end];
        slice.sort_by(|a, b| tree_center(tree, *a).y.total_cmp(&tree_center(tree, *b).y));
        let mut chunk_start = 0;
        while chunk_start < slice.len() {
            let chunk_end = (chunk_start + capacity).min(slice.len());
            let chunk: Vec<NodeId> = slice[chunk_start..chunk_end].to_vec();
            let mut parent = Node::new_internal();
            parent.kind = NodeKind::Internal(chunk.clone());
            let pid = tree.alloc(parent);
            for c in chunk {
                tree.node_mut(c).parent = Some(pid);
            }
            tree.recompute_mbr(pid);
            ids.push(pid);
            chunk_start = chunk_end;
        }
        start = end;
    }
    ids
}

fn tree_center<D: Clone + PartialEq>(tree: &RTree<D>, id: NodeId) -> Point {
    tree.node_ref(id)
        .map(|n| n.mbr().center())
        .unwrap_or(Point::ORIGIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Rect;

    fn scatter(n: usize) -> Vec<(Point, u32)> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 100_000) as f64 / 10.0;
                let y = ((i * 40503 + 17) % 100_000) as f64 / 10.0;
                (Point::new(x, y), i as u32)
            })
            .collect()
    }

    #[test]
    fn bulk_load_small_and_large() {
        for n in [0usize, 1, 5, 33, 200, 5000] {
            let items = scatter(n);
            let tree = RTree::bulk_load(RTreeConfig::default(), items.clone());
            assert_eq!(tree.len(), n, "n = {n}");
            tree.check_invariants_bulk().unwrap();
            // All points findable via range query over their exact location.
            if n > 0 {
                let (p, d) = items[n / 2];
                let hits = tree.range(&Rect::from_point(p));
                assert!(hits.iter().any(|e| e.data == d));
            }
        }
    }

    #[test]
    fn bulk_load_then_dynamic_updates() {
        let items = scatter(800);
        let mut tree = RTree::bulk_load(RTreeConfig::new(16, 6), items.clone());
        // Dynamic insert after bulk load.
        tree.insert(Point::new(-10.0, -10.0), 9999);
        assert_eq!(tree.len(), 801);
        // Dynamic remove of a bulk-loaded entry.
        let (p, d) = items[123];
        assert!(tree.remove(&p, &d));
        assert_eq!(tree.len(), 800);
        tree.check_invariants_bulk().unwrap();
    }

    #[test]
    fn bulk_load_high_utilisation() {
        let items = scatter(3200);
        let tree = RTree::bulk_load(RTreeConfig::new(32, 12), items);
        // STR packing should need close to n/capacity leaves; allow 40% slack.
        let min_possible = 3200usize.div_ceil(32);
        assert!(
            tree.node_count() < min_possible * 2,
            "nodes = {}",
            tree.node_count()
        );
    }
}
