//! Quadratic split of an overflowing node (Guttman's original heuristic).
//!
//! Quadratic split picks as seeds the pair of items whose combined bounding
//! rectangle wastes the most area, then assigns the remaining items one at a
//! time to the group whose MBR needs the least enlargement, while making sure
//! neither group can fall below the minimum fill factor.

use crate::entry::LeafEntry;
use crate::node::NodeId;
use rknnt_geo::Rect;

/// Splits leaf entries into two groups of at least `min_entries` each.
pub(crate) fn quadratic_split_entries<D>(
    entries: Vec<LeafEntry<D>>,
    min_entries: usize,
) -> (Vec<LeafEntry<D>>, Vec<LeafEntry<D>>) {
    let rects: Vec<Rect> = entries.iter().map(|e| Rect::from_point(e.point)).collect();
    let a_idx = split_indices(&rects, min_entries);
    partition(entries, &a_idx)
}

/// Splits internal-node children into two groups of at least `min_entries`.
pub(crate) fn quadratic_split_children(
    children: Vec<NodeId>,
    rects: Vec<Rect>,
    min_entries: usize,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let a_idx = split_indices(&rects, min_entries);
    partition(children, &a_idx)
}

/// Moves the items whose indices appear in `a_idx` into the first group and
/// everything else into the second, preserving relative order.
fn partition<T>(items: Vec<T>, a_idx: &[usize]) -> (Vec<T>, Vec<T>) {
    let mut in_a = vec![false; items.len()];
    for &i in a_idx {
        in_a[i] = true;
    }
    let mut group_a = Vec::with_capacity(a_idx.len());
    let mut group_b = Vec::with_capacity(items.len().saturating_sub(a_idx.len()));
    for (i, item) in items.into_iter().enumerate() {
        if in_a[i] {
            group_a.push(item);
        } else {
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

/// Computes the indices assigned to group A by a quadratic split of `rects`;
/// the remaining indices form group B.
fn split_indices(rects: &[Rect], min_entries: usize) -> Vec<usize> {
    let n = rects.len();
    debug_assert!(n >= 2);

    // Pick seeds: the pair wasting the most area when grouped together.
    let (mut seed_a, mut seed_b) = (0usize, 1usize.min(n - 1));
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a = vec![seed_a];
    let mut group_b_len = 1usize; // seed_b
    let mut mbr_a = rects[seed_a];
    let mut mbr_b = rects[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while !remaining.is_empty() {
        // Forced assignment when one group must absorb everything left to
        // reach the minimum fill.
        let left = remaining.len();
        if group_a.len() + left <= min_entries {
            group_a.append(&mut remaining);
            break;
        }
        if group_b_len + left <= min_entries {
            // Everything left goes to B, i.e. is simply not added to A.
            remaining.clear();
            break;
        }

        let next_pos = pick_next(&remaining, &mbr_a, &mbr_b, rects);
        let idx = remaining.swap_remove(next_pos);
        let enl_a = mbr_a.enlargement(&rects[idx]);
        let enl_b = mbr_b.enlargement(&rects[idx]);
        let to_a = match enl_a.partial_cmp(&enl_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => {
                // Tie-break on resulting area, then on group size.
                if mbr_a.area() != mbr_b.area() {
                    mbr_a.area() < mbr_b.area()
                } else {
                    group_a.len() <= group_b_len
                }
            }
        };
        if to_a {
            group_a.push(idx);
            mbr_a.expand_to_rect(&rects[idx]);
        } else {
            group_b_len += 1;
            mbr_b.expand_to_rect(&rects[idx]);
        }
    }

    group_a
}

/// Picks the remaining item with the greatest preference difference between
/// the two groups (Guttman's `PickNext`). Returns its position in
/// `remaining`, which must be non-empty.
fn pick_next(remaining: &[usize], mbr_a: &Rect, mbr_b: &Rect, rects: &[Rect]) -> usize {
    let mut best_pos = 0;
    let mut best_diff = f64::NEG_INFINITY;
    for (pos, &i) in remaining.iter().enumerate() {
        let d = (mbr_a.enlargement(&rects[i]) - mbr_b.enlargement(&rects[i])).abs();
        if d > best_diff {
            best_diff = d;
            best_pos = pos;
        }
    }
    best_pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn entries(points: &[(f64, f64)]) -> Vec<LeafEntry<u32>> {
        points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| LeafEntry::new(Point::new(*x, *y), i as u32))
            .collect()
    }

    #[test]
    fn split_respects_minimum_fill() {
        let e = entries(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (100.0, 100.0),
            (101.0, 100.0),
            (102.0, 100.0),
            (0.0, 1.0),
            (100.0, 101.0),
            (50.0, 50.0),
        ]);
        let n = e.len();
        let (a, b) = quadratic_split_entries(e, 3);
        assert!(a.len() >= 3);
        assert!(b.len() >= 3);
        assert_eq!(a.len() + b.len(), n);
    }

    #[test]
    fn split_separates_distant_clusters() {
        let e = entries(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (2.0, 0.5),
            (3.0, 1.5),
            (1000.0, 1000.0),
            (1001.0, 1001.0),
            (1002.0, 1000.5),
            (1003.0, 1001.5),
        ]);
        let (a, b) = quadratic_split_entries(e, 2);
        // Each group should be spatially homogeneous: all near origin or all far.
        let near = |p: &Point| p.x < 100.0;
        let a_near: Vec<bool> = a.iter().map(|e| near(&e.point)).collect();
        let b_near: Vec<bool> = b.iter().map(|e| near(&e.point)).collect();
        assert!(a_near.iter().all(|&x| x) || a_near.iter().all(|&x| !x));
        assert!(b_near.iter().all(|&x| x) || b_near.iter().all(|&x| !x));
        assert_ne!(a_near[0], b_near[0]);
    }

    #[test]
    fn split_children_preserves_ids() {
        let ids: Vec<NodeId> = (0..6).map(NodeId::from_index).collect();
        let rects: Vec<Rect> = (0..6)
            .map(|i| {
                let base = if i < 3 { 0.0 } else { 500.0 };
                Rect::new(
                    Point::new(base + i as f64, base),
                    Point::new(base + i as f64 + 1.0, base + 1.0),
                )
            })
            .collect();
        let (a, b) = quadratic_split_children(ids.clone(), rects, 2);
        let mut all: Vec<NodeId> = a.iter().chain(b.iter()).copied().collect();
        all.sort();
        assert_eq!(all, ids);
        assert!(a.len() >= 2 && b.len() >= 2);
    }

    #[test]
    fn split_handles_identical_points() {
        let e = entries(&[(5.0, 5.0); 10]);
        let (a, b) = quadratic_split_entries(e, 3);
        assert_eq!(a.len() + b.len(), 10);
        assert!(a.len() >= 3 && b.len() >= 3);
    }
}
