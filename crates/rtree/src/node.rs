//! Arena nodes of the R-tree.

use crate::entry::LeafEntry;
use rknnt_geo::Rect;
use serde::{Deserialize, Serialize};

/// Identifier of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the arena (exposed for diagnostics and for the NList
    /// structure in the index crate, which is keyed by node id).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a raw arena index. Only meaningful for ids that
    /// were previously obtained from the same tree.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

/// Contents of a node: either leaf entries or child node ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum NodeKind<D> {
    /// Leaf node holding data entries.
    Leaf(Vec<LeafEntry<D>>),
    /// Internal node holding children ids.
    Internal(Vec<NodeId>),
}

/// A node of the R-tree arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Node<D> {
    /// Minimum bounding rectangle of everything beneath this node.
    pub mbr: Rect,
    /// Parent node id; `None` for the root and for free-list slots.
    pub parent: Option<NodeId>,
    /// Leaf entries or children.
    pub kind: NodeKind<D>,
    /// Whether the slot is live (false once recycled into the free list).
    pub live: bool,
}

impl<D> Node<D> {
    pub(crate) fn new_leaf() -> Self {
        Node {
            mbr: Rect::empty(),
            parent: None,
            kind: NodeKind::Leaf(Vec::new()),
            live: true,
        }
    }

    pub(crate) fn new_internal() -> Self {
        Node {
            mbr: Rect::empty(),
            parent: None,
            kind: NodeKind::Internal(Vec::new()),
            live: true,
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    pub(crate) fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(entries) => entries.len(),
            NodeKind::Internal(children) => children.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn fresh_nodes_are_empty_and_live() {
        let leaf: Node<u32> = Node::new_leaf();
        let internal: Node<u32> = Node::new_internal();
        assert!(leaf.is_leaf());
        assert!(!internal.is_leaf());
        assert_eq!(leaf.len(), 0);
        assert_eq!(internal.len(), 0);
        assert!(leaf.live && internal.live);
        assert!(leaf.mbr.is_empty());
    }
}
