//! Tree fan-out configuration.

use serde::{Deserialize, Serialize};

/// Fan-out parameters of an [`crate::RTree`].
///
/// The defaults (max 32 / min 12) keep nodes cache-friendly for the point
/// data sizes of the paper's datasets (tens of thousands of route points,
/// hundreds of thousands of transition points); both bounds can be tuned for
/// ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RTreeConfig {
    /// Maximum number of entries (or children) per node. Exceeding it
    /// triggers a split.
    pub max_entries: usize,
    /// Minimum number of entries per node (except the root). Falling below
    /// it during deletion triggers condensation and re-insertion.
    pub min_entries: usize,
}

impl RTreeConfig {
    /// Creates a configuration, panicking on invalid bounds.
    ///
    /// # Panics
    /// Panics unless `2 <= min_entries <= max_entries / 2` and
    /// `max_entries >= 4`, the classic R-tree validity conditions.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        assert!(
            min_entries >= 2 && min_entries <= max_entries / 2,
            "min_entries must be in [2, max_entries/2]"
        );
        RTreeConfig {
            max_entries,
            min_entries,
        }
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_entries: 32,
            min_entries: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = RTreeConfig::default();
        assert!(c.min_entries >= 2);
        assert!(c.min_entries <= c.max_entries / 2);
    }

    #[test]
    fn new_accepts_valid_bounds() {
        let c = RTreeConfig::new(8, 3);
        assert_eq!(c.max_entries, 8);
        assert_eq!(c.min_entries, 3);
    }

    #[test]
    #[should_panic]
    fn new_rejects_tiny_max() {
        RTreeConfig::new(3, 2);
    }

    #[test]
    #[should_panic]
    fn new_rejects_min_above_half() {
        RTreeConfig::new(8, 5);
    }
}
