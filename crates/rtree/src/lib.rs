//! A from-scratch dynamic R-tree over point data.
//!
//! The RkNNT paper builds two R-trees (the `RR-tree` over route points and
//! the `TR-tree` over transition points) and requires three capabilities that
//! drive the design of this crate:
//!
//! 1. **Dynamic updates** — new transitions arrive continuously and old ones
//!    expire, so the tree supports [`RTree::insert`] and [`RTree::remove`]
//!    with the classic condense-and-reinsert maintenance.
//! 2. **Bulk loading** — the initial datasets are large, so
//!    [`RTree::bulk_load`] implements Sort-Tile-Recursive (STR) packing.
//! 3. **Node-level traversal** — Algorithms 2 and 4 of the paper run a
//!    best-first traversal in which *the algorithm*, not the tree, decides
//!    whether a node can be pruned (via the half-space / Voronoi filters).
//!    The read-only [`NodeRef`] API exposes node MBRs and children so query
//!    engines can drive their own heaps.
//!
//! Entries are points with an attached payload `D` (route id, transition
//! endpoint id, …). The tree is an in-memory arena of nodes addressed by
//! `u32` ids; no `unsafe` is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod config;
mod entry;
mod node;
mod query;
mod split;
mod tree;

pub use config::RTreeConfig;
pub use entry::LeafEntry;
pub use node::NodeId;
pub use query::KnnResult;
pub use tree::{NodeRef, RTree};
