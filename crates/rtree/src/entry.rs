//! Leaf entries: a point plus its payload.

use rknnt_geo::Point;
use serde::{Deserialize, Serialize};

/// A leaf entry of the R-tree: a point location and the payload `D` attached
/// to it (e.g. a route-point identifier or a transition endpoint identifier).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafEntry<D> {
    /// Location of the entry.
    pub point: Point,
    /// Payload carried with the entry.
    pub data: D,
}

impl<D> LeafEntry<D> {
    /// Creates a leaf entry.
    pub fn new(point: Point, data: D) -> Self {
        LeafEntry { point, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_preserves_fields() {
        let e = LeafEntry::new(Point::new(1.0, 2.0), 42u32);
        assert_eq!(e.point, Point::new(1.0, 2.0));
        assert_eq!(e.data, 42);
    }
}
