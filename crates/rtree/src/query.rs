//! Spatial queries: range search, k-nearest-neighbour search and iteration.

use crate::entry::LeafEntry;
use crate::node::{NodeId, NodeKind};
use crate::tree::{NodeRef, RTree};
use rknnt_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One result of a k-nearest-neighbour query.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnResult<D> {
    /// Location of the matching entry.
    pub point: Point,
    /// Payload of the matching entry.
    pub data: D,
    /// Euclidean distance from the query point to the entry.
    pub distance: f64,
}

/// Heap item used by the best-first kNN traversal. `BinaryHeap` is a
/// max-heap, so the ordering is reversed to pop the smallest distance first.
///
/// `tie` is a deterministic secondary key — `(arena node id, entry slot)` —
/// so exact-tie distances (two entries equidistant from the query) pop in a
/// well-defined order instead of whatever the heap's internal layout
/// happens to produce. Within one leaf this is entry-slot order, i.e.
/// insertion order of the tied points.
struct HeapItem {
    dist: f64,
    tie: (u32, u32),
    kind: HeapKind,
}

enum HeapKind {
    Node(NodeId),
    Entry(usize, NodeId),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.tie == other.tie
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

impl<D: Clone + PartialEq> RTree<D> {
    /// Depth-first traversal over the live nodes of the tree using a
    /// caller-provided stack. `f` is called once per visited node; returning
    /// `true` descends into an internal node's children (the return value is
    /// ignored for leaves). The stack is cleared on entry, so one buffer can
    /// be reused across many traversals and stops allocating once it has
    /// grown to the tree's pending-node high-water mark.
    pub fn visit<F>(&self, stack: &mut Vec<NodeId>, mut f: F)
    where
        F: FnMut(NodeRef<'_, D>) -> bool,
    {
        stack.clear();
        let Some(root) = self.root else { return };
        stack.push(root);
        while let Some(id) = stack.pop() {
            if f(NodeRef::make(self, id)) {
                if let NodeKind::Internal(children) = &self.node(id).kind {
                    stack.extend(children.iter().copied());
                }
            }
        }
    }

    /// Visits every entry whose point lies inside `rect` (boundary
    /// inclusive), reusing the caller's traversal stack — the allocation-free
    /// core of [`RTree::range`].
    pub fn for_each_in_with<'t, F>(&'t self, stack: &mut Vec<NodeId>, rect: &Rect, mut f: F)
    where
        F: FnMut(&'t LeafEntry<D>),
    {
        stack.clear();
        let Some(root) = self.root else { return };
        stack.push(root);
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if !node.mbr.intersects(rect) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if rect.contains_point(&e.point) {
                            f(e);
                        }
                    }
                }
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    /// Visits every entry whose point lies inside `rect` (boundary
    /// inclusive) with a one-shot internal stack; callers in query loops
    /// should prefer [`RTree::for_each_in_with`] and reuse their stack.
    pub fn for_each_in<'t, F>(&'t self, rect: &Rect, f: F)
    where
        F: FnMut(&'t LeafEntry<D>),
    {
        let mut stack = Vec::new();
        self.for_each_in_with(&mut stack, rect, f);
    }

    /// Returns references to all entries whose point lies inside `rect`
    /// (boundary inclusive). Thin allocating wrapper over
    /// [`RTree::for_each_in`], kept for tests and non-hot callers.
    pub fn range(&self, rect: &Rect) -> Vec<&LeafEntry<D>> {
        let mut out = Vec::new();
        self.for_each_in(rect, |e| out.push(e));
        out
    }

    /// Visits every entry in the tree in unspecified order, reusing the
    /// caller's traversal stack.
    pub fn for_each_entry_with<'t, F>(&'t self, stack: &mut Vec<NodeId>, mut f: F)
    where
        F: FnMut(&'t LeafEntry<D>),
    {
        stack.clear();
        let Some(root) = self.root else { return };
        stack.push(root);
        while let Some(id) = stack.pop() {
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => entries.iter().for_each(&mut f),
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    /// Visits every entry in the tree in unspecified order.
    pub fn for_each_entry<F: FnMut(&LeafEntry<D>)>(&self, f: F) {
        let mut stack = Vec::new();
        self.for_each_entry_with(&mut stack, f);
    }

    /// Collects all entries into a vector (mainly for tests and rebuilds).
    pub fn entries(&self) -> Vec<LeafEntry<D>> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_entry(|e| out.push(e.clone()));
        out
    }

    /// Best-first k-nearest-neighbour search from `query`.
    ///
    /// Results are sorted by increasing distance; exact-tie distances are
    /// broken deterministically by `(arena node id, entry slot)`, so for
    /// tied entries in the same leaf the insertion order of the points
    /// decides. Fewer than `k` results are returned when the tree has fewer
    /// entries.
    pub fn knn(&self, query: &Point, k: usize) -> Vec<KnnResult<D>> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 {
            return out;
        }
        let Some(root) = self.root else { return out };
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: self.node(root).mbr.min_dist(query),
            tie: (root.index() as u32, 0),
            kind: HeapKind::Node(root),
        });
        while let Some(item) = heap.pop() {
            if out.len() >= k {
                break;
            }
            match item.kind {
                HeapKind::Node(id) => match &self.node(id).kind {
                    NodeKind::Leaf(entries) => {
                        for (i, e) in entries.iter().enumerate() {
                            heap.push(HeapItem {
                                dist: e.point.distance(query),
                                tie: (id.index() as u32, i as u32),
                                kind: HeapKind::Entry(i, id),
                            });
                        }
                    }
                    NodeKind::Internal(children) => {
                        for c in children {
                            heap.push(HeapItem {
                                dist: self.node(*c).mbr.min_dist(query),
                                tie: (c.index() as u32, 0),
                                kind: HeapKind::Node(*c),
                            });
                        }
                    }
                },
                HeapKind::Entry(i, leaf) => {
                    if let NodeKind::Leaf(entries) = &self.node(leaf).kind {
                        let e = &entries[i];
                        out.push(KnnResult {
                            point: e.point,
                            data: e.data.clone(),
                            distance: item.dist,
                        });
                    }
                }
            }
        }
        out
    }

    /// Nearest single entry to `query`, if the tree is non-empty.
    pub fn nearest(&self, query: &Point) -> Option<KnnResult<D>> {
        self.knn(query, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn scatter(n: usize) -> Vec<(Point, u32)> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 100_000) as f64 / 37.0;
                let y = ((i * 40503 + 17) % 100_000) as f64 / 53.0;
                (Point::new(x, y), i as u32)
            })
            .collect()
    }

    fn build(n: usize) -> (RTree<u32>, Vec<(Point, u32)>) {
        let items = scatter(n);
        let mut tree = RTree::new(RTreeConfig::new(8, 3));
        for (p, d) in &items {
            tree.insert(*p, *d);
        }
        (tree, items)
    }

    #[test]
    fn range_matches_linear_scan() {
        let (tree, items) = build(600);
        let rect = Rect::new(Point::new(200.0, 300.0), Point::new(1200.0, 900.0));
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|(p, _)| rect.contains_point(p))
            .map(|(_, d)| *d)
            .collect();
        let mut got: Vec<u32> = tree.range(&rect).iter().map(|e| e.data).collect();
        expected.sort();
        got.sort();
        assert_eq!(expected, got);
        assert!(!got.is_empty(), "test rectangle should not be trivial");
    }

    #[test]
    fn knn_matches_linear_scan() {
        let (tree, items) = build(400);
        let q = Point::new(500.0, 500.0);
        for k in [1usize, 5, 17, 50] {
            let mut by_scan: Vec<(f64, u32)> =
                items.iter().map(|(p, d)| (p.distance(&q), *d)).collect();
            by_scan.sort_by(|a, b| a.0.total_cmp(&b.0));
            let got = tree.knn(&q, k);
            assert_eq!(got.len(), k.min(items.len()));
            for (i, r) in got.iter().enumerate() {
                assert!(
                    (r.distance - by_scan[i].0).abs() < 1e-9,
                    "k={k} rank {i}: {} vs {}",
                    r.distance,
                    by_scan[i].0
                );
            }
            // Distances must be non-decreasing.
            for w in got.windows(2) {
                assert!(w[0].distance <= w[1].distance + 1e-12);
            }
        }
    }

    #[test]
    fn knn_edge_cases() {
        let (tree, _) = build(10);
        assert!(tree.knn(&Point::new(0.0, 0.0), 0).is_empty());
        assert_eq!(tree.knn(&Point::new(0.0, 0.0), 100).len(), 10);
        let empty: RTree<u32> = RTree::default();
        assert!(empty.knn(&Point::new(0.0, 0.0), 3).is_empty());
        assert!(empty.nearest(&Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn knn_breaks_exact_ties_deterministically() {
        // Regression test for the heap ordering on exact-tie distances: two
        // entries equidistant from the query must come out in a pinned,
        // reproducible order (entry-slot order within the leaf — insertion
        // order here), not whatever the heap's layout produces.
        let mut tree: RTree<u32> = RTree::new(RTreeConfig::new(8, 3));
        tree.insert(Point::new(0.0, 1.0), 0); // dist 1, inserted first
        tree.insert(Point::new(0.0, -1.0), 1); // dist 1, inserted second
        tree.insert(Point::new(1.0, 0.0), 2); // dist 1, inserted third
        tree.insert(Point::new(5.0, 0.0), 3); // dist 5
        let q = Point::new(0.0, 0.0);
        let first = tree.knn(&q, 4);
        assert_eq!(first.len(), 4);
        assert_eq!(first[0].distance, first[1].distance);
        assert_eq!(first[1].distance, first[2].distance);
        let order: Vec<u32> = first.iter().map(|r| r.data).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "ties pinned by entry-slot order");
        for _ in 0..5 {
            let again: Vec<u32> = tree.knn(&q, 4).iter().map(|r| r.data).collect();
            assert_eq!(again, order, "tie order must be stable across calls");
        }
        // nearest() inherits the same tie-break.
        assert_eq!(tree.nearest(&q).unwrap().data, 0);
    }

    #[test]
    fn visitor_traversals_match_allocating_wrappers() {
        let (tree, items) = build(500);
        let rect = Rect::new(Point::new(100.0, 100.0), Point::new(1500.0, 1200.0));
        let expected: Vec<u32> = tree.range(&rect).iter().map(|e| e.data).collect();
        // for_each_in with a reused stack sees exactly the same entries in
        // the same order as the Vec-returning wrapper.
        let mut stack = Vec::new();
        let mut got = Vec::new();
        tree.for_each_in_with(&mut stack, &rect, |e| got.push(e.data));
        assert_eq!(got, expected);
        assert!(stack.is_empty(), "stack is drained after the traversal");
        // Reusing the same stack for a second query works.
        got.clear();
        tree.for_each_in_with(&mut stack, &rect, |e| got.push(e.data));
        assert_eq!(got, expected);
        // visit() reaches every entry when the closure always descends.
        let mut seen = 0usize;
        tree.visit(&mut stack, |node| {
            if node.is_leaf() {
                seen += node.entries().len();
            }
            true
        });
        assert_eq!(seen, items.len());
        // ...and prunes subtrees when it declines to descend.
        let mut visited = 0usize;
        tree.visit(&mut stack, |_| {
            visited += 1;
            false
        });
        assert_eq!(visited, 1, "declining the root visits nothing else");
        // for_each_child matches children() exactly.
        let root = tree.root().unwrap();
        let mut child_ids = Vec::new();
        root.for_each_child(|c| child_ids.push(c.id()));
        let wrapper_ids: Vec<_> = root.children().iter().map(|c| c.id()).collect();
        assert_eq!(child_ids, wrapper_ids);
        assert!(!child_ids.is_empty());
    }

    #[test]
    fn nearest_returns_closest() {
        let (tree, items) = build(200);
        let q = Point::new(123.0, 456.0);
        let best = items
            .iter()
            .map(|(p, d)| (p.distance(&q), *d))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        let got = tree.nearest(&q).unwrap();
        assert!((got.distance - best.0).abs() < 1e-9);
    }

    #[test]
    fn entries_and_for_each_cover_everything() {
        let (tree, items) = build(150);
        let mut ids: Vec<u32> = tree.entries().iter().map(|e| e.data).collect();
        ids.sort();
        let mut expected: Vec<u32> = items.iter().map(|(_, d)| *d).collect();
        expected.sort();
        assert_eq!(ids, expected);
        let mut count = 0;
        tree.for_each_entry(|_| count += 1);
        assert_eq!(count, 150);
    }
}
