//! Spatial queries: range search, k-nearest-neighbour search and iteration.

use crate::entry::LeafEntry;
use crate::node::{NodeId, NodeKind};
use crate::tree::RTree;
use rknnt_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One result of a k-nearest-neighbour query.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnResult<D> {
    /// Location of the matching entry.
    pub point: Point,
    /// Payload of the matching entry.
    pub data: D,
    /// Euclidean distance from the query point to the entry.
    pub distance: f64,
}

/// Heap item used by the best-first kNN traversal. `BinaryHeap` is a
/// max-heap, so the ordering is reversed to pop the smallest distance first.
struct HeapItem {
    dist: f64,
    kind: HeapKind,
}

enum HeapKind {
    Node(NodeId),
    Entry(usize, NodeId),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist)
    }
}

impl<D: Clone + PartialEq> RTree<D> {
    /// Returns references to all entries whose point lies inside `rect`
    /// (boundary inclusive).
    pub fn range(&self, rect: &Rect) -> Vec<&LeafEntry<D>> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if !node.mbr.intersects(rect) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    out.extend(entries.iter().filter(|e| rect.contains_point(&e.point)));
                }
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        out
    }

    /// Visits every entry in the tree in unspecified order.
    pub fn for_each_entry<F: FnMut(&LeafEntry<D>)>(&self, mut f: F) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match &self.node(id).kind {
                NodeKind::Leaf(entries) => entries.iter().for_each(&mut f),
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    /// Collects all entries into a vector (mainly for tests and rebuilds).
    pub fn entries(&self) -> Vec<LeafEntry<D>> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_entry(|e| out.push(e.clone()));
        out
    }

    /// Best-first k-nearest-neighbour search from `query`.
    ///
    /// Results are sorted by increasing distance; ties are broken
    /// arbitrarily. Fewer than `k` results are returned when the tree has
    /// fewer entries.
    pub fn knn(&self, query: &Point, k: usize) -> Vec<KnnResult<D>> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 {
            return out;
        }
        let Some(root) = self.root else { return out };
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: self.node(root).mbr.min_dist(query),
            kind: HeapKind::Node(root),
        });
        while let Some(item) = heap.pop() {
            if out.len() >= k {
                break;
            }
            match item.kind {
                HeapKind::Node(id) => match &self.node(id).kind {
                    NodeKind::Leaf(entries) => {
                        for (i, e) in entries.iter().enumerate() {
                            heap.push(HeapItem {
                                dist: e.point.distance(query),
                                kind: HeapKind::Entry(i, id),
                            });
                        }
                    }
                    NodeKind::Internal(children) => {
                        for c in children {
                            heap.push(HeapItem {
                                dist: self.node(*c).mbr.min_dist(query),
                                kind: HeapKind::Node(*c),
                            });
                        }
                    }
                },
                HeapKind::Entry(i, leaf) => {
                    if let NodeKind::Leaf(entries) = &self.node(leaf).kind {
                        let e = &entries[i];
                        out.push(KnnResult {
                            point: e.point,
                            data: e.data.clone(),
                            distance: item.dist,
                        });
                    }
                }
            }
        }
        out
    }

    /// Nearest single entry to `query`, if the tree is non-empty.
    pub fn nearest(&self, query: &Point) -> Option<KnnResult<D>> {
        self.knn(query, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn scatter(n: usize) -> Vec<(Point, u32)> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 100_000) as f64 / 37.0;
                let y = ((i * 40503 + 17) % 100_000) as f64 / 53.0;
                (Point::new(x, y), i as u32)
            })
            .collect()
    }

    fn build(n: usize) -> (RTree<u32>, Vec<(Point, u32)>) {
        let items = scatter(n);
        let mut tree = RTree::new(RTreeConfig::new(8, 3));
        for (p, d) in &items {
            tree.insert(*p, *d);
        }
        (tree, items)
    }

    #[test]
    fn range_matches_linear_scan() {
        let (tree, items) = build(600);
        let rect = Rect::new(Point::new(200.0, 300.0), Point::new(1200.0, 900.0));
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|(p, _)| rect.contains_point(p))
            .map(|(_, d)| *d)
            .collect();
        let mut got: Vec<u32> = tree.range(&rect).iter().map(|e| e.data).collect();
        expected.sort();
        got.sort();
        assert_eq!(expected, got);
        assert!(!got.is_empty(), "test rectangle should not be trivial");
    }

    #[test]
    fn knn_matches_linear_scan() {
        let (tree, items) = build(400);
        let q = Point::new(500.0, 500.0);
        for k in [1usize, 5, 17, 50] {
            let mut by_scan: Vec<(f64, u32)> =
                items.iter().map(|(p, d)| (p.distance(&q), *d)).collect();
            by_scan.sort_by(|a, b| a.0.total_cmp(&b.0));
            let got = tree.knn(&q, k);
            assert_eq!(got.len(), k.min(items.len()));
            for (i, r) in got.iter().enumerate() {
                assert!(
                    (r.distance - by_scan[i].0).abs() < 1e-9,
                    "k={k} rank {i}: {} vs {}",
                    r.distance,
                    by_scan[i].0
                );
            }
            // Distances must be non-decreasing.
            for w in got.windows(2) {
                assert!(w[0].distance <= w[1].distance + 1e-12);
            }
        }
    }

    #[test]
    fn knn_edge_cases() {
        let (tree, _) = build(10);
        assert!(tree.knn(&Point::new(0.0, 0.0), 0).is_empty());
        assert_eq!(tree.knn(&Point::new(0.0, 0.0), 100).len(), 10);
        let empty: RTree<u32> = RTree::default();
        assert!(empty.knn(&Point::new(0.0, 0.0), 3).is_empty());
        assert!(empty.nearest(&Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn nearest_returns_closest() {
        let (tree, items) = build(200);
        let q = Point::new(123.0, 456.0);
        let best = items
            .iter()
            .map(|(p, d)| (p.distance(&q), *d))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        let got = tree.nearest(&q).unwrap();
        assert!((got.distance - best.0).abs() < 1e-9);
    }

    #[test]
    fn entries_and_for_each_cover_everything() {
        let (tree, items) = build(150);
        let mut ids: Vec<u32> = tree.entries().iter().map(|e| e.data).collect();
        ids.sort();
        let mut expected: Vec<u32> = items.iter().map(|(_, d)| *d).collect();
        expected.sort();
        assert_eq!(ids, expected);
        let mut count = 0;
        tree.for_each_entry(|_| count += 1);
        assert_eq!(count, 150);
    }
}
