//! Blocking client speaking the [`crate::protocol`] codec.
//!
//! One request at a time via [`Client::query`] and friends, or pipelined
//! via [`Client::send_query`] / [`Client::recv_query_reply`]. Every call
//! that crosses admission control returns a [`Reply`], because the server
//! may answer `Overloaded` instead — load shedding is part of the contract,
//! not an error. Server-pushed [`Message::Delta`] frames arriving between
//! replies are buffered and drained with [`Client::take_deltas`] (or
//! awaited with [`Client::recv_delta`]).

use crate::protocol::{
    read_frame, write_frame, IntrospectReport, IntrospectWhat, Message, OverloadInfo,
};
use rknnt_core::RknntQuery;
use rknnt_data::codec::CodecError;
use rknnt_index::TransitionId;
use rknnt_service::{DeltaReason, StoreUpdate};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent bytes the codec rejects.
    Protocol(CodecError),
    /// The server answered with a typed [`Message::Error`].
    Server {
        /// Echoed request id (0 if the server could not recover it).
        id: u64,
        /// The server's description of the failure.
        message: String,
    },
    /// The server answered with a structurally valid but contextually wrong
    /// message kind or id.
    UnexpectedReply(&'static str),
    /// The server closed the connection.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { id, message } => {
                write!(f, "server error (request {id}): {message}")
            }
            ClientError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The outcome of an admitted-or-shed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply<T> {
    /// The request was admitted, executed, and answered.
    Answered(T),
    /// Admission control shed the request; nothing was executed.
    Overloaded(OverloadInfo),
}

impl<T> Reply<T> {
    /// The answer, if the request was not shed.
    pub fn answered(self) -> Option<T> {
        match self {
            Reply::Answered(v) => Some(v),
            Reply::Overloaded(_) => None,
        }
    }

    /// Whether the request was shed.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, Reply::Overloaded(_))
    }
}

/// A successful subscription registration.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Handle for [`Client::unsubscribe`] and delta correlation.
    pub subscription: u64,
    /// The standing query's initial result.
    pub transitions: Vec<TransitionId>,
}

/// Counts from a successful [`Client::apply_updates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateCounts {
    /// Updates applied to the stores.
    pub applied: u64,
    /// Updates rejected at the store boundary.
    pub rejected: u64,
}

/// A server-pushed subscription result change.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// The subscription handle the delta belongs to.
    pub subscription: u64,
    /// Transitions that entered the result, sorted ascending.
    pub entered: Vec<TransitionId>,
    /// Transitions that left the result, sorted ascending.
    pub left: Vec<TransitionId>,
    /// Why the result changed.
    pub reason: DeltaReason,
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
    deltas: Vec<DeltaEvent>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            next_id: 1,
            deltas: Vec::new(),
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send(&mut self, msg: &Message) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &msg.encode())?;
        Ok(())
    }

    /// Reads the next non-push message, buffering any deltas that arrive
    /// in between.
    fn recv(&mut self) -> Result<Message, ClientError> {
        loop {
            match read_frame(&mut self.stream, &mut self.buf)? {
                Some(()) => {}
                None => return Err(ClientError::Disconnected),
            }
            let msg = Message::decode(&self.buf)?;
            if let Message::Delta {
                subscription,
                entered,
                left,
                reason,
            } = msg
            {
                self.deltas.push(DeltaEvent {
                    subscription,
                    entered,
                    left,
                    reason,
                });
                continue;
            }
            return Ok(msg);
        }
    }

    /// Executes one query round-trip.
    pub fn query(&mut self, query: &RknntQuery) -> Result<Reply<Vec<TransitionId>>, ClientError> {
        let id = self.send_query(query)?;
        let (rid, reply) = self.recv_query_reply()?;
        if rid != id {
            return Err(ClientError::UnexpectedReply("reply id mismatch"));
        }
        Ok(reply)
    }

    /// Pipelining: sends a query without waiting, returning its request id.
    pub fn send_query(&mut self, query: &RknntQuery) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Query {
            id,
            query: query.clone(),
            trace: None,
        })?;
        Ok(id)
    }

    /// [`Client::query`] with a trace id: the server samples the id
    /// deterministically and, if kept, records a span tree for this exact
    /// request (retrievable via [`Client::introspect`] once the request is
    /// slow enough to promote). The answer is byte-identical to the
    /// untraced call.
    pub fn query_traced(
        &mut self,
        query: &RknntQuery,
        trace_id: u64,
    ) -> Result<Reply<Vec<TransitionId>>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Query {
            id,
            query: query.clone(),
            trace: Some(trace_id),
        })?;
        let (rid, reply) = self.recv_query_reply()?;
        if rid != id {
            return Err(ClientError::UnexpectedReply("reply id mismatch"));
        }
        Ok(reply)
    }

    /// Pipelining: receives the next query reply (answered or shed) with
    /// its request id. Replies come back in admission order per connection.
    pub fn recv_query_reply(&mut self) -> Result<(u64, Reply<Vec<TransitionId>>), ClientError> {
        match self.recv()? {
            Message::QueryOk { id, transitions } => Ok((id, Reply::Answered(transitions))),
            Message::Overloaded { id, info } => Ok((id, Reply::Overloaded(info))),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted a query reply")),
        }
    }

    /// Registers a standing query.
    pub fn subscribe(&mut self, query: &RknntQuery) -> Result<Reply<Subscription>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Subscribe {
            id,
            query: query.clone(),
        })?;
        match self.recv()? {
            Message::SubscribeOk {
                id: rid,
                subscription,
                transitions,
            } if rid == id => Ok(Reply::Answered(Subscription {
                subscription,
                transitions,
            })),
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted a subscribe reply")),
        }
    }

    /// Drops a standing query. `Answered(true)` iff the handle named a live
    /// subscription owned by this connection.
    pub fn unsubscribe(&mut self, subscription: u64) -> Result<Reply<bool>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Unsubscribe { id, subscription })?;
        match self.recv()? {
            Message::UnsubscribeOk { id: rid, existed } if rid == id => {
                Ok(Reply::Answered(existed))
            }
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted an unsubscribe reply")),
        }
    }

    /// Applies store updates through the server.
    pub fn apply_updates(
        &mut self,
        updates: Vec<StoreUpdate>,
    ) -> Result<Reply<UpdateCounts>, ClientError> {
        self.apply_updates_inner(updates, None)
    }

    /// [`Client::apply_updates`] with a trace id — the update-side twin of
    /// [`Client::query_traced`]; the WAL append lands in the span tree.
    pub fn apply_updates_traced(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace_id: u64,
    ) -> Result<Reply<UpdateCounts>, ClientError> {
        self.apply_updates_inner(updates, Some(trace_id))
    }

    fn apply_updates_inner(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace: Option<u64>,
    ) -> Result<Reply<UpdateCounts>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::ApplyUpdates { id, updates, trace })?;
        match self.recv()? {
            Message::UpdatesOk {
                id: rid,
                applied,
                rejected,
            } if rid == id => Ok(Reply::Answered(UpdateCounts { applied, rejected })),
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted an updates reply")),
        }
    }

    /// Fetches server internals: metrics exposition, the slow-query log, or
    /// a flight-recorder window. Answered from the server's reader thread,
    /// so it works even while the executor is saturated — there is no
    /// `Overloaded` arm because introspection is never queued or shed.
    pub fn introspect(&mut self, what: IntrospectWhat) -> Result<IntrospectReport, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Introspect { id, what })?;
        match self.recv()? {
            Message::IntrospectOk { id: rid, report } if rid == id => Ok(report),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted an introspect reply")),
        }
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<Reply<()>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Ping { id })?;
        match self.recv()? {
            Message::Pong { id: rid } if rid == id => Ok(Reply::Answered(())),
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted a pong")),
        }
    }

    /// Drains deltas buffered while waiting for replies.
    pub fn take_deltas(&mut self) -> Vec<DeltaEvent> {
        std::mem::take(&mut self.deltas)
    }

    /// Blocks until at least one delta is available, then pops the oldest.
    pub fn recv_delta(&mut self) -> Result<DeltaEvent, ClientError> {
        while self.deltas.is_empty() {
            match read_frame(&mut self.stream, &mut self.buf)? {
                Some(()) => {}
                None => return Err(ClientError::Disconnected),
            }
            match Message::decode(&self.buf)? {
                Message::Delta {
                    subscription,
                    entered,
                    left,
                    reason,
                } => self.deltas.push(DeltaEvent {
                    subscription,
                    entered,
                    left,
                    reason,
                }),
                Message::Error { id, message } => return Err(ClientError::Server { id, message }),
                _ => return Err(ClientError::UnexpectedReply("wanted a delta push")),
            }
        }
        Ok(self.deltas.remove(0))
    }
}
