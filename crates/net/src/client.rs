//! Blocking client speaking the [`crate::protocol`] codec.
//!
//! One request at a time via [`Client::query`] and friends, or pipelined
//! via [`Client::send_query`] / [`Client::recv_query_reply`]. Every call
//! that crosses admission control returns a [`Reply`], because the server
//! may answer `Overloaded` instead — load shedding is part of the contract,
//! not an error. Server-pushed [`Message::Delta`] frames arriving between
//! replies are buffered and drained with [`Client::take_deltas`] (or
//! awaited with [`Client::recv_delta`]).

use crate::protocol::{
    frame_bytes, read_frame, IntrospectReport, IntrospectWhat, Message, OverloadInfo,
};
use rknnt_core::RknntQuery;
use rknnt_data::codec::CodecError;
use rknnt_fault::{Failpoints, FaultAction};
use rknnt_index::TransitionId;
use rknnt_service::{DeltaReason, StoreUpdate};
use std::fmt;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// A blocking read exceeded the configured
    /// [`ClientConfig::read_timeout`] deadline. The connection is left in an
    /// indeterminate mid-read state — retry on a fresh connection, never on
    /// this one.
    Timeout,
    /// The server sent bytes the codec rejects.
    Protocol(CodecError),
    /// The server answered with a typed [`Message::Error`].
    Server {
        /// Echoed request id (0 if the server could not recover it).
        id: u64,
        /// The server's description of the failure.
        message: String,
    },
    /// The server answered with a structurally valid but contextually wrong
    /// message kind or id.
    UnexpectedReply(&'static str),
    /// The server closed the connection.
    Disconnected,
}

/// The net crate's error type. `ClientError` predates the remote-shard
/// layer; this alias is the name new code should use.
pub type NetError = ClientError;

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout => write!(f, "read timed out waiting for a reply"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { id, message } => {
                write!(f, "server error (request {id}): {message}")
            }
            ClientError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // A timed-out blocking socket read surfaces as `WouldBlock` on Unix
        // and `TimedOut` on Windows; both mean the deadline fired.
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            return ClientError::Timeout;
        }
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The outcome of an admitted-or-shed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply<T> {
    /// The request was admitted, executed, and answered.
    Answered(T),
    /// Admission control shed the request; nothing was executed.
    Overloaded(OverloadInfo),
}

impl<T> Reply<T> {
    /// The answer, if the request was not shed.
    pub fn answered(self) -> Option<T> {
        match self {
            Reply::Answered(v) => Some(v),
            Reply::Overloaded(_) => None,
        }
    }

    /// Whether the request was shed.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, Reply::Overloaded(_))
    }
}

/// A successful subscription registration.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Handle for [`Client::unsubscribe`] and delta correlation.
    pub subscription: u64,
    /// The standing query's initial result.
    pub transitions: Vec<TransitionId>,
}

/// Counts from a successful [`Client::apply_updates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateCounts {
    /// Updates applied to the stores.
    pub applied: u64,
    /// Updates rejected at the store boundary.
    pub rejected: u64,
}

/// A server-pushed subscription result change.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// The subscription handle the delta belongs to.
    pub subscription: u64,
    /// Transitions that entered the result, sorted ascending.
    pub entered: Vec<TransitionId>,
    /// Transitions that left the result, sorted ascending.
    pub left: Vec<TransitionId>,
    /// Why the result changed.
    pub reason: DeltaReason,
}

/// Backend health as reported by a [`Client::health`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthStatus {
    /// The backend's store generation.
    pub generation: u64,
    /// Applied-update watermark (see [`Message::HealthOk`]).
    pub watermark: u64,
}

/// Connection-level knobs for [`Client::connect_with`].
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Deadline for each blocking read. `None` (the default) blocks forever
    /// — the pre-existing behaviour. With a deadline, a stalled server
    /// surfaces as [`ClientError::Timeout`] instead of a hang.
    pub read_timeout: Option<Duration>,
    /// Armed failpoints for deterministic fault injection on this
    /// connection's write path (site `net.client.write`, hit once per
    /// outgoing frame). `None` sends clean frames.
    pub failpoints: Option<Arc<Failpoints>>,
}

impl ClientConfig {
    /// Sets the per-read deadline.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Arms failpoints on the write path.
    pub fn with_failpoints(mut self, failpoints: Arc<Failpoints>) -> Self {
        self.failpoints = Some(failpoints);
        self
    }
}

/// Failpoint site hit once per frame the client writes.
pub const CLIENT_WRITE_SITE: &str = "net.client.write";

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
    deltas: Vec<DeltaEvent>,
    failpoints: Option<Arc<Failpoints>>,
}

impl Client {
    /// Connects to a server with default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server with explicit connection-level knobs.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            next_id: 1,
            deltas: Vec::new(),
            failpoints: config.failpoints,
        })
    }

    /// Changes the per-read deadline on the live connection. `None` removes
    /// it (reads block forever again).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send(&mut self, msg: &Message) -> Result<(), ClientError> {
        let mut frame = frame_bytes(&msg.encode())?;
        if let Some(fp) = &self.failpoints {
            match fp.hit(CLIENT_WRITE_SITE) {
                Some(FaultAction::Cut { after }) => {
                    // Sever mid-frame: push a prefix of the frame, then shut
                    // the write half so the server sees a hard EOF inside
                    // the frame, never a clean boundary.
                    let keep = after.unwrap_or(0).min(frame.len().saturating_sub(1));
                    self.stream.write_all(&frame[..keep])?;
                    let _ = self.stream.shutdown(Shutdown::Write);
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        format!("injected cut after {keep} of {} frame bytes", frame.len()),
                    )));
                }
                Some(FaultAction::Corrupt { offset, mask }) => {
                    // Flip bits in the wire bytes; the frame still ships, so
                    // the corruption must be caught by the server's
                    // checksum, not by this client erroring early.
                    let at = offset.min(frame.len() - 1);
                    frame[at] ^= if mask == 0 { 0x01 } else { mask };
                }
                Some(FaultAction::Fail { message }) => {
                    return Err(ClientError::Io(io::Error::other(message)));
                }
                Some(FaultAction::Delay { nanos }) => {
                    std::thread::sleep(Duration::from_nanos(nanos));
                }
                Some(FaultAction::Kill) | Some(FaultAction::Panic { .. }) | None => {}
            }
        }
        self.stream.write_all(&frame)?;
        Ok(())
    }

    /// Reads the next non-push message, buffering any deltas that arrive
    /// in between.
    fn recv(&mut self) -> Result<Message, ClientError> {
        loop {
            match read_frame(&mut self.stream, &mut self.buf)? {
                Some(()) => {}
                None => return Err(ClientError::Disconnected),
            }
            let msg = Message::decode(&self.buf)?;
            if let Message::Delta {
                subscription,
                entered,
                left,
                reason,
            } = msg
            {
                self.deltas.push(DeltaEvent {
                    subscription,
                    entered,
                    left,
                    reason,
                });
                continue;
            }
            return Ok(msg);
        }
    }

    /// Executes one query round-trip.
    pub fn query(&mut self, query: &RknntQuery) -> Result<Reply<Vec<TransitionId>>, ClientError> {
        let id = self.send_query(query)?;
        let (rid, reply) = self.recv_query_reply()?;
        if rid != id {
            return Err(ClientError::UnexpectedReply("reply id mismatch"));
        }
        Ok(reply)
    }

    /// Pipelining: sends a query without waiting, returning its request id.
    pub fn send_query(&mut self, query: &RknntQuery) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Query {
            id,
            query: query.clone(),
            trace: None,
        })?;
        Ok(id)
    }

    /// [`Client::query`] with a trace id: the server samples the id
    /// deterministically and, if kept, records a span tree for this exact
    /// request (retrievable via [`Client::introspect`] once the request is
    /// slow enough to promote). The answer is byte-identical to the
    /// untraced call.
    pub fn query_traced(
        &mut self,
        query: &RknntQuery,
        trace_id: u64,
    ) -> Result<Reply<Vec<TransitionId>>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Query {
            id,
            query: query.clone(),
            trace: Some(trace_id),
        })?;
        let (rid, reply) = self.recv_query_reply()?;
        if rid != id {
            return Err(ClientError::UnexpectedReply("reply id mismatch"));
        }
        Ok(reply)
    }

    /// Pipelining: receives the next query reply (answered or shed) with
    /// its request id. Replies come back in admission order per connection.
    pub fn recv_query_reply(&mut self) -> Result<(u64, Reply<Vec<TransitionId>>), ClientError> {
        match self.recv()? {
            Message::QueryOk { id, transitions } => Ok((id, Reply::Answered(transitions))),
            Message::Overloaded { id, info } => Ok((id, Reply::Overloaded(info))),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted a query reply")),
        }
    }

    /// Registers a standing query.
    pub fn subscribe(&mut self, query: &RknntQuery) -> Result<Reply<Subscription>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Subscribe {
            id,
            query: query.clone(),
        })?;
        match self.recv()? {
            Message::SubscribeOk {
                id: rid,
                subscription,
                transitions,
            } if rid == id => Ok(Reply::Answered(Subscription {
                subscription,
                transitions,
            })),
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted a subscribe reply")),
        }
    }

    /// Drops a standing query. `Answered(true)` iff the handle named a live
    /// subscription owned by this connection.
    pub fn unsubscribe(&mut self, subscription: u64) -> Result<Reply<bool>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Unsubscribe { id, subscription })?;
        match self.recv()? {
            Message::UnsubscribeOk { id: rid, existed } if rid == id => {
                Ok(Reply::Answered(existed))
            }
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted an unsubscribe reply")),
        }
    }

    /// Applies store updates through the server.
    pub fn apply_updates(
        &mut self,
        updates: Vec<StoreUpdate>,
    ) -> Result<Reply<UpdateCounts>, ClientError> {
        self.apply_updates_inner(updates, None)
    }

    /// [`Client::apply_updates`] with a trace id — the update-side twin of
    /// [`Client::query_traced`]; the WAL append lands in the span tree.
    pub fn apply_updates_traced(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace_id: u64,
    ) -> Result<Reply<UpdateCounts>, ClientError> {
        self.apply_updates_inner(updates, Some(trace_id))
    }

    fn apply_updates_inner(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace: Option<u64>,
    ) -> Result<Reply<UpdateCounts>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::ApplyUpdates { id, updates, trace })?;
        match self.recv()? {
            Message::UpdatesOk {
                id: rid,
                applied,
                rejected,
            } if rid == id => Ok(Reply::Answered(UpdateCounts { applied, rejected })),
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted an updates reply")),
        }
    }

    /// Fetches server internals: metrics exposition, the slow-query log, or
    /// a flight-recorder window. Answered from the server's reader thread,
    /// so it works even while the executor is saturated — there is no
    /// `Overloaded` arm because introspection is never queued or shed.
    pub fn introspect(&mut self, what: IntrospectWhat) -> Result<IntrospectReport, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Introspect { id, what })?;
        match self.recv()? {
            Message::IntrospectOk { id: rid, report } if rid == id => Ok(report),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted an introspect reply")),
        }
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<Reply<()>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Ping { id })?;
        match self.recv()? {
            Message::Pong { id: rid } if rid == id => Ok(Reply::Answered(())),
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted a pong")),
        }
    }

    /// Health / resync probe: fetches the backend's store generation and
    /// applied-update watermark. Travels the full executor path (unlike
    /// [`Client::introspect`]), so an answer proves the request pipeline is
    /// live end to end.
    pub fn health(&mut self) -> Result<Reply<HealthStatus>, ClientError> {
        let id = self.fresh_id();
        self.send(&Message::Health { id })?;
        match self.recv()? {
            Message::HealthOk {
                id: rid,
                generation,
                watermark,
            } if rid == id => Ok(Reply::Answered(HealthStatus {
                generation,
                watermark,
            })),
            Message::Overloaded { id: rid, info } if rid == id => Ok(Reply::Overloaded(info)),
            Message::Error { id, message } => Err(ClientError::Server { id, message }),
            _ => Err(ClientError::UnexpectedReply("wanted a health reply")),
        }
    }

    /// Drains deltas buffered while waiting for replies.
    pub fn take_deltas(&mut self) -> Vec<DeltaEvent> {
        std::mem::take(&mut self.deltas)
    }

    /// Blocks until at least one delta is available, then pops the oldest.
    pub fn recv_delta(&mut self) -> Result<DeltaEvent, ClientError> {
        while self.deltas.is_empty() {
            match read_frame(&mut self.stream, &mut self.buf)? {
                Some(()) => {}
                None => return Err(ClientError::Disconnected),
            }
            match Message::decode(&self.buf)? {
                Message::Delta {
                    subscription,
                    entered,
                    left,
                    reason,
                } => self.deltas.push(DeltaEvent {
                    subscription,
                    entered,
                    left,
                    reason,
                }),
                Message::Error { id, message } => return Err(ClientError::Server { id, message }),
                _ => return Err(ClientError::UnexpectedReply("wanted a delta push")),
            }
        }
        Ok(self.deltas.remove(0))
    }
}
