//! The serving edge: RkNNT queries over TCP with admission control.
//!
//! Seven PRs of engine, batching, durability and sharding work all end at a
//! function call; production traffic arrives over sockets and is judged by
//! its p99s. This crate is that last hop, hermetically — no tokio, no serde
//! backend, just `std::net::TcpStream`, threads, and the same little-endian
//! codec + CRC framing the storage engine already trusts:
//!
//! * **[`protocol`]** — `crc | len | payload` frames (checksum covers
//!   length *and* payload, so corrupted lengths cannot re-frame the
//!   stream) carrying bounds-checked [`protocol::Message`] payloads, with
//!   a per-request cost estimate ([`protocol::estimate_cost`]).
//! * **[`Server`]** — one reader thread per connection feeding a bounded
//!   global queue; a single executor thread drains it onto a [`Backend`]
//!   ([`rknnt_service::QueryService`] or
//!   [`rknnt_service::ShardedService`]), funnelling consecutive queries
//!   through the batch path and pushing subscription deltas to their
//!   owning connections. **Admission control** is the load-bearing part:
//!   requests past the queue-capacity / queued-cost-budget /
//!   per-connection-inflight limits are fast-failed with a typed
//!   `Overloaded` reply — shed, never silently dropped — and every
//!   decision lands in the `net.*` metrics (`net.admitted`, per-reason
//!   `net.shed.*` counters, `net.queue_depth`, `net.request_ns`).
//! * **Tracing + introspection** — requests tagged with a trace id get a
//!   per-request span tree through admission, queueing, execution and the
//!   backend's batch pipeline (down to per-shard routing decisions and WAL
//!   appends); slow traces are retained in a bounded ring, and
//!   [`Message::Introspect`] / [`Client::introspect`] fetch metrics, slow
//!   queries or flight-recorder windows remotely, answered from the reader
//!   thread even when the executor is saturated.
//! * **[`Client`]** — a blocking client speaking the same codec, used by
//!   the test suite and the `open_loop_latency` experiment. Answers are
//!   byte-identical to in-process execution; `Overloaded` is a typed
//!   [`Reply`] variant, not an error. Blocking reads carry an optional
//!   read deadline ([`ClientConfig::with_read_timeout`]) that surfaces as
//!   a typed [`ClientError::Timeout`] instead of hanging forever.
//! * **[`RemoteShard`]** — a health-tracked dispatch handle over one
//!   server: per-request deadlines, seeded exponential-backoff retry, and
//!   a closed/open/half-open **circuit breaker** driven by a pluggable
//!   clock so every state transition is deterministic under test.
//! * **[`FleetRouter`]** — the distributed fleet: each shard its own
//!   server reached through a [`RemoteShard`], transitions partitioned by
//!   origin cell, routes replicated. A dead shard degrades queries to a
//!   typed partial [`FleetResult`] naming the missing shards — never a
//!   silent wrong answer, never a hang — while its updates defer in a
//!   per-shard router log; on restart the router health-probes the
//!   shard's applied-update watermark, replays exactly the missing
//!   suffix, and re-establishes subscriptions.
//! * **Fault injection** — the reader, writer and executor paths carry
//!   [`rknnt_fault`] failpoints ([`SERVER_READ_SITE`],
//!   [`SERVER_WRITE_SITE`], [`SERVER_EXECUTOR_SITE`],
//!   [`CLIENT_WRITE_SITE`]), so mid-frame cuts, corruption, stalls,
//!   panics and whole-process kills are deterministic, seeded test
//!   inputs rather than flaky sleeps.
//!
//! ```no_run
//! use rknnt_core::RknntQuery;
//! use rknnt_geo::Point;
//! use rknnt_index::{RouteStore, TransitionStore};
//! use rknnt_net::{Backend, Client, Reply, Server, ServerConfig};
//! use rknnt_service::{QueryService, ServiceConfig};
//!
//! let mut routes = RouteStore::default();
//! routes.insert_route(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
//! let mut transitions = TransitionStore::default();
//! transitions.insert(Point::new(10.0, 5.0), Point::new(90.0, 5.0)).unwrap();
//! let service = QueryService::new(routes, transitions, ServiceConfig::default());
//!
//! let server = Server::start(Backend::Single(service), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let query = RknntQuery::exists(vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)], 1);
//! match client.query(&query).unwrap() {
//!     Reply::Answered(transitions) => println!("{} qualifying transitions", transitions.len()),
//!     Reply::Overloaded(info) => println!("shed at queue depth {}", info.queue_depth),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod fleet;
pub mod protocol;
mod remote;
mod server;

pub use client::{
    Client, ClientConfig, ClientError, DeltaEvent, HealthStatus, NetError, Reply, Subscription,
    UpdateCounts, CLIENT_WRITE_SITE,
};
pub use fleet::{
    FleetApply, FleetConfig, FleetDelta, FleetError, FleetResult, FleetRouter, ShardState,
};
pub use protocol::{
    IntrospectReport, IntrospectWhat, Message, OverloadInfo, WireSlowQuery, WireSpan,
    MAX_FRAME_BYTES,
};
pub use remote::{
    BreakerState, CircuitBreaker, RecordingSleeper, RemoteError, RemoteShard, RemoteShardConfig,
    RemoteShardStats, RetryPolicy, Sleeper, ThreadSleeper,
};
pub use server::{
    Backend, Server, ServerConfig, SERVER_EXECUTOR_SITE, SERVER_READ_SITE, SERVER_WRITE_SITE,
};
