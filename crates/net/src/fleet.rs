//! A distributed shard fleet with partial-failure semantics: every shard is
//! its own [`Server`], and the router dispatches over the wire through
//! health-tracked [`RemoteShard`] handles.
//!
//! # Data placement
//!
//! Transitions are partitioned to shards by origin cell on a Z-order
//! [`CellGrid`] (exactly the [`rknnt_service::ShardedService`] discipline,
//! same global-id assignment). Routes are *replicated* to every shard:
//! RkNNT verification counts routes globally, so a shard holding the full
//! route set plus its transition slice answers exactly the global result
//! restricted to its own transitions. The fleet answer is the union of
//! shard answers, translated from shard-local to global ids through each
//! shard's [`IdSpace`].
//!
//! # Partial failure
//!
//! A query dispatch that exhausts a shard's retry/breaker budget does not
//! fail the request and does not guess: the answer degrades to a typed
//! [`FleetResult`] naming the unreachable shards in
//! [`FleetResult::missing_shards`]. Updates routed to a down shard are
//! *deferred*: they stay in that shard's router-side update log (the
//! router WAL) and ship automatically once the shard answers again.
//!
//! # Recovery and resync
//!
//! [`FleetRouter::restart_shard`] brings a dead shard back — reopened from
//! its storage directory when the fleet is durable, rebuilt from the build
//! inputs plus a full log replay otherwise — then resyncs: a
//! [`crate::Client::health`] probe reports the shard's applied-update watermark,
//! the router replays its per-shard log from exactly that index, standing
//! queries are re-established, and the difference between the recovered
//! shard's view and the router's last recorded view is emitted as resync
//! deltas. After resync the shard is byte-identical to one that never
//! failed.

use crate::client::{ClientError, DeltaEvent, HealthStatus, Reply};
use crate::remote::{RemoteError, RemoteShard, RemoteShardConfig, RemoteShardStats, Sleeper};
use crate::server::{Backend, Server, ServerConfig};
use rknnt_core::RknntQuery;
use rknnt_fault::Failpoints;
use rknnt_geo::{CellGrid, Point, Rect};
use rknnt_index::{partition_transitions, IdSpace, RouteStore, TransitionId, TransitionStore};
use rknnt_obs::{Clock, Counter, MetricsRegistry, MonotonicClock};
use rknnt_rtree::RTreeConfig;
use rknnt_service::{QueryService, ServiceConfig, StorageConfig, StoreUpdate};
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Fleet-wide build and dispatch knobs.
#[derive(Clone)]
pub struct FleetConfig {
    /// Number of shard servers (at least 1 is always used).
    pub shards: usize,
    /// Z-order grid resolution for transition placement.
    pub grid_bits: u32,
    /// R-tree fan-out for every store in the fleet.
    pub rtree: RTreeConfig,
    /// Per-shard service configuration.
    pub service: ServiceConfig,
    /// Per-shard serving-edge configuration (admission budgets must be
    /// provisioned so router traffic is never shed — a shed dispatch is
    /// treated as a failed attempt).
    pub server: ServerConfig,
    /// Dispatch defence stack: deadline, retry schedule, breaker.
    pub remote: RemoteShardConfig,
    /// When set, each shard persists under `<root>/shard-<i>` and restarts
    /// recover from disk; when `None`, shards are in-memory and restarts
    /// rebuild from the build inputs plus a full log replay.
    pub storage_root: Option<PathBuf>,
    /// Storage knobs for durable fleets.
    pub storage: StorageConfig,
    /// Failpoints to arm on specific shards' servers at build time
    /// (`(shard index, plan)`). Restarted shards always run clean.
    pub shard_faults: Vec<(usize, Arc<Failpoints>)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            grid_bits: 6,
            rtree: RTreeConfig::default(),
            service: ServiceConfig::default(),
            server: ServerConfig::default(),
            remote: RemoteShardConfig::default(),
            storage_root: None,
            storage: StorageConfig::default(),
            shard_faults: Vec::new(),
        }
    }
}

/// A fleet answer: the union of reachable shard answers, with the
/// unreachable shards named. Never a silent wrong answer — a degraded
/// result says exactly which slice of the data it is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetResult {
    /// Qualifying transitions (global ids, sorted ascending) from every
    /// shard that answered.
    pub transitions: Vec<TransitionId>,
    /// Shards whose retry/breaker budget was exhausted; their transitions
    /// are absent from `transitions`.
    pub missing_shards: Vec<usize>,
}

impl FleetResult {
    /// Whether every shard contributed (the answer equals the unsharded
    /// service's answer).
    pub fn is_complete(&self) -> bool {
        self.missing_shards.is_empty()
    }
}

/// Outcome of routing one update batch through the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetApply {
    /// Update records appended to shard logs (broadcast records count once).
    pub routed: u64,
    /// Updates rejected at the router (non-finite points, unknown ids).
    pub rejected: u64,
    /// Shards that could not be reached; their records are deferred in the
    /// router log and ship on recovery.
    pub deferred_shards: Vec<usize>,
}

/// A standing-query result change at fleet level, in global ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetDelta {
    /// The fleet subscription handle.
    pub subscription: u64,
    /// Transitions that entered the result, sorted ascending.
    pub entered: Vec<TransitionId>,
    /// Transitions that left the result, sorted ascending.
    pub left: Vec<TransitionId>,
}

/// Router-side view of one shard's availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Last dispatch answered.
    Up,
    /// Last dispatch exhausted the defence budget; updates are deferring.
    Down,
}

/// A fleet-level failure (distinct from per-shard degradation, which is
/// expressed in [`FleetResult::missing_shards`], not as an error).
#[derive(Debug)]
pub enum FleetError {
    /// Building or restarting a shard failed at the storage/socket layer.
    Build(String),
    /// A resync step failed against a shard that should be reachable.
    Resync {
        /// Which shard.
        shard: usize,
        /// What failed.
        message: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Build(m) => write!(f, "fleet build failed: {m}"),
            FleetError::Resync { shard, message } => {
                write!(f, "resync of shard {shard} failed: {message}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

struct FleetSub {
    query: RknntQuery,
    /// Per-shard wire handles (None while a shard is down / not yet
    /// re-established).
    handles: Vec<Option<u64>>,
    /// Per-shard recorded result views, in global raw ids. A down shard's
    /// view is the last one seen; recovery diffs against it.
    views: Vec<BTreeSet<u32>>,
}

struct FleetShard {
    server: Option<Server>,
    remote: RemoteShard,
    /// Transition local→global mapping, grown as inserts route here.
    space: IdSpace,
    /// The router WAL for this shard: every update record routed here, in
    /// shard-local form, in wire order.
    log: Vec<StoreUpdate>,
    /// Records acknowledged by the shard (its watermark while in sync).
    acked: u64,
    up: bool,
    /// The shard's build-time transition slice, for in-memory rebuilds.
    initial_pairs: Vec<(Point, Point)>,
    storage_dir: Option<PathBuf>,
    /// `RemoteShardStats::dials` at the time the shard's subscriptions
    /// were (re-)established; a moved count means the handles are stale.
    subscribed_dials: u64,
}

struct FleetMetrics {
    registry: Mutex<MetricsRegistry>,
    dispatches: Counter,
    partial_results: Counter,
    deferred_records: Counter,
    replayed_records: Counter,
    restarts: Counter,
    resync_deltas: Counter,
}

impl FleetMetrics {
    fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let dispatches = registry.counter("fleet.dispatches");
        let partial_results = registry.counter("fleet.partial_results");
        let deferred_records = registry.counter("fleet.deferred_records");
        let replayed_records = registry.counter("fleet.replayed_records");
        let restarts = registry.counter("fleet.restarts");
        let resync_deltas = registry.counter("fleet.resync_deltas");
        FleetMetrics {
            registry: Mutex::new(registry),
            dispatches,
            partial_results,
            deferred_records,
            replayed_records,
            restarts,
            resync_deltas,
        }
    }
}

/// The fleet router: owns every shard server, dispatches queries and
/// updates over the wire, degrades on partial failure, and resyncs
/// recovered shards from its per-shard update logs.
pub struct FleetRouter {
    config: FleetConfig,
    grid: CellGrid,
    shards: Vec<FleetShard>,
    /// The build-time route set (replicated on every shard), kept for
    /// in-memory rebuilds. Routes inserted later live in the shard logs.
    routes: Vec<Vec<Point>>,
    /// Owner shard of every global transition id.
    transition_owner: Vec<u32>,
    subs: HashMap<u64, FleetSub>,
    next_sub: u64,
    pending_deltas: Vec<FleetDelta>,
    metrics: FleetMetrics,
}

impl FleetRouter {
    /// Builds the fleet: partitions transitions by origin cell, replicates
    /// the full route set to every shard, starts one [`Server`] per shard
    /// (with storage attached when [`FleetConfig::storage_root`] is set)
    /// and dials each through a [`RemoteShard`].
    pub fn bulk_build(
        config: FleetConfig,
        routes: Vec<Vec<Point>>,
        transitions: Vec<(Point, Point)>,
    ) -> Result<FleetRouter, FleetError> {
        Self::bulk_build_with_parts(
            config,
            routes,
            transitions,
            Arc::new(MonotonicClock::new()),
            None,
        )
    }

    /// [`FleetRouter::bulk_build`] with an explicit breaker clock and
    /// backoff sleeper — the deterministic-test constructor.
    pub fn bulk_build_with_parts(
        config: FleetConfig,
        routes: Vec<Vec<Point>>,
        transitions: Vec<(Point, Point)>,
        clock: Arc<dyn Clock>,
        sleeper: Option<Arc<dyn Sleeper>>,
    ) -> Result<FleetRouter, FleetError> {
        let shard_count = config.shards.max(1);
        let mut mbr = Rect::empty();
        for route in &routes {
            for p in route {
                if p.is_finite() {
                    mbr.expand_to_point(p);
                }
            }
        }
        for (origin, destination) in &transitions {
            if origin.is_finite() {
                mbr.expand_to_point(origin);
            }
            if destination.is_finite() {
                mbr.expand_to_point(destination);
            }
        }
        if mbr.is_empty() {
            mbr = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        }
        let grid = CellGrid::new(mbr, config.grid_bits);
        // Keep each shard's valid pair slice (in global order) before the
        // partition consumes the input — in-memory restarts rebuild from it.
        let mut pairs_per_shard: Vec<Vec<(Point, Point)>> = vec![Vec::new(); shard_count];
        for (origin, destination) in &transitions {
            if !origin.is_finite() || !destination.is_finite() {
                continue;
            }
            let owner = grid
                .shard_of_point(origin, shard_count)
                .min(shard_count - 1);
            pairs_per_shard[owner].push((*origin, *destination));
        }
        let tp = partition_transitions(config.rtree, transitions, shard_count, |origin, _| {
            grid.shard_of_point(origin, shard_count)
        });
        let mut shards = Vec::with_capacity(shard_count);
        for (index, (store, space)) in tp.stores.into_iter().zip(tp.spaces).enumerate() {
            let (route_store, _) = RouteStore::bulk_build(config.rtree, routes.clone());
            let mut service = QueryService::new(route_store, store, config.service);
            let mut storage_dir = None;
            if let Some(root) = &config.storage_root {
                let dir = root.join(format!("shard-{index}"));
                std::fs::create_dir_all(&dir)
                    .map_err(|e| FleetError::Build(format!("shard {index} dir: {e}")))?;
                service
                    .attach_storage(&dir, config.storage)
                    .map_err(|e| FleetError::Build(format!("shard {index} storage: {e}")))?;
                storage_dir = Some(dir);
            }
            let mut server_config = config.server.clone();
            if let Some((_, fp)) = config.shard_faults.iter().find(|(s, _)| *s == index) {
                server_config.failpoints = Some(Arc::clone(fp));
            }
            let server = Server::start(Backend::Single(service), server_config)
                .map_err(|e| FleetError::Build(format!("shard {index} server: {e}")))?;
            let remote = RemoteShard::with_parts(
                server.local_addr(),
                config.remote.clone(),
                Arc::clone(&clock),
                sleeper
                    .clone()
                    .unwrap_or_else(|| Arc::new(crate::remote::ThreadSleeper)),
            );
            shards.push(FleetShard {
                server: Some(server),
                remote,
                space,
                log: Vec::new(),
                acked: 0,
                up: true,
                initial_pairs: std::mem::take(&mut pairs_per_shard[index]),
                storage_dir,
                subscribed_dials: 0,
            });
        }
        Ok(FleetRouter {
            config,
            grid,
            shards,
            routes,
            transition_owner: tp.owners,
            subs: HashMap::new(),
            next_sub: 1,
            pending_deltas: Vec::new(),
            metrics: FleetMetrics::new(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router's current availability view (updated by dispatches).
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.shards
            .iter()
            .map(|s| {
                if s.up {
                    ShardState::Up
                } else {
                    ShardState::Down
                }
            })
            .collect()
    }

    /// Dispatch counters for one shard.
    pub fn shard_stats(&self, index: usize) -> RemoteShardStats {
        self.shards[index].remote.stats()
    }

    /// The circuit-breaker state of one shard's dispatch path.
    pub fn shard_breaker_state(&mut self, index: usize) -> crate::remote::BreakerState {
        self.shards[index].remote.breaker_state()
    }

    /// `(acknowledged, total)` record counts in shard `index`'s router log
    /// — unequal while updates are deferring.
    pub fn shard_progress(&self, index: usize) -> (u64, u64) {
        let shard = &self.shards[index];
        (shard.acked, shard.log.len() as u64)
    }

    /// Which shard owns a global transition id (tests and experiments use
    /// this to compute the exact answer a degraded fleet must report).
    pub fn owner_of(&self, id: TransitionId) -> Option<usize> {
        self.transition_owner
            .get(id.raw() as usize)
            .map(|&o| o as usize)
    }

    /// Text exposition of the `fleet.*` metrics.
    pub fn metrics_text(&self) -> String {
        self.metrics
            .registry
            .lock()
            .expect("fleet metrics poisoned")
            .render_text()
    }

    /// Chaos hook: kills shard `index`'s server exactly as the
    /// [`rknnt_fault::FaultAction::Kill`] failpoint would. The router does
    /// not learn of the death here — the next dispatch discovers it, as it
    /// would in production.
    pub fn kill_shard(&mut self, index: usize, reason: &str) {
        if let Some(server) = &self.shards[index].server {
            server.kill(reason);
        }
        self.shards[index].remote.disconnect();
    }

    /// Executes one query across the fleet. Reachable shards contribute
    /// their slice; unreachable shards are named in the degraded result.
    pub fn execute(&mut self, query: &RknntQuery) -> FleetResult {
        self.metrics.dispatches.inc();
        let mut missing = Vec::new();
        let mut acc: BTreeSet<u32> = BTreeSet::new();
        for index in 0..self.shards.len() {
            let shard = &mut self.shards[index];
            let outcome = shard.remote.call(|c| match c.query(query)? {
                Reply::Answered(transitions) => Ok(transitions),
                Reply::Overloaded(_) => Err(shed_error()),
            });
            match outcome {
                Ok(locals) => {
                    shard.up = true;
                    for local in locals {
                        if let Some(global) = shard.space.to_global(local.raw()) {
                            acc.insert(global);
                        }
                    }
                }
                Err(_) => {
                    shard.up = false;
                    missing.push(index);
                }
            }
        }
        if !missing.is_empty() {
            self.metrics.partial_results.inc();
        }
        FleetResult {
            transitions: acc.into_iter().map(TransitionId::from).collect(),
            missing_shards: missing,
        }
    }

    /// Routes an update batch: transitions to their owner shard (global id
    /// assigned here, exactly as the unsharded service would), route
    /// changes broadcast to every replica. Each shard receives its pending
    /// log suffix — including records deferred while it was down — in one
    /// wire call; shards that stay unreachable keep deferring.
    pub fn apply_updates(&mut self, updates: Vec<StoreUpdate>) -> FleetApply {
        let shard_count = self.shards.len();
        let mut routed = 0u64;
        let mut rejected = 0u64;
        for update in updates {
            match update {
                StoreUpdate::InsertTransition {
                    origin,
                    destination,
                } => {
                    if !origin.is_finite() || !destination.is_finite() {
                        rejected += 1;
                        continue;
                    }
                    let owner = self
                        .grid
                        .shard_of_point(&origin, shard_count)
                        .min(shard_count - 1);
                    let global = self.transition_owner.len() as u32;
                    self.transition_owner.push(owner as u32);
                    let shard = &mut self.shards[owner];
                    shard.space.push(global);
                    shard.log.push(StoreUpdate::InsertTransition {
                        origin,
                        destination,
                    });
                    routed += 1;
                }
                StoreUpdate::ExpireTransition(global) => {
                    let Some(&owner) = self.transition_owner.get(global.raw() as usize) else {
                        rejected += 1;
                        continue;
                    };
                    let shard = &mut self.shards[owner as usize];
                    let Some(local) = shard.space.to_local(global.raw()) else {
                        rejected += 1;
                        continue;
                    };
                    shard
                        .log
                        .push(StoreUpdate::ExpireTransition(TransitionId::from(local)));
                    routed += 1;
                }
                update @ (StoreUpdate::InsertRoute(_) | StoreUpdate::RemoveRoute(_)) => {
                    // Routes are replicated: every shard holds the full
                    // set under identical ids, so the record broadcasts
                    // verbatim.
                    for shard in &mut self.shards {
                        shard.log.push(update.clone());
                    }
                    routed += 1;
                }
            }
        }
        let mut deferred = Vec::new();
        for index in 0..shard_count {
            let shard = &mut self.shards[index];
            let pending = shard.log.len() as u64 - shard.acked;
            if pending == 0 {
                continue;
            }
            if Self::ship_log_suffix(shard).is_ok() {
                shard.up = true;
            } else {
                shard.up = false;
                deferred.push(index);
                self.metrics.deferred_records.add(pending);
            }
        }
        self.collect_deltas();
        FleetApply {
            routed,
            rejected,
            deferred_shards: deferred,
        }
    }

    /// Sends `shard`'s unacknowledged log suffix in one wire call.
    fn ship_log_suffix(shard: &mut FleetShard) -> Result<(), RemoteError> {
        let batch: Vec<StoreUpdate> = shard.log[shard.acked as usize..].to_vec();
        shard
            .remote
            .call(|c| match c.apply_updates(batch.clone())? {
                Reply::Answered(counts) => Ok(counts),
                Reply::Overloaded(_) => Err(shed_error()),
            })?;
        shard.acked = shard.log.len() as u64;
        Ok(())
    }

    /// Registers a standing query on every reachable shard. The result is
    /// degraded like a query: down shards are named and contribute nothing
    /// until they recover (resync then emits the catch-up delta).
    pub fn subscribe(&mut self, query: &RknntQuery) -> (u64, FleetResult) {
        let id = self.next_sub;
        self.next_sub += 1;
        let shard_count = self.shards.len();
        let mut sub = FleetSub {
            query: query.clone(),
            handles: vec![None; shard_count],
            views: vec![BTreeSet::new(); shard_count],
        };
        let mut missing = Vec::new();
        for index in 0..shard_count {
            match Self::subscribe_on_shard(&mut self.shards[index], query) {
                Ok((handle, view)) => {
                    sub.handles[index] = Some(handle);
                    sub.views[index] = view;
                }
                Err(_) => {
                    self.shards[index].up = false;
                    missing.push(index);
                }
            }
        }
        let transitions = union_views(&sub.views);
        self.subs.insert(id, sub);
        (
            id,
            FleetResult {
                transitions,
                missing_shards: missing,
            },
        )
    }

    /// The current fleet-level result of a subscription (union of recorded
    /// per-shard views; a down shard contributes its last synced view).
    pub fn subscription_result(&self, subscription: u64) -> Option<Vec<TransitionId>> {
        self.subs.get(&subscription).map(|s| union_views(&s.views))
    }

    /// Drains fleet-level deltas accumulated by update routing and resync.
    pub fn take_deltas(&mut self) -> Vec<FleetDelta> {
        std::mem::take(&mut self.pending_deltas)
    }

    /// Restarts a dead shard and resyncs it: reopen from storage (durable
    /// fleets) or rebuild from the build inputs (in-memory fleets), then
    /// health-probe for the applied-update watermark, replay the router log
    /// from that index, re-establish standing queries, and emit resync
    /// deltas for whatever changed while the shard was away.
    pub fn restart_shard(&mut self, index: usize) -> Result<(), FleetError> {
        self.metrics.restarts.inc();
        let build_err = |e: String| FleetError::Build(format!("shard {index} restart: {e}"));
        let service = {
            let shard = &mut self.shards[index];
            if let Some(server) = shard.server.take() {
                // The old incarnation's backend dies with it.
                drop(server.stop());
            }
            if let Some(dir) = &shard.storage_dir {
                let (service, _) =
                    QueryService::open(dir, self.config.service, self.config.storage)
                        .map_err(|e| build_err(e.to_string()))?;
                service
            } else {
                let (route_store, _) =
                    RouteStore::bulk_build(self.config.rtree, self.routes.clone());
                let transition_store =
                    TransitionStore::bulk_build(self.config.rtree, shard.initial_pairs.clone());
                QueryService::new(route_store, transition_store, self.config.service)
            }
        };
        // Recovered shards run clean: injected faults died with the old
        // process.
        let mut server_config = self.config.server.clone();
        server_config.failpoints = None;
        let server = Server::start(Backend::Single(service), server_config)
            .map_err(|e| build_err(e.to_string()))?;
        let shard = &mut self.shards[index];
        shard.remote.set_addr(server.local_addr());
        shard.server = Some(server);
        shard.up = true;
        self.resync_shard(index)
    }

    /// Brings shard `index` back in sync after it answered again: replay
    /// the log suffix past its watermark, re-establish subscriptions, emit
    /// resync deltas.
    fn resync_shard(&mut self, index: usize) -> Result<(), FleetError> {
        let resync_err = |message: String| FleetError::Resync {
            shard: index,
            message,
        };
        let shard = &mut self.shards[index];
        let status: HealthStatus = shard
            .remote
            .call(|c| match c.health()? {
                Reply::Answered(status) => Ok(status),
                Reply::Overloaded(_) => Err(shed_error()),
            })
            .map_err(|e| resync_err(format!("health probe: {e}")))?;
        // The shard has durably applied exactly `watermark` of this log's
        // records (the router sends records in log order, nowhere else).
        let watermark = status.watermark.min(shard.log.len() as u64);
        shard.acked = watermark;
        let replay = shard.log.len() as u64 - watermark;
        if replay > 0 {
            Self::ship_log_suffix(shard).map_err(|e| resync_err(format!("log replay: {e}")))?;
            self.metrics.replayed_records.add(replay);
        }
        self.sync_subscriptions(index)
            .map_err(|e| resync_err(format!("re-subscribe: {e}")))?;
        Ok(())
    }

    /// Re-establishes every standing query on shard `index` when its
    /// connection epoch moved (server-side subscriptions are
    /// per-connection), emitting the view difference as resync deltas.
    fn sync_subscriptions(&mut self, index: usize) -> Result<(), RemoteError> {
        let current_dials = self.shards[index].remote.stats().dials;
        if self.shards[index].subscribed_dials == current_dials {
            return Ok(());
        }
        let sub_ids: Vec<u64> = self.subs.keys().copied().collect();
        for id in sub_ids {
            let query = self.subs[&id].query.clone();
            let (handle, view) = Self::subscribe_on_shard(&mut self.shards[index], &query)?;
            let sub = self.subs.get_mut(&id).expect("sub id just listed");
            let old = std::mem::replace(&mut sub.views[index], view.clone());
            sub.handles[index] = Some(handle);
            let entered: Vec<TransitionId> = view
                .difference(&old)
                .map(|&g| TransitionId::from(g))
                .collect();
            let left: Vec<TransitionId> = old
                .difference(&view)
                .map(|&g| TransitionId::from(g))
                .collect();
            if !entered.is_empty() || !left.is_empty() {
                self.metrics.resync_deltas.inc();
                self.pending_deltas.push(FleetDelta {
                    subscription: id,
                    entered,
                    left,
                });
            }
        }
        self.shards[index].subscribed_dials = self.shards[index].remote.stats().dials;
        Ok(())
    }

    fn subscribe_on_shard(
        shard: &mut FleetShard,
        query: &RknntQuery,
    ) -> Result<(u64, BTreeSet<u32>), RemoteError> {
        let registered = shard.remote.call(|c| match c.subscribe(query)? {
            Reply::Answered(s) => Ok(s),
            Reply::Overloaded(_) => Err(shed_error()),
        })?;
        shard.subscribed_dials = shard.remote.stats().dials;
        let mut view = BTreeSet::new();
        for local in registered.transitions {
            if let Some(global) = shard.space.to_global(local.raw()) {
                view.insert(global);
            }
        }
        Ok((registered.subscription, view))
    }

    /// Harvests server-pushed deltas from every reachable, subscribed
    /// shard. A ping fences the harvest: per-connection FIFO means every
    /// delta from already-acknowledged updates is buffered once the pong
    /// arrives.
    fn collect_deltas(&mut self) {
        for index in 0..self.shards.len() {
            if !self.shards[index].up {
                continue;
            }
            let has_handles = self.subs.values().any(|s| s.handles[index].is_some());
            if !has_handles {
                continue;
            }
            // A re-dial mid-harvest would lose the old connection's deltas
            // along with its subscriptions; resync covers both, so the
            // harvest only trusts a same-connection ping.
            let dials_before = self.shards[index].remote.stats().dials;
            let outcome = self.shards[index].remote.call(|c| match c.ping()? {
                Reply::Answered(()) => Ok(c.take_deltas()),
                Reply::Overloaded(_) => Err(shed_error()),
            });
            let events = match outcome {
                Ok(events) if self.shards[index].remote.stats().dials == dials_before => events,
                Ok(_) => continue,
                Err(_) => {
                    self.shards[index].up = false;
                    continue;
                }
            };
            self.route_shard_deltas(index, events);
        }
    }

    /// Translates one shard's wire deltas into fleet deltas (global ids)
    /// and folds them into the recorded views.
    fn route_shard_deltas(&mut self, index: usize, events: Vec<DeltaEvent>) {
        for event in events {
            let space = &self.shards[index].space;
            let owner = self
                .subs
                .iter_mut()
                .find(|(_, s)| s.handles[index] == Some(event.subscription));
            let Some((&id, sub)) = owner else {
                // A delta for a superseded handle (pre-re-subscribe): the
                // resync diff already accounts for it.
                continue;
            };
            let mut entered = Vec::new();
            for local in event.entered {
                if let Some(global) = space.to_global(local.raw()) {
                    sub.views[index].insert(global);
                    entered.push(TransitionId::from(global));
                }
            }
            let mut left = Vec::new();
            for local in event.left {
                if let Some(global) = space.to_global(local.raw()) {
                    sub.views[index].remove(&global);
                    left.push(TransitionId::from(global));
                }
            }
            entered.sort_unstable();
            left.sort_unstable();
            if !entered.is_empty() || !left.is_empty() {
                self.pending_deltas.push(FleetDelta {
                    subscription: id,
                    entered,
                    left,
                });
            }
        }
    }

    /// Stops every shard server in an orderly way.
    pub fn shutdown(mut self) {
        for shard in &mut self.shards {
            if let Some(server) = shard.server.take() {
                drop(server.stop());
            }
        }
    }
}

/// A shed dispatch counts as a failed attempt: fleets provision admission
/// budgets so router traffic is never shed, and anything else is treated
/// as the shard being unable to serve.
fn shed_error() -> ClientError {
    ClientError::Io(io::Error::other("shard shed the request"))
}

fn union_views(views: &[BTreeSet<u32>]) -> Vec<TransitionId> {
    let mut all: BTreeSet<u32> = BTreeSet::new();
    for view in views {
        all.extend(view.iter().copied());
    }
    all.into_iter().map(TransitionId::from).collect()
}
