//! Threaded TCP server multiplexing client connections onto the batch path,
//! with admission control and load shedding.
//!
//! # Architecture
//!
//! One acceptor thread, one reader thread per connection, and a single
//! executor thread that owns the [`Backend`]:
//!
//! * **Readers** decode frames, estimate each request's cost
//!   ([`crate::protocol::estimate_cost`]) and run the admission decision.
//!   Admitted requests enter a bounded global queue; shed requests are
//!   answered with a typed [`Message::Overloaded`] reply *immediately, from
//!   the reader thread* — a shed costs one frame write, never a queue slot,
//!   and is never silently dropped.
//! * The **executor** drains the queue in FIFO order up to
//!   [`ServerConfig::max_batch`] jobs at a time, funnels consecutive query
//!   runs through one `execute_batch` call (the service parallelizes
//!   internally across its worker pool), applies control operations
//!   (subscribe / unsubscribe / updates) serially at their queue position,
//!   and pushes [`Message::Delta`] frames to subscribed connections after
//!   every update batch.
//!
//! # Admission policy
//!
//! A request is shed iff, at arrival:
//!
//! * the global queue already holds [`ServerConfig::queue_capacity`]
//!   requests, **or**
//! * admitting it would push the summed cost estimate of queued requests
//!   over [`ServerConfig::cost_budget`] (queue depth × per-request cost —
//!   many cheap requests and few expensive ones hit the same ceiling),
//!   **or**
//! * the connection already has [`ServerConfig::per_conn_inflight`]
//!   admitted-but-unanswered requests (one greedy pipeliner cannot starve
//!   the fleet).
//!
//! Every decision lands in the metrics registry: a `net.admitted` counter,
//! per-reason shed counters (`net.shed.queue_full` / `net.shed.cost_budget`
//! / `net.shed.inflight`), a `net.queue_depth` gauge, and a
//! `net.request_ns` latency histogram over admitted requests (admission to
//! reply write).
//!
//! # Request tracing and introspection
//!
//! A request carrying a trace id ([`Message::Query`] /
//! [`Message::ApplyUpdates`] with `trace: Some(..)`) that passes the
//! deterministic head sampler ([`ServerConfig::trace_sample`]) gets a
//! per-request span tree: a `request` root with `admission`, `queue` and
//! `execute` children recorded here, and the backend's `batch` / phase /
//! `worker` / `group` / `shard` / `wal_append` spans below the `execute`
//! span. Completed traces feed a [`SlowQueryLog`]; those over
//! [`ServerConfig::slow_query_threshold_ns`] are retained with their full
//! tree and a correlated flight-recorder window. [`Message::Introspect`]
//! fetches metrics, slow queries or the flight recorder remotely — it is
//! answered *from the reader thread*, so introspection works even while the
//! executor is saturated, and is never queued or shed.

use crate::protocol::{
    estimate_cost, frame_bytes, read_frame, IntrospectReport, IntrospectWhat, Message,
    OverloadInfo, WireSlowQuery,
};
use rknnt_core::{RknntQuery, RknntResult};
use rknnt_fault::{Failpoints, FaultAction};
use rknnt_index::TransitionId;
use rknnt_obs::{
    Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, SlowQueryLog, SpanId, Telemetry,
    TraceContext, TraceCursor, TraceId,
};
use rknnt_service::{
    BatchStats, QueryService, ShardedService, StoreUpdate, SubscriptionDelta, SubscriptionId,
    UpdateStats,
};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Failpoint site hit once per frame a reader thread receives.
pub const SERVER_READ_SITE: &str = "net.server.read";
/// Failpoint site hit once per frame the server writes to any connection.
pub const SERVER_WRITE_SITE: &str = "net.server.write";
/// Failpoint site hit once per batch the executor drains.
pub const SERVER_EXECUTOR_SITE: &str = "net.server.executor";

/// The service a [`Server`] exposes: a single [`QueryService`] or a
/// [`ShardedService`] fleet — both present the same batch surface, so the
/// serving edge is backend-agnostic.
pub enum Backend {
    /// One `QueryService`.
    Single(QueryService),
    /// A Z-order-sharded fleet behind the footprint-pruned router.
    Sharded(ShardedService),
}

impl Backend {
    fn execute_batch_traced(
        &self,
        queries: &[RknntQuery],
        trace: Option<&TraceCursor>,
    ) -> (Vec<RknntResult>, BatchStats) {
        match self {
            Backend::Single(s) => s.execute_batch_traced(queries, trace),
            Backend::Sharded(s) => s.execute_batch_traced(queries, trace),
        }
    }

    fn subscribe(&mut self, query: RknntQuery) -> SubscriptionId {
        match self {
            Backend::Single(s) => s.subscribe(query),
            Backend::Sharded(s) => s.subscribe(query),
        }
    }

    fn subscription_result(&self, id: SubscriptionId) -> Option<&[TransitionId]> {
        match self {
            Backend::Single(s) => s.subscription_result(id),
            Backend::Sharded(s) => s.subscription_result(id),
        }
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        match self {
            Backend::Single(s) => s.unsubscribe(id),
            Backend::Sharded(s) => s.unsubscribe(id),
        }
    }

    fn apply_updates_traced(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace: Option<&TraceCursor>,
    ) -> UpdateStats {
        match self {
            Backend::Single(s) => s.apply_updates_traced(updates, trace),
            Backend::Sharded(s) => s.apply_updates_traced(updates, trace),
        }
    }

    fn generation(&self) -> u64 {
        match self {
            Backend::Single(s) => s.generation(),
            Backend::Sharded(s) => s.generation(),
        }
    }

    /// The durable applied-update watermark, when storage is attached:
    /// every update record is WAL-appended before it applies (one frame per
    /// record), so `next_seq − 1` counts exactly the records this backend
    /// has ever received — across restarts.
    fn durable_watermark(&self) -> Option<u64> {
        let stats = match self {
            Backend::Single(s) => s.storage_stats(),
            Backend::Sharded(s) => s.storage_stats(),
        };
        stats.map(|st| st.next_seq.saturating_sub(1))
    }

    /// The backend's flight recorder (for `DumpOnPanic` in tests).
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        match self {
            Backend::Single(s) => s.flight_recorder(),
            Backend::Sharded(s) => s.flight_recorder(),
        }
    }

    /// Live handles to the backend's metric registries, for answering
    /// `Introspect { Metrics }` from the reader threads after the backend
    /// itself has moved into the executor. Registry clones share the
    /// underlying cells, so the handles stay current. The `String` is the
    /// exposition-line prefix (empty for the top level, `shard.<i>.` for a
    /// sharded fleet's members, mirroring `ShardedService::metrics_text`).
    fn introspection_registries(&self) -> Vec<(String, MetricsRegistry)> {
        match self {
            Backend::Single(s) => vec![(String::new(), s.metrics().registry().clone())],
            Backend::Sharded(s) => {
                let mut out = vec![(String::new(), s.metrics().registry().clone())];
                for index in 0..s.shard_count() {
                    if let Some(shard) = s.shard_service(index) {
                        out.push((
                            format!("shard.{index}."),
                            shard.metrics().registry().clone(),
                        ));
                    }
                }
                out
            }
        }
    }
}

/// Admission-control and batching knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most jobs the executor drains per wakeup; consecutive queries within
    /// a drain share one `execute_batch` call.
    pub max_batch: usize,
    /// Global queue slot cap — requests beyond it are shed.
    pub queue_capacity: usize,
    /// Cap on the summed cost estimate of queued requests.
    pub cost_budget: u64,
    /// Per-connection cap on admitted-but-unanswered requests.
    pub per_conn_inflight: u64,
    /// Head-sampling probability for requests carrying a trace id
    /// (deterministic in the id — see [`rknnt_obs::TraceId::sampled`] — so
    /// every server in a fleet keeps or drops the same traces without
    /// coordination). `1.0` traces every tagged request, `0.0` none.
    pub trace_sample: f64,
    /// Completed traces whose root span exceeds this duration are promoted
    /// into the slow-query log with their full span tree and a correlated
    /// flight-recorder window.
    pub slow_query_threshold_ns: u64,
    /// Slow-query ring capacity (oldest entries are evicted first).
    pub slow_query_capacity: usize,
    /// Armed failpoints for deterministic fault injection on this server's
    /// read path ([`SERVER_READ_SITE`]), write path ([`SERVER_WRITE_SITE`])
    /// and executor ([`SERVER_EXECUTOR_SITE`]). `None` (the default) runs
    /// clean.
    pub failpoints: Option<Arc<Failpoints>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 64,
            queue_capacity: 256,
            cost_budget: 1 << 20,
            per_conn_inflight: 64,
            trace_sample: 1.0,
            slow_query_threshold_ns: 10_000_000,
            slow_query_capacity: 32,
            failpoints: None,
        }
    }
}

impl ServerConfig {
    /// Sets the executor drain cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the global queue slot cap.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the queued-cost budget.
    pub fn with_cost_budget(mut self, cost_budget: u64) -> Self {
        self.cost_budget = cost_budget;
        self
    }

    /// Sets the per-connection inflight cap.
    pub fn with_per_conn_inflight(mut self, per_conn_inflight: u64) -> Self {
        self.per_conn_inflight = per_conn_inflight;
        self
    }

    /// Sets the trace head-sampling probability.
    pub fn with_trace_sample(mut self, trace_sample: f64) -> Self {
        self.trace_sample = trace_sample;
        self
    }

    /// Sets the slow-query promotion threshold in nanoseconds.
    pub fn with_slow_query_threshold_ns(mut self, threshold_ns: u64) -> Self {
        self.slow_query_threshold_ns = threshold_ns;
        self
    }

    /// Sets the slow-query ring capacity.
    pub fn with_slow_query_capacity(mut self, capacity: usize) -> Self {
        self.slow_query_capacity = capacity;
        self
    }

    /// Arms failpoints on the server's read/write/executor paths.
    pub fn with_failpoints(mut self, failpoints: Arc<Failpoints>) -> Self {
        self.failpoints = Some(failpoints);
        self
    }
}

/// The serving-edge metric cells, registered once in a
/// [`MetricsRegistry`] under the `net.` prefix.
struct NetMetrics {
    registry: Mutex<MetricsRegistry>,
    admitted: Counter,
    shed_queue_full: Counter,
    shed_cost_budget: Counter,
    shed_inflight: Counter,
    queue_depth: Gauge,
    request_ns: Arc<Histogram>,
    connections_opened: Counter,
    connections_closed: Counter,
    deltas_pushed: Counter,
    subscriptions_reclaimed: Counter,
}

impl NetMetrics {
    fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let admitted = registry.counter("net.admitted");
        let shed_queue_full = registry.counter("net.shed.queue_full");
        let shed_cost_budget = registry.counter("net.shed.cost_budget");
        let shed_inflight = registry.counter("net.shed.inflight");
        let queue_depth = registry.gauge("net.queue_depth");
        let request_ns = registry.histogram("net.request_ns");
        let connections_opened = registry.counter("net.connections_opened");
        let connections_closed = registry.counter("net.connections_closed");
        let deltas_pushed = registry.counter("net.deltas_pushed");
        let subscriptions_reclaimed = registry.counter("net.subscriptions_reclaimed");
        NetMetrics {
            registry: Mutex::new(registry),
            admitted,
            shed_queue_full,
            shed_cost_budget,
            shed_inflight,
            queue_depth,
            request_ns,
            connections_opened,
            connections_closed,
            deltas_pushed,
            subscriptions_reclaimed,
        }
    }

    /// Total sheds across every reason.
    fn shed_total(&self) -> u64 {
        self.shed_queue_full.get() + self.shed_cost_budget.get() + self.shed_inflight.get()
    }
}

/// Per-connection shared state. The writer half is a `try_clone` of the
/// socket behind a mutex, so reply writes from the reader thread (sheds)
/// and the executor (answers, delta pushes) interleave at frame
/// granularity.
struct Conn {
    id: u64,
    writer: Mutex<TcpStream>,
    inflight: AtomicU64,
    /// Armed failpoints for the outgoing-frame path ([`SERVER_WRITE_SITE`]).
    failpoints: Option<Arc<Failpoints>>,
}

impl Conn {
    fn send(&self, msg: &Message) -> io::Result<()> {
        let mut frame = frame_bytes(&msg.encode())?;
        if let Some(fp) = &self.failpoints {
            match fp.hit(SERVER_WRITE_SITE) {
                Some(FaultAction::Cut { after }) => {
                    // Sever mid-frame: the client must see a hard EOF inside
                    // the frame, never a clean boundary.
                    let keep = after.unwrap_or(0).min(frame.len().saturating_sub(1));
                    let mut writer = self.writer.lock().expect("conn writer poisoned");
                    let _ = writer.write_all(&frame[..keep]);
                    let _ = writer.shutdown(Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        format!("injected cut after {keep} of {} frame bytes", frame.len()),
                    ));
                }
                Some(FaultAction::Corrupt { offset, mask }) => {
                    // The frame still ships; the client's checksum must
                    // catch the damage.
                    let at = offset.min(frame.len() - 1);
                    frame[at] ^= if mask == 0 { 0x01 } else { mask };
                }
                Some(FaultAction::Fail { message }) => {
                    return Err(io::Error::other(message));
                }
                Some(FaultAction::Delay { nanos }) => {
                    std::thread::sleep(Duration::from_nanos(nanos));
                }
                Some(FaultAction::Kill) | Some(FaultAction::Panic { .. }) | None => {}
            }
        }
        let mut writer = self.writer.lock().expect("conn writer poisoned");
        writer.write_all(&frame)
    }
}

enum Work {
    /// An admitted client request.
    Request(Message),
    /// Internal: the connection's reader exited; reclaim its subscriptions.
    Disconnect,
}

/// The span bookkeeping for one sampled request, threaded from admission
/// (where the root opens) through the executor (where `queue` ends and
/// `execute` brackets the backend call) to the reply write (where the root
/// closes and the completed trace feeds the slow-query log).
struct RequestTrace {
    ctx: TraceContext,
    root: SpanId,
    queue: Option<SpanId>,
    execute: Option<SpanId>,
}

impl RequestTrace {
    /// Ends the `queue` span, opens `execute`, and returns a cursor under
    /// it for the backend to hang its spans from.
    fn start_execute(&mut self) -> TraceCursor {
        let root = TraceCursor::new(&self.ctx, self.root);
        if let Some(queue) = self.queue.take() {
            root.end(queue);
        }
        let execute = root.begin("execute");
        self.execute = Some(execute);
        root.at(execute)
    }

    /// Closes any open spans plus the root and hands the completed trace to
    /// the slow-query log (with the flight recorder for window capture).
    fn finish(mut self, shared: &Shared) {
        let root = TraceCursor::new(&self.ctx, self.root);
        if let Some(queue) = self.queue.take() {
            root.end(queue);
        }
        if let Some(execute) = self.execute.take() {
            root.end(execute);
        }
        self.ctx.end_span(self.root);
        shared
            .slow_log
            .observe(self.ctx.finish(), Some(&shared.recorder));
    }
}

struct Job {
    conn: Arc<Conn>,
    work: Work,
    cost: u64,
    accepted_at: Instant,
    trace: Option<RequestTrace>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    cost: u64,
    open: bool,
}

struct Shared {
    config: ServerConfig,
    metrics: NetMetrics,
    queue: Mutex<QueueState>,
    ready: Condvar,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    shutting_down: AtomicBool,
    /// The listener address — needed by fault paths to unblock the
    /// acceptor's blocking `accept()` with a throwaway connect.
    addr: SocketAddr,
    /// Why the server died, when it died by fault (injected kill or a
    /// contained executor panic) rather than an orderly [`Server::stop`].
    dead: Mutex<Option<String>>,
    /// Clock for request traces (one source for every span in a tree).
    telemetry: Telemetry,
    /// Completed-trace ring; promotes over-threshold traces.
    slow_log: Arc<SlowQueryLog>,
    /// The backend's flight recorder, captured before the backend moved
    /// into the executor — read by introspection and slow-log capture.
    recorder: Arc<FlightRecorder>,
    /// Live backend registry handles for reader-thread metrics
    /// introspection (prefix, registry) — see
    /// [`Backend::introspection_registries`].
    registries: Vec<(String, MetricsRegistry)>,
}

/// A running server. Dropping it (or calling [`Server::stop`]) shuts the
/// listener, wakes and joins the executor, and severs every connection.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<Backend>>,
}

impl Server {
    /// Binds a loopback listener on an ephemeral port and starts serving
    /// `backend`.
    pub fn start(backend: Backend, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        // Introspection handles must be captured *before* the backend moves
        // into the executor thread: reader threads answer `Introspect`
        // directly from these.
        let recorder = backend.flight_recorder();
        let registries = backend.introspection_registries();
        let slow_log = Arc::new(SlowQueryLog::new(
            config.slow_query_threshold_ns,
            config.slow_query_capacity,
        ));
        let shared = Arc::new(Shared {
            config,
            metrics: NetMetrics::new(),
            queue: Mutex::new(QueueState {
                open: true,
                ..QueueState::default()
            }),
            ready: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            addr,
            dead: Mutex::new(None),
            telemetry: Telemetry::monotonic(),
            slow_log,
            recorder,
            registries,
        });
        let acceptor = std::thread::Builder::new()
            .name("rknnt-net-accept".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || accept_loop(listener, shared)
            })?;
        let executor = std::thread::Builder::new()
            .name("rknnt-net-exec".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || executor_loop(backend, shared)
            })?;
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            executor: Some(executor),
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests admitted to the queue so far.
    pub fn admitted(&self) -> u64 {
        self.shared.metrics.admitted.get()
    }

    /// Requests shed with an `Overloaded` reply so far (all reasons; the
    /// per-reason split is in the `net.shed.*` counters of
    /// [`Server::metrics_text`]).
    pub fn shed(&self) -> u64 {
        self.shared.metrics.shed_total()
    }

    /// Shared handle to the slow-query log (the same ring `Introspect {
    /// SlowQueries }` answers from).
    pub fn slow_query_log(&self) -> Arc<SlowQueryLog> {
        Arc::clone(&self.shared.slow_log)
    }

    /// Subscription deltas pushed to clients so far.
    pub fn deltas_pushed(&self) -> u64 {
        self.shared.metrics.deltas_pushed.get()
    }

    /// Connections whose reader has exited (the backend-side subscription
    /// reclamation for each is already queued when this ticks).
    pub fn connections_closed(&self) -> u64 {
        self.shared.metrics.connections_closed.get()
    }

    /// Subscriptions dropped because their owning connection closed.
    pub fn subscriptions_reclaimed(&self) -> u64 {
        self.shared.metrics.subscriptions_reclaimed.get()
    }

    /// Snapshot of the admitted-request latency histogram.
    pub fn request_latency(&self) -> rknnt_obs::HistogramSnapshot {
        self.shared.metrics.request_ns.snapshot()
    }

    /// Why the server died by fault (injected kill or a contained executor
    /// panic), or `None` while it is healthy / after an orderly stop.
    pub fn fault(&self) -> Option<String> {
        self.shared.dead.lock().expect("dead poisoned").clone()
    }

    /// Whether the server died by fault. Dead servers refuse new work with
    /// typed errors or closed connections — never silence — and
    /// [`Server::stop`] still returns the backend.
    pub fn is_dead(&self) -> bool {
        self.fault().is_some()
    }

    /// Chaos hook: kills the serving side right now, exactly as the
    /// [`rknnt_fault::FaultAction::Kill`] failpoint would — the queue
    /// closes and empties unanswered, every connection is severed, and the
    /// listener shuts so reconnects fail instantly. Lets harness code place
    /// the kill at a deterministic point in a request stream without
    /// counting frames for a failpoint ordinal.
    pub fn kill(&self, reason: &str) {
        kill_server(&self.shared, reason);
    }

    /// Text exposition of the `net.*` metrics.
    pub fn metrics_text(&self) -> String {
        self.shared
            .metrics
            .registry
            .lock()
            .expect("metrics registry poisoned")
            .render_text()
    }

    /// Stops the server and returns the backend, with every queued job
    /// either answered or past the point of admission (the executor drains
    /// the queue before exiting).
    pub fn stop(mut self) -> Backend {
        self.halt();
        self.executor
            .take()
            .expect("executor already joined")
            .join()
            .expect("executor thread panicked")
    }

    fn halt(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        {
            let mut state = self.shared.queue.lock().expect("queue poisoned");
            state.open = false;
        }
        self.shared.ready.notify_all();
        // Unblock the acceptor's blocking accept() with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Severing the sockets unblocks every reader thread; readers are
        // detached and exit on their own.
        let conns = self.shared.conns.lock().expect("conns poisoned");
        for conn in conns.values() {
            if let Ok(writer) = conn.writer.lock() {
                let _ = writer.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.halt();
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_conn_id = 1u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let writer = match stream.try_clone() {
            Ok(writer) => writer,
            Err(_) => continue,
        };
        let conn = Arc::new(Conn {
            id: next_conn_id,
            writer: Mutex::new(writer),
            inflight: AtomicU64::new(0),
            failpoints: shared.config.failpoints.clone(),
        });
        next_conn_id += 1;
        shared
            .conns
            .lock()
            .expect("conns poisoned")
            .insert(conn.id, Arc::clone(&conn));
        shared.metrics.connections_opened.inc();
        let spawned = std::thread::Builder::new()
            .name(format!("rknnt-net-conn-{}", conn.id))
            .spawn({
                let shared = Arc::clone(&shared);
                move || reader_loop(stream, conn, shared)
            });
        if spawned.is_err() {
            // Could not spawn a reader; the socket just closes.
            continue;
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>, shared: Arc<Shared>) {
    let mut buf = Vec::new();
    loop {
        match read_frame(&mut stream, &mut buf) {
            Ok(Some(())) => {}
            Ok(None) => break,
            Err(err) => {
                // Garbage on the wire (bad checksum, hostile length, torn
                // frame): answer with a typed error, then drop the
                // connection — framing can no longer be trusted.
                let _ = conn.send(&Message::Error {
                    id: 0,
                    message: format!("malformed frame: {err}"),
                });
                break;
            }
        }
        // Deterministic fault injection on the receive path: one hit per
        // frame, before the frame is acted on.
        if let Some(fp) = &shared.config.failpoints {
            match fp.hit(SERVER_READ_SITE) {
                Some(FaultAction::Cut { .. }) => break,
                Some(FaultAction::Fail { message }) => {
                    let _ = conn.send(&Message::Error { id: 0, message });
                    break;
                }
                Some(FaultAction::Kill) => {
                    kill_server(&shared, "injected kill at net.server.read");
                    break;
                }
                Some(FaultAction::Delay { nanos }) => {
                    std::thread::sleep(Duration::from_nanos(nanos));
                }
                Some(FaultAction::Corrupt { .. }) | Some(FaultAction::Panic { .. }) | None => {}
            }
        }
        let msg = match Message::decode(&buf) {
            Ok(msg) => msg,
            Err(err) => {
                let _ = conn.send(&Message::Error {
                    id: 0,
                    message: format!("malformed message: {err}"),
                });
                break;
            }
        };
        if !msg.is_request() {
            let _ = conn.send(&Message::Error {
                id: msg.request_id(),
                message: "expected a request message".into(),
            });
            break;
        }
        // Introspection is answered right here on the reader thread: it
        // must work while the executor is saturated, so it never takes a
        // queue slot and is never shed.
        if let Message::Introspect { id, what } = msg {
            let report = introspect(&shared, what);
            let _ = conn.send(&Message::IntrospectOk { id, report });
            continue;
        }
        admit(&shared, &conn, msg);
    }
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .remove(&conn.id);
    // Hand the executor a reclamation job so the backend drops this
    // connection's subscriptions. Bypasses admission: it is internal and
    // must not be sheddable. Enqueued *before* the closed counter ticks, so
    // once `connections_closed` is visible the reclamation is already ahead
    // of any later request in the FIFO queue.
    {
        let mut state = shared.queue.lock().expect("queue poisoned");
        if state.open {
            state.jobs.push_back(Job {
                conn: Arc::clone(&conn),
                work: Work::Disconnect,
                cost: 0,
                accepted_at: Instant::now(),
                trace: None,
            });
            shared.ready.notify_one();
        }
    }
    shared.metrics.connections_closed.inc();
}

/// Builds the reply to an [`Message::Introspect`] request from the shared
/// handles (never from the backend itself, which the executor owns).
fn introspect(shared: &Shared, what: IntrospectWhat) -> IntrospectReport {
    match what {
        IntrospectWhat::Metrics => {
            let mut text = shared
                .metrics
                .registry
                .lock()
                .expect("metrics registry poisoned")
                .render_text();
            for (prefix, registry) in &shared.registries {
                for line in registry.render_text().lines() {
                    text.push_str(prefix);
                    text.push_str(line);
                    text.push('\n');
                }
            }
            IntrospectReport::Metrics { text }
        }
        IntrospectWhat::SlowQueries => IntrospectReport::SlowQueries {
            entries: shared
                .slow_log
                .entries()
                .iter()
                .map(WireSlowQuery::from)
                .collect(),
        },
        IntrospectWhat::FlightRecorder => IntrospectReport::FlightRecorder {
            text: shared.recorder.render(rknnt_obs::SLOW_LOG_EVENT_WINDOW),
        },
    }
}

/// The trace id a request carries on the wire, if any.
fn wire_trace(msg: &Message) -> Option<u64> {
    match msg {
        Message::Query { trace, .. } | Message::ApplyUpdates { trace, .. } => *trace,
        _ => None,
    }
}

/// Opens the span tree for a tagged request that passes the head sampler:
/// a `request` root, a closed `admission` marker carrying the admission
/// inputs, and an open `queue` span the executor will close when it picks
/// the job up.
fn begin_request_trace(
    shared: &Shared,
    msg: &Message,
    cost: u64,
    queue_depth: u64,
) -> Option<RequestTrace> {
    let id = TraceId::from_raw(wire_trace(msg)?);
    if !id.sampled(shared.config.trace_sample) {
        return None;
    }
    let ctx = TraceContext::begin(id, shared.telemetry.clone());
    let root = ctx.begin_span("request", SpanId::NONE);
    let cursor = TraceCursor::new(&ctx, root);
    cursor.record(
        "admission",
        0,
        &[("cost", cost), ("queue_depth", queue_depth)],
    );
    let queue = cursor.begin("queue");
    Some(RequestTrace {
        ctx,
        root,
        queue: Some(queue),
        execute: None,
    })
}

/// The admission decision. Runs on the reader thread so a shed never
/// touches the executor: the reply is written straight back and the request
/// never occupies a queue slot.
fn admit(shared: &Shared, conn: &Arc<Conn>, msg: Message) {
    let cost = estimate_cost(&msg);
    let id = msg.request_id();
    let mut state = shared.queue.lock().expect("queue poisoned");
    if !state.open {
        drop(state);
        // Answer-or-close: a request that arrives after the queue closed
        // gets a typed refusal, never silence.
        let reason = shared
            .dead
            .lock()
            .expect("dead poisoned")
            .clone()
            .unwrap_or_else(|| "server is shutting down".into());
        let _ = conn.send(&Message::Error {
            id,
            message: format!("request refused: {reason}"),
        });
        return;
    }
    let over_capacity = state.jobs.len() >= shared.config.queue_capacity;
    let over_budget = state.cost.saturating_add(cost) > shared.config.cost_budget;
    let over_inflight = conn.inflight.load(Ordering::Acquire) >= shared.config.per_conn_inflight;
    if over_capacity || over_budget || over_inflight {
        let info = OverloadInfo {
            queue_depth: state.jobs.len() as u64,
            queue_cost: state.cost,
            estimated_cost: cost,
            cost_budget: shared.config.cost_budget,
        };
        drop(state);
        // One shed, one reason: the checks cascade, so attribute the shed
        // to the first tripwire in queue → budget → inflight order.
        if over_capacity {
            shared.metrics.shed_queue_full.inc();
        } else if over_budget {
            shared.metrics.shed_cost_budget.inc();
        } else {
            shared.metrics.shed_inflight.inc();
        }
        let _ = conn.send(&Message::Overloaded { id, info });
        return;
    }
    let trace = begin_request_trace(shared, &msg, cost, state.jobs.len() as u64);
    state.cost += cost;
    state.jobs.push_back(Job {
        conn: Arc::clone(conn),
        work: Work::Request(msg),
        cost,
        accepted_at: Instant::now(),
        trace,
    });
    shared.metrics.queue_depth.set(state.jobs.len() as u64);
    conn.inflight.fetch_add(1, Ordering::AcqRel);
    drop(state);
    shared.metrics.admitted.inc();
    shared.ready.notify_one();
}

/// Executor state for live subscriptions: wire handle → owning connection
/// and the backend's (crate-private) id.
#[derive(Default)]
struct SubscriptionTable {
    by_raw: HashMap<u64, (u64, SubscriptionId)>,
    by_conn: HashMap<u64, Vec<u64>>,
}

fn executor_loop(mut backend: Backend, shared: Arc<Shared>) -> Backend {
    let mut subs = SubscriptionTable::default();
    let mut batch: Vec<Job> = Vec::new();
    // Update records applied this process lifetime — the health watermark
    // for storage-less backends (in-memory state and executor lifetime
    // coincide, so a process-local count is exact).
    let mut applied_records: u64 = 0;
    loop {
        {
            let mut state = shared.queue.lock().expect("queue poisoned");
            while state.jobs.is_empty() {
                if !state.open {
                    return backend;
                }
                state = shared.ready.wait(state).expect("queue poisoned");
            }
            let take = state.jobs.len().min(shared.config.max_batch.max(1));
            for _ in 0..take {
                let job = state.jobs.pop_front().expect("checked non-empty");
                state.cost -= job.cost;
                batch.push(job);
            }
            shared.metrics.queue_depth.set(state.jobs.len() as u64);
        }
        let injected = shared
            .config
            .failpoints
            .as_ref()
            .and_then(|fp| fp.hit(SERVER_EXECUTOR_SITE));
        if matches!(injected, Some(FaultAction::Kill)) {
            kill_server(&shared, "injected kill at net.server.executor");
            batch.clear();
            return backend;
        }
        if let Some(FaultAction::Delay { nanos }) = &injected {
            // An injected stall: the batch is delayed wholesale, exactly
            // like an executor wedged on a slow backend.
            std::thread::sleep(Duration::from_nanos(*nanos));
        }
        // Snapshot who is owed a reply *before* running the batch: if the
        // executor panics we can still answer every request in it.
        let pending: Vec<(Arc<Conn>, u64)> = batch
            .iter()
            .filter_map(|job| match &job.work {
                Work::Request(msg) => Some((Arc::clone(&job.conn), msg.request_id())),
                Work::Disconnect => None,
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(FaultAction::Panic { message }) = &injected {
                panic!("{}", message.clone());
            }
            process_batch(
                &mut backend,
                &shared,
                &mut subs,
                &mut batch,
                &mut applied_records,
            );
        }));
        if let Err(payload) = outcome {
            executor_panicked(&shared, &pending, payload);
            batch.clear();
            // The backend may hold a half-applied batch; it goes back to the
            // caller (via `Server::stop`) for inspection, but serves no
            // further traffic.
            return backend;
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Executor-panic containment: no request may be stranded waiting on a
/// reply that will never come. Every request in the failed batch and every
/// request still queued gets a typed [`Message::Error`], the queue closes
/// (later arrivals are refused in [`admit`]), and every connection is
/// severed so blocked readers observe a close rather than a hang. A reply
/// may duplicate one already written before the panic landed — an extra
/// `Error` for an answered id is noise the client discards; a missing reply
/// would be a hang.
fn executor_panicked(
    shared: &Shared,
    pending: &[(Arc<Conn>, u64)],
    payload: Box<dyn std::any::Any + Send>,
) {
    let message = format!("server executor panicked: {}", panic_message(payload));
    {
        let mut dead = shared.dead.lock().expect("dead poisoned");
        if dead.is_none() {
            *dead = Some(message.clone());
        }
    }
    shared.shutting_down.store(true, Ordering::SeqCst);
    for (conn, id) in pending {
        let _ = conn.send(&Message::Error {
            id: *id,
            message: message.clone(),
        });
    }
    // Close the queue and answer everything still in it, FIFO order.
    let drained: Vec<Job> = {
        let mut state = shared.queue.lock().expect("queue poisoned");
        state.open = false;
        state.cost = 0;
        state.jobs.drain(..).collect()
    };
    for job in &drained {
        if let Work::Request(msg) = &job.work {
            let _ = job.conn.send(&Message::Error {
                id: msg.request_id(),
                message: message.clone(),
            });
        }
    }
    shared.ready.notify_all();
    // Unblock the acceptor so the listener closes: reconnect attempts fail
    // instantly instead of hanging.
    let _ = TcpStream::connect(shared.addr);
    let conns = shared.conns.lock().expect("conns poisoned");
    for conn in conns.values() {
        if let Ok(writer) = conn.writer.lock() {
            let _ = writer.shutdown(Shutdown::Both);
        }
    }
}

/// Injected hard kill: the process "dies" — the queue closes and empties
/// without answering (a real crash answers nothing), every connection is
/// severed so clients observe a close immediately, and the listener shuts
/// so reconnect attempts get connection-refused rather than a hang.
fn kill_server(shared: &Shared, reason: &str) {
    {
        let mut dead = shared.dead.lock().expect("dead poisoned");
        if dead.is_none() {
            *dead = Some(reason.to_string());
        }
    }
    shared.shutting_down.store(true, Ordering::SeqCst);
    {
        let mut state = shared.queue.lock().expect("queue poisoned");
        state.open = false;
        state.cost = 0;
        state.jobs.clear();
    }
    shared.ready.notify_all();
    let _ = TcpStream::connect(shared.addr);
    let conns = shared.conns.lock().expect("conns poisoned");
    for conn in conns.values() {
        if let Ok(writer) = conn.writer.lock() {
            let _ = writer.shutdown(Shutdown::Both);
        }
    }
}

/// Processes one drained batch in FIFO order, funnelling consecutive
/// queries through a single `execute_batch` call so the service's grouping
/// and worker pool see them together.
fn process_batch(
    backend: &mut Backend,
    shared: &Shared,
    subs: &mut SubscriptionTable,
    batch: &mut Vec<Job>,
    applied_records: &mut u64,
) {
    let mut queries: Vec<RknntQuery> = Vec::new();
    let mut query_meta: Vec<QueryMeta> = Vec::new();
    let mut jobs = batch.drain(..).peekable();
    while let Some(job) = jobs.next() {
        match job.work {
            Work::Request(Message::Query { id, query, .. }) => {
                queries.push(query);
                query_meta.push((job.conn, id, job.accepted_at, job.trace));
                let next_is_query = matches!(
                    jobs.peek(),
                    Some(Job {
                        work: Work::Request(Message::Query { .. }),
                        ..
                    })
                );
                if !next_is_query {
                    flush_queries(backend, shared, &mut queries, &mut query_meta);
                }
            }
            Work::Request(msg) => handle_control(
                backend,
                shared,
                subs,
                &job.conn,
                msg,
                job.accepted_at,
                job.trace,
                applied_records,
            ),
            Work::Disconnect => {
                for raw in subs.by_conn.remove(&job.conn.id).unwrap_or_default() {
                    if let Some((_, sid)) = subs.by_raw.remove(&raw) {
                        backend.unsubscribe(sid);
                        shared.metrics.subscriptions_reclaimed.inc();
                    }
                }
            }
        }
    }
}

/// Per-query reply bookkeeping through a funnelled batch: connection,
/// request id, admission time, and the request's trace (if sampled).
type QueryMeta = (Arc<Conn>, u64, Instant, Option<RequestTrace>);

fn flush_queries(
    backend: &Backend,
    shared: &Shared,
    queries: &mut Vec<RknntQuery>,
    meta: &mut Vec<QueryMeta>,
) {
    if queries.is_empty() {
        return;
    }
    // Every traced request in the funnel gets its `queue` span closed and
    // an `execute` span bracketing the backend call; the backend's own
    // span tree hangs off the *first* traced request (one `execute_batch`
    // serves the whole funnel, so its internals belong to one tree).
    let mut batch_cursor: Option<TraceCursor> = None;
    for (_, _, _, trace) in meta.iter_mut() {
        if let Some(rt) = trace.as_mut() {
            let cursor = rt.start_execute();
            if batch_cursor.is_none() {
                batch_cursor = Some(cursor);
            }
        }
    }
    let (results, _stats) = backend.execute_batch_traced(queries, batch_cursor.as_ref());
    for ((conn, id, accepted_at, trace), result) in meta.drain(..).zip(results) {
        // Finish the trace *before* the reply leaves: a client that has its
        // answer can immediately introspect and find the promoted trace.
        if let Some(rt) = trace {
            rt.finish(shared);
        }
        let _ = conn.send(&Message::QueryOk {
            id,
            transitions: result.transitions,
        });
        finish(shared, &conn, accepted_at);
    }
    queries.clear();
}

#[allow(clippy::too_many_arguments)]
fn handle_control(
    backend: &mut Backend,
    shared: &Shared,
    subs: &mut SubscriptionTable,
    conn: &Arc<Conn>,
    msg: Message,
    accepted_at: Instant,
    mut trace: Option<RequestTrace>,
    applied_records: &mut u64,
) {
    match msg {
        Message::Subscribe { id, query } => {
            let sid = backend.subscribe(query);
            let raw = sid.raw();
            let transitions = backend
                .subscription_result(sid)
                .map(<[TransitionId]>::to_vec)
                .unwrap_or_default();
            subs.by_raw.insert(raw, (conn.id, sid));
            subs.by_conn.entry(conn.id).or_default().push(raw);
            let _ = conn.send(&Message::SubscribeOk {
                id,
                subscription: raw,
                transitions,
            });
        }
        Message::Unsubscribe { id, subscription } => {
            // Only the owning connection may drop a subscription.
            let owned =
                matches!(subs.by_raw.get(&subscription), Some((owner, _)) if *owner == conn.id);
            let existed = if owned {
                let (_, sid) = subs.by_raw.remove(&subscription).expect("checked present");
                if let Some(raws) = subs.by_conn.get_mut(&conn.id) {
                    raws.retain(|&r| r != subscription);
                }
                backend.unsubscribe(sid)
            } else {
                false
            };
            let _ = conn.send(&Message::UnsubscribeOk { id, existed });
        }
        Message::ApplyUpdates { id, updates, .. } => {
            // Counts records *received*, mirroring the WAL watermark (which
            // appends every record before applying, rejected ones included).
            *applied_records += updates.len() as u64;
            let cursor = trace.as_mut().map(RequestTrace::start_execute);
            let stats = backend.apply_updates_traced(updates, cursor.as_ref());
            // Finish the trace *before* the reply leaves: a client that has
            // its answer can immediately introspect and find the promoted
            // trace.
            if let Some(rt) = trace.take() {
                rt.finish(shared);
            }
            let _ = conn.send(&Message::UpdatesOk {
                id,
                applied: stats.applied as u64,
                rejected: stats.rejected as u64,
            });
            push_deltas(shared, subs, stats.deltas);
        }
        Message::Ping { id } => {
            let _ = conn.send(&Message::Pong { id });
        }
        Message::Health { id } => {
            // Durable watermark when storage is attached (survives
            // restarts); the executor-local count otherwise.
            let watermark = backend.durable_watermark().unwrap_or(*applied_records);
            let _ = conn.send(&Message::HealthOk {
                id,
                generation: backend.generation(),
                watermark,
            });
        }
        // Readers only enqueue request kinds; queries are flushed upstream.
        _ => {}
    }
    if let Some(rt) = trace {
        rt.finish(shared);
    }
    finish(shared, conn, accepted_at);
}

/// Streams result changes to the connections owning the affected
/// subscriptions. Deltas for connections that have since disconnected are
/// dropped — their subscriptions are reclaimed by the pending
/// [`Work::Disconnect`] job.
fn push_deltas(shared: &Shared, subs: &SubscriptionTable, deltas: Vec<SubscriptionDelta>) {
    for delta in deltas {
        let raw = delta.subscription.raw();
        let Some(&(conn_id, _)) = subs.by_raw.get(&raw) else {
            continue;
        };
        let conn = shared
            .conns
            .lock()
            .expect("conns poisoned")
            .get(&conn_id)
            .cloned();
        let Some(conn) = conn else { continue };
        // Count before writing: a client that has received the frame must
        // observe the incremented counter. Frames lost to a connection
        // closing mid-write still count — they were pushed, not dropped.
        shared.metrics.deltas_pushed.inc();
        let _ = conn.send(&Message::Delta {
            subscription: raw,
            entered: delta.entered,
            left: delta.left,
            reason: delta.reason,
        });
    }
}

fn finish(shared: &Shared, conn: &Conn, accepted_at: Instant) {
    conn.inflight.fetch_sub(1, Ordering::AcqRel);
    let elapsed = accepted_at.elapsed().as_nanos();
    shared
        .metrics
        .request_ns
        .record(u64::try_from(elapsed).unwrap_or(u64::MAX));
}
