//! Wire protocol: CRC-guarded length-prefixed frames carrying little-endian
//! binary messages.
//!
//! Every frame on the socket is `crc:u32 | len:u32 | payload[len]`, all
//! little-endian, where the checksum covers the length bytes *and* the
//! payload — the same discipline as the storage WAL, so a frame whose length
//! field is corrupted in flight cannot silently re-frame the stream. Payloads
//! are [`Message`]s encoded through the `rknnt-data` codec (the build is
//! hermetic — no serde backend — so the serving edge reuses the exact
//! encoder/decoder the snapshots and WAL already trust).
//!
//! Decoding is hostile-input safe end to end: the frame length is capped at
//! [`MAX_FRAME_BYTES`] before any allocation, the checksum is verified before
//! the payload is parsed, and [`Message::decode`] inherits the codec's
//! bounds-checked reads plus an exhaustion check, so trailing garbage inside
//! a structurally valid frame is rejected too.

use rknnt_core::{RknntQuery, Semantics};
use rknnt_data::codec::{crc32, CodecError, CodecResult, Decoder, Encoder};
use rknnt_index::TransitionId;
use rknnt_obs::SlowQueryEntry;
use rknnt_service::{DeltaReason, StoreUpdate};
use std::io::{self, Read, Write};

/// Hard cap on a frame payload. A hostile or corrupted length field fails
/// fast instead of driving a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Builds the full wire bytes of one frame: `crc | len | payload`. The
/// fault-injection paths need the frame as a contiguous buffer (to corrupt
/// a byte or sever mid-frame at an exact offset), so framing and writing
/// are split.
pub fn frame_bytes(payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds cap", payload.len()),
        ));
    }
    // The checksum covers the length bytes and the payload in one pass, so
    // build `len | payload` contiguously and prepend the crc on the wire.
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&[0u8; 4]);
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body[4..]);
    body[..4].copy_from_slice(&crc.to_le_bytes());
    Ok(body)
}

/// Writes one frame: `crc | len | payload`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(payload)?)
}

/// Reads one frame into `buf` (payload only, header stripped).
///
/// Returns `Ok(None)` on a clean EOF — the peer closed the connection on a
/// frame boundary. EOF *inside* a frame, an over-cap length, or a checksum
/// mismatch are all errors.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Option<()>> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let crc = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(header[4..].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    buf.clear();
    buf.resize(4 + len, 0);
    buf[..4].copy_from_slice(&header[4..]);
    r.read_exact(&mut buf[4..])?;
    if crc32(buf) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    buf.drain(..4);
    Ok(Some(()))
}

/// Why the server refused a request, echoed back in the [`Message::Overloaded`]
/// reply so clients can make an informed backoff decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadInfo {
    /// Requests waiting in the global queue at the shed decision.
    pub queue_depth: u64,
    /// Summed cost estimate of the queued requests.
    pub queue_cost: u64,
    /// Cost estimate of the request that was shed.
    pub estimated_cost: u64,
    /// The server's queued-cost budget.
    pub cost_budget: u64,
}

/// What a [`Message::Introspect`] request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntrospectWhat {
    /// The server's `net.*` metrics plus the backend's registries, in the
    /// text exposition format.
    Metrics,
    /// The slow-query log: promoted traces with their span trees.
    SlowQueries,
    /// The backend's flight-recorder window, rendered.
    FlightRecorder,
}

/// One span of a slow trace as it travels on the wire: the in-memory
/// [`rknnt_obs::TraceSpan`]'s static strings become owned ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name.
    pub name: String,
    /// Start offset in nanoseconds on the trace's clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Index of the parent span in the trace, or `u32::MAX` for a root.
    pub parent: u32,
    /// Integer attributes, in recording order.
    pub attrs: Vec<(String, u64)>,
}

impl WireSpan {
    /// The parent span's index, if any.
    pub fn parent_index(&self) -> Option<usize> {
        if self.parent == u32::MAX {
            None
        } else {
            Some(self.parent as usize)
        }
    }
}

/// One promoted slow query as reported by [`Message::IntrospectOk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSlowQuery {
    /// The trace id.
    pub trace_id: u64,
    /// Root span duration in nanoseconds.
    pub root_dur_ns: u64,
    /// Spans that overflowed the trace slab and were dropped.
    pub dropped: u32,
    /// The retained span tree, in recording order (root first).
    pub spans: Vec<WireSpan>,
    /// The flight-recorder window captured when the trace was promoted.
    pub events: String,
}

impl From<&SlowQueryEntry> for WireSlowQuery {
    fn from(entry: &SlowQueryEntry) -> Self {
        WireSlowQuery {
            trace_id: entry.trace.id().raw(),
            root_dur_ns: entry.trace.root_duration_ns(),
            dropped: entry.trace.dropped(),
            spans: entry
                .trace
                .spans()
                .iter()
                .map(|span| WireSpan {
                    name: span.name().to_string(),
                    start_ns: span.start_ns(),
                    dur_ns: span.dur_ns(),
                    parent: span
                        .parent()
                        .and_then(|p| p.index())
                        .map(|i| i as u32)
                        .unwrap_or(u32::MAX),
                    attrs: span
                        .attrs()
                        .iter()
                        .map(|&(name, value)| (name.to_string(), value))
                        .collect(),
                })
                .collect(),
            events: entry.events.clone(),
        }
    }
}

/// An [`Message::IntrospectOk`] payload.
#[derive(Debug, Clone, PartialEq)]
pub enum IntrospectReport {
    /// Text exposition of every registry the server can reach.
    Metrics {
        /// The rendered metrics.
        text: String,
    },
    /// The retained slow-query entries, oldest first.
    SlowQueries {
        /// Promoted traces with their span trees.
        entries: Vec<WireSlowQuery>,
    },
    /// The backend's flight-recorder window.
    FlightRecorder {
        /// The rendered events.
        text: String,
    },
}

/// One protocol message. Requests carry a client-chosen `id` that the
/// matching reply echoes; [`Message::Delta`] is server-initiated (no id).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Execute one RkNNT query.
    Query {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
        /// The query to execute.
        query: RknntQuery,
        /// Optional trace id for end-to-end request tracing. `None`
        /// encodes to the original (pre-tracing) wire bytes, so old
        /// clients and servers interoperate unchanged.
        trace: Option<u64>,
    },
    /// Register a standing query; deltas stream back as the store churns.
    Subscribe {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
        /// The standing query.
        query: RknntQuery,
    },
    /// Drop a standing query previously registered on this connection.
    Unsubscribe {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
        /// The subscription handle from [`Message::SubscribeOk`].
        subscription: u64,
    },
    /// Apply store updates through the service's normal update path.
    ApplyUpdates {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
        /// Updates, applied in order.
        updates: Vec<StoreUpdate>,
        /// Optional trace id (same backwards-compatible encoding rule as
        /// [`Message::Query`]).
        trace: Option<u64>,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
    },
    /// Fetch server-side observability state. Answered directly from the
    /// connection's reader thread — never queued, never shed — so it works
    /// even while the executor is saturated.
    Introspect {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
        /// What to fetch.
        what: IntrospectWhat,
    },
    /// Health / resync probe: asks the backend for its store generation and
    /// applied-update watermark. Routed through the executor queue (unlike
    /// [`Message::Introspect`]) — a probe that comes back proves the whole
    /// request path is live, which is exactly what a half-open circuit
    /// breaker needs to know.
    Health {
        /// Client-chosen request id, echoed by the reply.
        id: u64,
    },
    /// Successful [`Message::Query`] reply.
    QueryOk {
        /// Echoed request id.
        id: u64,
        /// Qualifying transition ids, sorted ascending — byte-identical to
        /// in-process execution.
        transitions: Vec<TransitionId>,
    },
    /// Successful [`Message::Subscribe`] reply.
    SubscribeOk {
        /// Echoed request id.
        id: u64,
        /// Handle for [`Message::Unsubscribe`] and delta correlation.
        subscription: u64,
        /// The subscription's initial result.
        transitions: Vec<TransitionId>,
    },
    /// Successful [`Message::Unsubscribe`] reply.
    UnsubscribeOk {
        /// Echoed request id.
        id: u64,
        /// Whether the handle named a live subscription of this connection.
        existed: bool,
    },
    /// Successful [`Message::ApplyUpdates`] reply.
    UpdatesOk {
        /// Echoed request id.
        id: u64,
        /// Updates applied to the stores.
        applied: u64,
        /// Updates rejected at the store boundary.
        rejected: u64,
    },
    /// [`Message::Ping`] reply.
    Pong {
        /// Echoed request id.
        id: u64,
    },
    /// Successful [`Message::Introspect`] reply.
    IntrospectOk {
        /// Echoed request id.
        id: u64,
        /// The requested observability state.
        report: IntrospectReport,
    },
    /// Successful [`Message::Health`] reply.
    HealthOk {
        /// Echoed request id.
        id: u64,
        /// The backend's store generation (bumps on every applied change).
        generation: u64,
        /// Applied-update watermark: how many update records this backend
        /// has ever received, durable across restarts when storage is
        /// attached (`StorageStats::next_seq − 1` — one WAL frame per
        /// record). A router replays its per-shard update log from exactly
        /// this index to resync a recovered shard.
        watermark: u64,
    },
    /// Admission control refused the request — fast-failed, never queued.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// The admission state that triggered the shed.
        info: OverloadInfo,
    },
    /// Protocol-level failure (malformed message, unexpected kind). `id` is
    /// 0 when the request id could not be recovered.
    Error {
        /// Echoed request id, or 0.
        id: u64,
        /// Human-readable description.
        message: String,
    },
    /// Server-initiated push: a subscription's result changed.
    Delta {
        /// The subscription handle from [`Message::SubscribeOk`].
        subscription: u64,
        /// Transitions that entered the result, sorted ascending.
        entered: Vec<TransitionId>,
        /// Transitions that left the result, sorted ascending.
        left: Vec<TransitionId>,
        /// Why the result changed.
        reason: DeltaReason,
    },
}

const TAG_QUERY: u8 = 0x01;
const TAG_SUBSCRIBE: u8 = 0x02;
const TAG_UNSUBSCRIBE: u8 = 0x03;
const TAG_APPLY_UPDATES: u8 = 0x04;
const TAG_PING: u8 = 0x05;
const TAG_INTROSPECT: u8 = 0x06;
// Traced twins of Query / ApplyUpdates. Untraced messages keep the original
// tags and byte layout, so pre-tracing peers interoperate unchanged; the
// trace id only ever appears under a tag an old decoder would reject
// outright rather than misparse.
const TAG_QUERY_TRACED: u8 = 0x07;
const TAG_APPLY_UPDATES_TRACED: u8 = 0x08;
const TAG_HEALTH: u8 = 0x09;
const TAG_QUERY_OK: u8 = 0x81;
const TAG_SUBSCRIBE_OK: u8 = 0x82;
const TAG_UNSUBSCRIBE_OK: u8 = 0x83;
const TAG_UPDATES_OK: u8 = 0x84;
const TAG_PONG: u8 = 0x85;
const TAG_INTROSPECT_OK: u8 = 0x86;
const TAG_HEALTH_OK: u8 = 0x87;
const TAG_OVERLOADED: u8 = 0x90;
const TAG_ERROR: u8 = 0x91;
const TAG_DELTA: u8 = 0xA0;

fn encode_query(enc: &mut Encoder, query: &RknntQuery) {
    enc.u8(match query.semantics {
        Semantics::Exists => 0,
        Semantics::ForAll => 1,
    });
    enc.len_prefix(query.k);
    enc.points(&query.route);
}

fn decode_query(dec: &mut Decoder<'_>) -> CodecResult<RknntQuery> {
    let semantics = match dec.u8()? {
        0 => Semantics::Exists,
        1 => Semantics::ForAll,
        other => {
            return Err(CodecError {
                offset: dec.position().saturating_sub(1),
                detail: format!("bad semantics byte {other}"),
            })
        }
    };
    let k = dec.usize()?;
    let route = dec.points()?;
    Ok(RknntQuery {
        route,
        k,
        semantics,
    })
}

fn encode_transitions(enc: &mut Encoder, transitions: &[TransitionId]) {
    enc.len_prefix(transitions.len());
    for t in transitions {
        enc.u32(t.raw());
    }
}

fn decode_transitions(dec: &mut Decoder<'_>) -> CodecResult<Vec<TransitionId>> {
    let len = dec.len_prefix(4)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(TransitionId::from(dec.u32()?));
    }
    Ok(out)
}

impl Message {
    /// The request id this message carries (0 for [`Message::Delta`]).
    pub fn request_id(&self) -> u64 {
        match *self {
            Message::Query { id, .. }
            | Message::Subscribe { id, .. }
            | Message::Unsubscribe { id, .. }
            | Message::ApplyUpdates { id, .. }
            | Message::Ping { id }
            | Message::Introspect { id, .. }
            | Message::Health { id }
            | Message::QueryOk { id, .. }
            | Message::SubscribeOk { id, .. }
            | Message::UnsubscribeOk { id, .. }
            | Message::UpdatesOk { id, .. }
            | Message::Pong { id }
            | Message::IntrospectOk { id, .. }
            | Message::HealthOk { id, .. }
            | Message::Overloaded { id, .. }
            | Message::Error { id, .. } => id,
            Message::Delta { .. } => 0,
        }
    }

    /// Whether this is a client→server request kind.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::Query { .. }
                | Message::Subscribe { .. }
                | Message::Unsubscribe { .. }
                | Message::ApplyUpdates { .. }
                | Message::Ping { .. }
                | Message::Introspect { .. }
                | Message::Health { .. }
        )
    }

    /// Encodes the message to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Message::Query { id, query, trace } => {
                // An untraced query encodes byte-for-byte like the
                // pre-tracing protocol; the trace id rides a new tag.
                match trace {
                    None => enc.u8(TAG_QUERY),
                    Some(t) => {
                        enc.u8(TAG_QUERY_TRACED);
                        enc.u64(*t);
                    }
                }
                enc.u64(*id);
                encode_query(&mut enc, query);
            }
            Message::Subscribe { id, query } => {
                enc.u8(TAG_SUBSCRIBE);
                enc.u64(*id);
                encode_query(&mut enc, query);
            }
            Message::Unsubscribe { id, subscription } => {
                enc.u8(TAG_UNSUBSCRIBE);
                enc.u64(*id);
                enc.u64(*subscription);
            }
            Message::ApplyUpdates { id, updates, trace } => {
                match trace {
                    None => enc.u8(TAG_APPLY_UPDATES),
                    Some(t) => {
                        enc.u8(TAG_APPLY_UPDATES_TRACED);
                        enc.u64(*t);
                    }
                }
                enc.u64(*id);
                enc.len_prefix(updates.len());
                for update in updates {
                    enc.bytes(&update.to_wal_record());
                }
            }
            Message::Ping { id } => {
                enc.u8(TAG_PING);
                enc.u64(*id);
            }
            Message::Introspect { id, what } => {
                enc.u8(TAG_INTROSPECT);
                enc.u64(*id);
                enc.u8(match what {
                    IntrospectWhat::Metrics => 0,
                    IntrospectWhat::SlowQueries => 1,
                    IntrospectWhat::FlightRecorder => 2,
                });
            }
            Message::Health { id } => {
                enc.u8(TAG_HEALTH);
                enc.u64(*id);
            }
            Message::QueryOk { id, transitions } => {
                enc.u8(TAG_QUERY_OK);
                enc.u64(*id);
                encode_transitions(&mut enc, transitions);
            }
            Message::SubscribeOk {
                id,
                subscription,
                transitions,
            } => {
                enc.u8(TAG_SUBSCRIBE_OK);
                enc.u64(*id);
                enc.u64(*subscription);
                encode_transitions(&mut enc, transitions);
            }
            Message::UnsubscribeOk { id, existed } => {
                enc.u8(TAG_UNSUBSCRIBE_OK);
                enc.u64(*id);
                enc.bool(*existed);
            }
            Message::UpdatesOk {
                id,
                applied,
                rejected,
            } => {
                enc.u8(TAG_UPDATES_OK);
                enc.u64(*id);
                enc.u64(*applied);
                enc.u64(*rejected);
            }
            Message::Pong { id } => {
                enc.u8(TAG_PONG);
                enc.u64(*id);
            }
            Message::IntrospectOk { id, report } => {
                enc.u8(TAG_INTROSPECT_OK);
                enc.u64(*id);
                match report {
                    IntrospectReport::Metrics { text } => {
                        enc.u8(0);
                        enc.str(text);
                    }
                    IntrospectReport::SlowQueries { entries } => {
                        enc.u8(1);
                        enc.len_prefix(entries.len());
                        for entry in entries {
                            enc.u64(entry.trace_id);
                            enc.u64(entry.root_dur_ns);
                            enc.u32(entry.dropped);
                            enc.len_prefix(entry.spans.len());
                            for span in &entry.spans {
                                enc.str(&span.name);
                                enc.u64(span.start_ns);
                                enc.u64(span.dur_ns);
                                enc.u32(span.parent);
                                enc.len_prefix(span.attrs.len());
                                for (name, value) in &span.attrs {
                                    enc.str(name);
                                    enc.u64(*value);
                                }
                            }
                            enc.str(&entry.events);
                        }
                    }
                    IntrospectReport::FlightRecorder { text } => {
                        enc.u8(2);
                        enc.str(text);
                    }
                }
            }
            Message::HealthOk {
                id,
                generation,
                watermark,
            } => {
                enc.u8(TAG_HEALTH_OK);
                enc.u64(*id);
                enc.u64(*generation);
                enc.u64(*watermark);
            }
            Message::Overloaded { id, info } => {
                enc.u8(TAG_OVERLOADED);
                enc.u64(*id);
                enc.u64(info.queue_depth);
                enc.u64(info.queue_cost);
                enc.u64(info.estimated_cost);
                enc.u64(info.cost_budget);
            }
            Message::Error { id, message } => {
                enc.u8(TAG_ERROR);
                enc.u64(*id);
                enc.str(message);
            }
            Message::Delta {
                subscription,
                entered,
                left,
                reason,
            } => {
                enc.u8(TAG_DELTA);
                enc.u64(*subscription);
                encode_transitions(&mut enc, entered);
                encode_transitions(&mut enc, left);
                enc.u8(match reason {
                    DeltaReason::TransitionExpired => 0,
                    DeltaReason::Reexecuted => 1,
                });
            }
        }
        enc.into_bytes()
    }

    /// Decodes a frame payload, rejecting unknown tags and trailing bytes.
    pub fn decode(payload: &[u8]) -> CodecResult<Message> {
        let mut dec = Decoder::new(payload);
        let tag = dec.u8()?;
        let msg = match tag {
            TAG_QUERY => Message::Query {
                id: dec.u64()?,
                query: decode_query(&mut dec)?,
                trace: None,
            },
            TAG_QUERY_TRACED => {
                let trace = Some(dec.u64()?);
                Message::Query {
                    id: dec.u64()?,
                    query: decode_query(&mut dec)?,
                    trace,
                }
            }
            TAG_SUBSCRIBE => Message::Subscribe {
                id: dec.u64()?,
                query: decode_query(&mut dec)?,
            },
            TAG_UNSUBSCRIBE => Message::Unsubscribe {
                id: dec.u64()?,
                subscription: dec.u64()?,
            },
            TAG_APPLY_UPDATES | TAG_APPLY_UPDATES_TRACED => {
                let trace = if tag == TAG_APPLY_UPDATES_TRACED {
                    Some(dec.u64()?)
                } else {
                    None
                };
                let id = dec.u64()?;
                let len = dec.len_prefix(8)?;
                let mut updates = Vec::with_capacity(len);
                for _ in 0..len {
                    updates.push(StoreUpdate::from_wal_record(dec.bytes()?)?);
                }
                Message::ApplyUpdates { id, updates, trace }
            }
            TAG_PING => Message::Ping { id: dec.u64()? },
            TAG_INTROSPECT => Message::Introspect {
                id: dec.u64()?,
                what: match dec.u8()? {
                    0 => IntrospectWhat::Metrics,
                    1 => IntrospectWhat::SlowQueries,
                    2 => IntrospectWhat::FlightRecorder,
                    other => {
                        return Err(CodecError {
                            offset: dec.position().saturating_sub(1),
                            detail: format!("bad introspect kind byte {other}"),
                        })
                    }
                },
            },
            TAG_HEALTH => Message::Health { id: dec.u64()? },
            TAG_QUERY_OK => Message::QueryOk {
                id: dec.u64()?,
                transitions: decode_transitions(&mut dec)?,
            },
            TAG_SUBSCRIBE_OK => Message::SubscribeOk {
                id: dec.u64()?,
                subscription: dec.u64()?,
                transitions: decode_transitions(&mut dec)?,
            },
            TAG_UNSUBSCRIBE_OK => Message::UnsubscribeOk {
                id: dec.u64()?,
                existed: dec.bool()?,
            },
            TAG_UPDATES_OK => Message::UpdatesOk {
                id: dec.u64()?,
                applied: dec.u64()?,
                rejected: dec.u64()?,
            },
            TAG_PONG => Message::Pong { id: dec.u64()? },
            TAG_INTROSPECT_OK => {
                let id = dec.u64()?;
                let report = match dec.u8()? {
                    0 => IntrospectReport::Metrics { text: dec.str()? },
                    1 => {
                        let len = dec.len_prefix(21)?;
                        let mut entries = Vec::with_capacity(len);
                        for _ in 0..len {
                            let trace_id = dec.u64()?;
                            let root_dur_ns = dec.u64()?;
                            let dropped = dec.u32()?;
                            let span_count = dec.len_prefix(25)?;
                            let mut spans = Vec::with_capacity(span_count);
                            for _ in 0..span_count {
                                let name = dec.str()?;
                                let start_ns = dec.u64()?;
                                let dur_ns = dec.u64()?;
                                let parent = dec.u32()?;
                                let attr_count = dec.len_prefix(12)?;
                                let mut attrs = Vec::with_capacity(attr_count);
                                for _ in 0..attr_count {
                                    let attr_name = dec.str()?;
                                    attrs.push((attr_name, dec.u64()?));
                                }
                                spans.push(WireSpan {
                                    name,
                                    start_ns,
                                    dur_ns,
                                    parent,
                                    attrs,
                                });
                            }
                            entries.push(WireSlowQuery {
                                trace_id,
                                root_dur_ns,
                                dropped,
                                spans,
                                events: dec.str()?,
                            });
                        }
                        IntrospectReport::SlowQueries { entries }
                    }
                    2 => IntrospectReport::FlightRecorder { text: dec.str()? },
                    other => {
                        return Err(CodecError {
                            offset: dec.position().saturating_sub(1),
                            detail: format!("bad introspect report byte {other}"),
                        })
                    }
                };
                Message::IntrospectOk { id, report }
            }
            TAG_HEALTH_OK => Message::HealthOk {
                id: dec.u64()?,
                generation: dec.u64()?,
                watermark: dec.u64()?,
            },
            TAG_OVERLOADED => Message::Overloaded {
                id: dec.u64()?,
                info: OverloadInfo {
                    queue_depth: dec.u64()?,
                    queue_cost: dec.u64()?,
                    estimated_cost: dec.u64()?,
                    cost_budget: dec.u64()?,
                },
            },
            TAG_ERROR => Message::Error {
                id: dec.u64()?,
                message: dec.str()?,
            },
            TAG_DELTA => Message::Delta {
                subscription: dec.u64()?,
                entered: decode_transitions(&mut dec)?,
                left: decode_transitions(&mut dec)?,
                reason: match dec.u8()? {
                    0 => DeltaReason::TransitionExpired,
                    1 => DeltaReason::Reexecuted,
                    other => {
                        return Err(CodecError {
                            offset: dec.position().saturating_sub(1),
                            detail: format!("bad delta reason byte {other}"),
                        })
                    }
                },
            },
            other => {
                return Err(CodecError {
                    offset: 0,
                    detail: format!("unknown message tag 0x{other:02X}"),
                })
            }
        };
        dec.expect_exhausted()?;
        Ok(msg)
    }
}

/// The admission-control cost estimate for a request.
///
/// Queries and subscriptions cost `route_points × k` — the same two
/// quantities the batch layer's grouping and filter-sharing work scales
/// with, so summed queue cost tracks queued execution work rather than
/// request count. Control messages (unsubscribe, updates, ping) cost 1:
/// they are store-bound, not query-engine-bound.
pub fn estimate_cost(msg: &Message) -> u64 {
    match msg {
        Message::Query { query, .. } | Message::Subscribe { query, .. } => {
            (query.route.len().max(1) as u64) * (query.k.max(1) as u64)
        }
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn sample_messages() -> Vec<Message> {
        let query = RknntQuery {
            route: vec![Point::new(1.5, -2.5), Point::new(3.0, 4.0)],
            k: 3,
            semantics: Semantics::ForAll,
        };
        vec![
            Message::Query {
                id: 7,
                query: query.clone(),
                trace: None,
            },
            Message::Query {
                id: 13,
                query: query.clone(),
                trace: Some(0xDEAD_BEEF),
            },
            Message::Subscribe { id: 8, query },
            Message::Unsubscribe {
                id: 9,
                subscription: 42,
            },
            Message::ApplyUpdates {
                id: 10,
                updates: vec![
                    StoreUpdate::InsertTransition {
                        origin: Point::new(0.0, 1.0),
                        destination: Point::new(2.0, 3.0),
                    },
                    StoreUpdate::ExpireTransition(TransitionId::from(5)),
                ],
                trace: None,
            },
            Message::ApplyUpdates {
                id: 14,
                updates: vec![StoreUpdate::ExpireTransition(TransitionId::from(6))],
                trace: Some(0xDEAD_BEEF),
            },
            Message::Ping { id: 11 },
            Message::Introspect {
                id: 15,
                what: IntrospectWhat::Metrics,
            },
            Message::Introspect {
                id: 16,
                what: IntrospectWhat::SlowQueries,
            },
            Message::Introspect {
                id: 17,
                what: IntrospectWhat::FlightRecorder,
            },
            Message::Health { id: 18 },
            Message::QueryOk {
                id: 7,
                transitions: vec![TransitionId::from(1), TransitionId::from(9)],
            },
            Message::SubscribeOk {
                id: 8,
                subscription: 42,
                transitions: vec![TransitionId::from(2)],
            },
            Message::UnsubscribeOk {
                id: 9,
                existed: true,
            },
            Message::UpdatesOk {
                id: 10,
                applied: 2,
                rejected: 0,
            },
            Message::Pong { id: 11 },
            Message::IntrospectOk {
                id: 15,
                report: IntrospectReport::Metrics {
                    text: "counter=net.admitted value=3\n".into(),
                },
            },
            Message::IntrospectOk {
                id: 16,
                report: IntrospectReport::SlowQueries {
                    entries: vec![WireSlowQuery {
                        trace_id: 0xDEAD_BEEF,
                        root_dur_ns: 1_234_567,
                        dropped: 2,
                        spans: vec![
                            WireSpan {
                                name: "request".into(),
                                start_ns: 0,
                                dur_ns: 1_234_567,
                                parent: u32::MAX,
                                attrs: vec![],
                            },
                            WireSpan {
                                name: "shard".into(),
                                start_ns: 100,
                                dur_ns: 900,
                                parent: 0,
                                attrs: vec![("shard".into(), 3), ("pruned".into(), 1)],
                            },
                        ],
                        events: "#0 t=1ns event=checkpoint_begin\n".into(),
                    }],
                },
            },
            Message::IntrospectOk {
                id: 17,
                report: IntrospectReport::FlightRecorder {
                    text: "flight recorder: showing last 0 of 0 event(s)\n".into(),
                },
            },
            Message::HealthOk {
                id: 18,
                generation: 4,
                watermark: 37,
            },
            Message::Overloaded {
                id: 12,
                info: OverloadInfo {
                    queue_depth: 3,
                    queue_cost: 17,
                    estimated_cost: 6,
                    cost_budget: 20,
                },
            },
            Message::Error {
                id: 0,
                message: "malformed frame".into(),
            },
            Message::Delta {
                subscription: 42,
                entered: vec![TransitionId::from(4)],
                left: vec![],
                reason: DeltaReason::Reexecuted,
            },
        ]
    }

    #[test]
    fn messages_roundtrip() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            let back = Message::decode(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        for msg in sample_messages() {
            write_frame(&mut wire, &msg.encode()).unwrap();
        }
        let mut reader = wire.as_slice();
        let mut buf = Vec::new();
        let mut decoded = Vec::new();
        while read_frame(&mut reader, &mut buf).unwrap().is_some() {
            decoded.push(Message::decode(&buf).unwrap());
        }
        assert_eq!(decoded, sample_messages());
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Message::Ping { id: 1 }.encode()).unwrap();
        for cut in 1..wire.len() {
            let mut reader = &wire[..cut];
            let mut buf = Vec::new();
            let err = read_frame(&mut reader, &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_frame_fails_checksum() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Message::Ping { id: 1 }.encode()).unwrap();
        for byte in 0..wire.len() {
            let mut bad = wire.clone();
            bad[byte] ^= 0x40;
            let mut reader = bad.as_slice();
            let mut buf = Vec::new();
            // Every single-bit-ish corruption must fail — either the checksum
            // or (if the length field grew) an EOF mid-payload.
            assert!(
                read_frame(&mut reader, &mut buf).is_err(),
                "corruption at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn hostile_frame_length_is_capped_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = wire.as_slice();
        let mut buf = Vec::new();
        let err = read_frame(&mut reader, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_rejected() {
        assert!(Message::decode(&[0x7F]).is_err());
        let mut bytes = Message::Ping { id: 3 }.encode();
        bytes.push(0);
        let err = Message::decode(&bytes).unwrap_err();
        assert!(err.detail.contains("trailing"));
    }

    /// The wire-compatibility contract: an untraced Query / ApplyUpdates
    /// encodes byte-for-byte under the original tags, so a pre-tracing
    /// decoder still accepts it — the trace id only ever travels under the
    /// new tags.
    #[test]
    fn untraced_messages_keep_the_original_wire_tags() {
        let query = RknntQuery {
            route: vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
            k: 2,
            semantics: Semantics::Exists,
        };
        let untraced = Message::Query {
            id: 1,
            query: query.clone(),
            trace: None,
        }
        .encode();
        assert_eq!(untraced[0], TAG_QUERY);
        let traced = Message::Query {
            id: 1,
            query: query.clone(),
            trace: Some(99),
        }
        .encode();
        assert_eq!(traced[0], TAG_QUERY_TRACED);
        // Dropping the tag and the 8 trace-id bytes recovers exactly the
        // untraced encoding's body.
        assert_eq!(&traced[9..], &untraced[1..]);

        let updates = vec![StoreUpdate::ExpireTransition(TransitionId::from(1))];
        let untraced = Message::ApplyUpdates {
            id: 2,
            updates: updates.clone(),
            trace: None,
        }
        .encode();
        assert_eq!(untraced[0], TAG_APPLY_UPDATES);
        let traced = Message::ApplyUpdates {
            id: 2,
            updates,
            trace: Some(7),
        }
        .encode();
        assert_eq!(traced[0], TAG_APPLY_UPDATES_TRACED);
        assert_eq!(&traced[9..], &untraced[1..]);
    }

    #[test]
    fn bad_introspect_bytes_are_rejected() {
        let mut enc = Encoder::new();
        enc.u8(TAG_INTROSPECT);
        enc.u64(1);
        enc.u8(9);
        assert!(Message::decode(&enc.into_bytes())
            .unwrap_err()
            .detail
            .contains("introspect kind"));
    }

    #[test]
    fn cost_estimate_scales_with_route_and_k() {
        let small = Message::Query {
            id: 1,
            query: RknntQuery {
                route: vec![Point::new(0.0, 0.0); 2],
                k: 1,
                semantics: Semantics::Exists,
            },
            trace: None,
        };
        let big = Message::Query {
            id: 2,
            query: RknntQuery {
                route: vec![Point::new(0.0, 0.0); 10],
                k: 8,
                semantics: Semantics::Exists,
            },
            trace: None,
        };
        assert_eq!(estimate_cost(&small), 2);
        assert_eq!(estimate_cost(&big), 80);
        assert_eq!(estimate_cost(&Message::Ping { id: 3 }), 1);
    }
}
