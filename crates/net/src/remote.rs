//! A health-tracked connection to one remote shard: per-request deadlines,
//! bounded retry with seeded exponential backoff, and a clock-pluggable
//! circuit breaker.
//!
//! [`RemoteShard`] wraps a [`Client`] with the three defences a router
//! needs before it may trust a shard over the wire:
//!
//! * **Deadlines** — every blocking read carries
//!   [`RemoteShardConfig::deadline`], so a stalled shard surfaces as a
//!   typed timeout, never a hang.
//! * **Bounded retry** — transport failures (timeout, disconnect, torn or
//!   corrupt frames) are retried on a *fresh* connection up to
//!   [`RetryPolicy::max_attempts`] times, sleeping an exponentially growing,
//!   seeded-jittered backoff between attempts. The sleep goes through a
//!   [`Sleeper`], so tests record the schedule instead of waiting it out.
//! * **Circuit breaker** — consecutive failures past a threshold open the
//!   breaker: calls fail fast (no dial, no deadline burned) until a cooldown
//!   on a pluggable [`rknnt_obs::Clock`] elapses, after which exactly one
//!   probe request is admitted (half-open). A probe answer closes the
//!   breaker; a probe failure re-opens it for another cooldown.
//!
//! Exhausting the budget yields a typed [`RemoteError::Unavailable`] — the
//! router's cue to degrade the answer, never to hang or guess.

use crate::client::{Client, ClientConfig, ClientError};
use rknnt_fault::splitmix64;
use rknnt_obs::{Clock, MonotonicClock};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How retry pauses happen. Production sleeps the thread; tests record the
/// requested schedule and return immediately, so backoff logic is verified
/// without wall-clock time.
pub trait Sleeper: Send + Sync {
    /// Pauses the caller for `duration` (or pretends to).
    fn sleep(&self, duration: Duration);
}

/// The production [`Sleeper`]: actually sleeps the thread.
#[derive(Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A [`Sleeper`] that records every requested pause and never sleeps.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    slept: Mutex<Vec<Duration>>,
}

impl RecordingSleeper {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every pause requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        self.slept.lock().expect("sleeper poisoned").clone()
    }
}

impl Sleeper for RecordingSleeper {
    fn sleep(&self, duration: Duration) {
        self.slept.lock().expect("sleeper poisoned").push(duration);
    }
}

/// Bounded-retry schedule: exponential backoff with seeded jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, the first included (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `retry` (0-based): `base × 2^retry`
    /// capped at `max`, then jittered into `[half, full]` by the seeded
    /// stream — deterministic per seed, desynchronised across shards.
    pub fn backoff(&self, retry: u32, rng: &mut u64) -> Duration {
        let base = self.base_backoff.as_nanos() as u64;
        let exp = if retry >= 32 {
            u64::MAX
        } else {
            base.saturating_mul(1u64 << retry)
        };
        let capped = exp.min(self.max_backoff.as_nanos() as u64).max(1);
        let half = capped / 2;
        let jittered = half + splitmix64(rng) % (capped - half + 1);
        Duration::from_nanos(jittered)
    }
}

/// Public view of the breaker's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe call is admitted.
    HalfOpen,
}

enum Breaker {
    Closed { failures: u32 },
    Open { since: u64 },
    HalfOpen,
}

/// A per-shard circuit breaker over a pluggable [`Clock`], so tests drive
/// the open→half-open transition with [`rknnt_obs::MockClock::advance`]
/// instead of sleeping.
pub struct CircuitBreaker {
    state: Breaker,
    failure_threshold: u32,
    open_for_nanos: u64,
    clock: Arc<dyn Clock>,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `failure_threshold` consecutive
    /// failures and cooling down for `open_for` on `clock`.
    pub fn new(failure_threshold: u32, open_for: Duration, clock: Arc<dyn Clock>) -> Self {
        CircuitBreaker {
            state: Breaker::Closed { failures: 0 },
            failure_threshold: failure_threshold.max(1),
            open_for_nanos: u64::try_from(open_for.as_nanos()).unwrap_or(u64::MAX),
            clock,
        }
    }

    /// The current state, after applying any due open→half-open transition.
    pub fn state(&mut self) -> BreakerState {
        if let Breaker::Open { since } = self.state {
            if self.clock.now_nanos().saturating_sub(since) >= self.open_for_nanos {
                self.state = Breaker::HalfOpen;
            }
        }
        match self.state {
            Breaker::Closed { .. } => BreakerState::Closed,
            Breaker::Open { .. } => BreakerState::Open,
            Breaker::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Whether a call may proceed right now. Closed and half-open admit
    /// (half-open admits the probe); open fails fast.
    pub fn admits(&mut self) -> bool {
        self.state() != BreakerState::Open
    }

    /// Records a successful call: the breaker closes and the failure count
    /// resets (a half-open probe that answers heals the shard).
    pub fn on_success(&mut self) {
        self.state = Breaker::Closed { failures: 0 };
    }

    /// Records a failed call. In closed state, trips to open once the
    /// consecutive-failure threshold is reached; a failed half-open probe
    /// re-opens immediately for another full cooldown.
    pub fn on_failure(&mut self) {
        match &mut self.state {
            Breaker::Closed { failures } => {
                *failures += 1;
                if *failures >= self.failure_threshold {
                    self.state = Breaker::Open {
                        since: self.clock.now_nanos(),
                    };
                }
            }
            Breaker::HalfOpen => {
                self.state = Breaker::Open {
                    since: self.clock.now_nanos(),
                };
            }
            Breaker::Open { .. } => {}
        }
    }
}

/// A failed remote call, after the full defence budget.
#[derive(Debug)]
pub enum RemoteError {
    /// The shard is unreachable: the breaker failed the call fast
    /// (`attempts == 0`) or every attempt in the retry budget failed.
    /// The router's cue to degrade — a [`crate::FleetResult`] will name
    /// this shard as missing.
    Unavailable {
        /// Attempts actually made (0 when the breaker was open).
        attempts: u32,
        /// The last transport error, for diagnostics.
        last_error: String,
    },
    /// The shard answered with an application-level error: it is alive, and
    /// retrying would not change the answer.
    Server {
        /// The shard's description of the failure.
        message: String,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Unavailable {
                attempts,
                last_error,
            } => write!(
                f,
                "shard unavailable after {attempts} attempt(s): {last_error}"
            ),
            RemoteError::Server { message } => write!(f, "shard error: {message}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Knobs for one [`RemoteShard`].
#[derive(Debug, Clone)]
pub struct RemoteShardConfig {
    /// Per-request read deadline on the underlying [`Client`].
    pub deadline: Duration,
    /// Retry schedule for transport failures.
    pub retry: RetryPolicy,
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Breaker cooldown before a half-open probe is admitted.
    pub open_for: Duration,
    /// Seed for backoff jitter (deterministic per seed).
    pub seed: u64,
}

impl Default for RemoteShardConfig {
    fn default() -> Self {
        RemoteShardConfig {
            deadline: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            failure_threshold: 3,
            open_for: Duration::from_millis(50),
            seed: 0x5AFE_C0DE,
        }
    }
}

/// Counters for one shard's dispatch history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteShardStats {
    /// Calls attempted (breaker-denied calls excluded).
    pub dispatches: u64,
    /// Retry attempts beyond each call's first.
    pub retries: u64,
    /// Calls that exhausted the retry budget.
    pub failures: u64,
    /// Calls failed fast by an open breaker.
    pub breaker_denials: u64,
    /// Successful dials. When this moves, the previous connection — and
    /// every per-connection resource on it, like server-side subscriptions
    /// — is gone; the router uses it to detect stale subscription handles.
    pub dials: u64,
}

enum AttemptError {
    /// Transport-level: retry on a fresh connection.
    Retryable(String),
    /// The shard answered an error: alive, not retryable.
    Fatal(String),
}

/// The router's handle to one shard server over the wire.
pub struct RemoteShard {
    addr: SocketAddr,
    config: RemoteShardConfig,
    client: Option<Client>,
    breaker: CircuitBreaker,
    sleeper: Arc<dyn Sleeper>,
    rng: u64,
    stats: RemoteShardStats,
}

impl RemoteShard {
    /// A handle dialling `addr`, on the production clock and sleeper.
    pub fn new(addr: SocketAddr, config: RemoteShardConfig) -> Self {
        Self::with_parts(
            addr,
            config,
            Arc::new(MonotonicClock::new()),
            Arc::new(ThreadSleeper),
        )
    }

    /// A handle with explicit clock (breaker cooldowns) and sleeper
    /// (backoff pauses) — the deterministic-test constructor.
    pub fn with_parts(
        addr: SocketAddr,
        config: RemoteShardConfig,
        clock: Arc<dyn Clock>,
        sleeper: Arc<dyn Sleeper>,
    ) -> Self {
        let breaker = CircuitBreaker::new(config.failure_threshold, config.open_for, clock);
        let rng = config.seed ^ 0xD15C_0DE5_u64.rotate_left(17);
        RemoteShard {
            addr,
            config,
            client: None,
            breaker,
            sleeper,
            rng,
            stats: RemoteShardStats::default(),
        }
    }

    /// The address this handle dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Points the handle at a restarted shard (ephemeral ports move) and
    /// drops any cached connection to the old incarnation.
    pub fn set_addr(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.client = None;
        // A new address is a new incarnation: the old incarnation's failure
        // history (and an open breaker) must not block the first probe.
        self.breaker.on_success();
    }

    /// The breaker's current state.
    pub fn breaker_state(&mut self) -> BreakerState {
        self.breaker.state()
    }

    /// Dispatch counters so far.
    pub fn stats(&self) -> RemoteShardStats {
        self.stats
    }

    /// Drops the cached connection, forcing the next call to re-dial.
    pub fn disconnect(&mut self) {
        self.client = None;
    }

    fn attempt<T>(
        &mut self,
        op: &mut dyn FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, AttemptError> {
        if self.client.is_none() {
            let config = ClientConfig::default().with_read_timeout(self.config.deadline);
            match Client::connect_with(self.addr, config) {
                Ok(client) => {
                    self.client = Some(client);
                    self.stats.dials += 1;
                }
                Err(e) => return Err(AttemptError::Retryable(format!("connect: {e}"))),
            }
        }
        let client = self.client.as_mut().expect("just connected");
        match op(client) {
            Ok(v) => Ok(v),
            Err(ClientError::Server { message, .. }) => Err(AttemptError::Fatal(message)),
            Err(e) => {
                // Transport or protocol damage: this connection's framing
                // can no longer be trusted; retries dial fresh.
                self.client = None;
                Err(AttemptError::Retryable(e.to_string()))
            }
        }
    }

    /// Runs `op` against the shard under the full defence stack: breaker
    /// fast-fail, per-read deadline, bounded retry with seeded backoff on a
    /// fresh connection per attempt.
    pub fn call<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, RemoteError> {
        if !self.breaker.admits() {
            self.stats.breaker_denials += 1;
            return Err(RemoteError::Unavailable {
                attempts: 0,
                last_error: "circuit breaker open".into(),
            });
        }
        self.stats.dispatches += 1;
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 0..max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                let pause = self.config.retry.backoff(attempt - 1, &mut self.rng);
                self.sleeper.sleep(pause);
            }
            match self.attempt(&mut op) {
                Ok(v) => {
                    self.breaker.on_success();
                    return Ok(v);
                }
                Err(AttemptError::Fatal(message)) => {
                    // The shard answered: it is alive. The breaker heals,
                    // the call still fails.
                    self.breaker.on_success();
                    return Err(RemoteError::Server { message });
                }
                Err(AttemptError::Retryable(e)) => {
                    self.breaker.on_failure();
                    last_error = e;
                    // A freshly opened breaker ends the budget early: the
                    // shard is gone, further attempts only burn deadlines.
                    if !self.breaker.admits() && attempt + 1 < max_attempts {
                        self.stats.failures += 1;
                        return Err(RemoteError::Unavailable {
                            attempts: attempt + 1,
                            last_error,
                        });
                    }
                }
            }
        }
        self.stats.failures += 1;
        Err(RemoteError::Unavailable {
            attempts: max_attempts,
            last_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_obs::MockClock;

    #[test]
    fn backoff_grows_exponentially_within_bounds_and_is_seeded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(20),
        };
        let mut rng_a = 42u64;
        let mut rng_b = 42u64;
        let schedule_a: Vec<Duration> = (0..4).map(|r| policy.backoff(r, &mut rng_a)).collect();
        let schedule_b: Vec<Duration> = (0..4).map(|r| policy.backoff(r, &mut rng_b)).collect();
        assert_eq!(schedule_a, schedule_b, "same seed, same schedule");
        for (retry, pause) in schedule_a.iter().enumerate() {
            let full = Duration::from_millis((4u64 << retry).min(20));
            assert!(*pause <= full, "retry {retry}: {pause:?} > cap {full:?}");
            assert!(
                *pause >= full / 2,
                "retry {retry}: {pause:?} < half of {full:?}"
            );
        }
        let mut rng_c = 43u64;
        let schedule_c: Vec<Duration> = (0..4).map(|r| policy.backoff(r, &mut rng_c)).collect();
        assert_ne!(schedule_a, schedule_c, "different seeds desynchronise");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let clock = Arc::new(MockClock::new());
        let mut breaker = CircuitBreaker::new(2, Duration::from_nanos(100), clock.clone());
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Closed, "below threshold");
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open, "threshold trips");
        assert!(!breaker.admits(), "open fails fast");
        clock.advance(99);
        assert!(!breaker.admits(), "cooldown not yet elapsed");
        clock.advance(1);
        assert_eq!(breaker.state(), BreakerState::HalfOpen, "cooldown elapsed");
        assert!(breaker.admits(), "half-open admits the probe");
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed, "probe answer heals");
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let clock = Arc::new(MockClock::new());
        let mut breaker = CircuitBreaker::new(1, Duration::from_nanos(50), clock.clone());
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        clock.advance(50);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open, "failed probe re-opens");
        clock.advance(49);
        assert!(!breaker.admits(), "full cooldown restarts from the probe");
        clock.advance(1);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn closed_breaker_resets_failure_count_on_success() {
        let clock = Arc::new(MockClock::new());
        let mut breaker = CircuitBreaker::new(2, Duration::from_nanos(10), clock);
        breaker.on_failure();
        breaker.on_success();
        breaker.on_failure();
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "non-consecutive failures never trip"
        );
    }

    #[test]
    fn unreachable_shard_exhausts_retries_with_recorded_backoff() {
        // A bound-then-dropped listener yields a port nothing listens on.
        let addr = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap()
        };
        let sleeper = Arc::new(RecordingSleeper::new());
        let config = RemoteShardConfig {
            failure_threshold: 10, // keep the breaker out of this test
            ..RemoteShardConfig::default()
        };
        let mut shard = RemoteShard::with_parts(
            addr,
            config.clone(),
            Arc::new(MockClock::new()),
            sleeper.clone(),
        );
        let err = shard.call(|c| c.ping()).expect_err("nothing listens there");
        match err {
            RemoteError::Unavailable {
                attempts,
                last_error,
            } => {
                assert_eq!(attempts, config.retry.max_attempts);
                assert!(last_error.contains("connect"), "got: {last_error}");
            }
            other => panic!("wanted Unavailable, got {other:?}"),
        }
        let slept = sleeper.slept();
        assert_eq!(
            slept.len() as u32,
            config.retry.max_attempts - 1,
            "one backoff pause between consecutive attempts"
        );
        assert_eq!(shard.stats().failures, 1);
        assert_eq!(
            shard.stats().retries,
            u64::from(config.retry.max_attempts - 1)
        );
    }

    #[test]
    fn open_breaker_fails_fast_without_dialling() {
        let addr = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap()
        };
        let clock = Arc::new(MockClock::new());
        let config = RemoteShardConfig {
            failure_threshold: 1,
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            open_for: Duration::from_nanos(1_000),
            ..RemoteShardConfig::default()
        };
        let mut shard = RemoteShard::with_parts(
            addr,
            config,
            clock.clone(),
            Arc::new(RecordingSleeper::new()),
        );
        assert!(shard.call(|c| c.ping()).is_err());
        assert_eq!(shard.breaker_state(), BreakerState::Open);
        let err = shard
            .call(|c| c.ping())
            .expect_err("breaker must fast-fail");
        match err {
            RemoteError::Unavailable { attempts, .. } => assert_eq!(attempts, 0),
            other => panic!("wanted a fast-fail, got {other:?}"),
        }
        assert_eq!(shard.stats().breaker_denials, 1);
        clock.advance(1_000);
        assert_eq!(shard.breaker_state(), BreakerState::HalfOpen, "probe due");
    }
}
