//! Serving-edge invariants: answers over TCP are byte-identical to
//! in-process execution (for both backends), subscription deltas stream to
//! the owning connection, admission control sheds with a typed reply and
//! never silently drops a request, and hostile bytes on the wire get a
//! typed error instead of undefined behaviour.

use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionStore};
use rknnt_net::{
    Backend, Client, IntrospectReport, IntrospectWhat, Message, Reply, Server, ServerConfig,
    WireSlowQuery,
};
use rknnt_service::{
    EnginePolicy, QueryService, ServiceConfig, ShardedConfig, ShardedService, StorageConfig,
    StoreUpdate,
};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// A deterministic little city: a grid of horizontal routes with transition
/// endpoints scattered between them.
fn small_world() -> (Vec<Vec<Point>>, Vec<(Point, Point)>) {
    let mut routes = Vec::new();
    for row in 0..6 {
        let y = row as f64 * 120.0;
        routes.push(vec![
            p(0.0, y),
            p(400.0, y + 10.0),
            p(800.0, y),
            p(1200.0, y - 10.0),
        ]);
    }
    let mut pairs = Vec::new();
    for i in 0..80 {
        let x = (i % 10) as f64 * 120.0 + 15.0;
        let y = (i / 10) as f64 * 80.0 + 25.0;
        pairs.push((p(x, y), p(x + 60.0, y + 30.0)));
    }
    (routes, pairs)
}

fn stores(routes: &[Vec<Point>], pairs: &[(Point, Point)]) -> (RouteStore, TransitionStore) {
    let mut route_store = RouteStore::default();
    for route in routes {
        route_store.insert_route(route.clone());
    }
    let mut transition_store = TransitionStore::default();
    for (origin, destination) in pairs {
        transition_store.insert(*origin, *destination).unwrap();
    }
    (route_store, transition_store)
}

fn query_mix() -> Vec<RknntQuery> {
    let mut queries = Vec::new();
    for k in [1usize, 2, 4] {
        for (i, semantics) in [Semantics::Exists, Semantics::ForAll]
            .into_iter()
            .enumerate()
        {
            let y = 35.0 + (k * 7 + i) as f64 * 40.0;
            queries.push(RknntQuery {
                route: vec![p(10.0, y), p(500.0, y + 20.0), p(1100.0, y)],
                k,
                semantics,
            });
        }
    }
    queries
}

fn single_backend(config: ServiceConfig) -> Backend {
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    Backend::Single(QueryService::new(route_store, transition_store, config))
}

#[test]
fn answers_over_tcp_are_byte_identical_to_in_process() {
    let config = ServiceConfig::default()
        .with_workers(2)
        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    let twin = QueryService::new(route_store, transition_store, config);

    let server = Server::start(backend, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert_eq!(client.ping().unwrap(), Reply::Answered(()));
    for query in query_mix() {
        let over_wire = client
            .query(&query)
            .unwrap()
            .answered()
            .expect("default budget must admit a serial client");
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(
            over_wire, expected[0].transitions,
            "k={} {:?}",
            query.k, query.semantics
        );
    }
    assert_eq!(server.shed(), 0);
    assert!(server.admitted() >= query_mix().len() as u64);
    assert!(server.request_latency().count() >= query_mix().len() as u64);
    let metrics = server.metrics_text();
    assert!(metrics.contains("net.admitted"), "metrics text: {metrics}");
}

#[test]
fn sharded_backend_matches_unsharded_twin_over_tcp() {
    let (routes, pairs) = small_world();
    let base = ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine));
    let sharded = ShardedService::bulk_build(
        ShardedConfig::default().with_shards(4).with_base(base),
        routes.clone(),
        pairs.clone(),
    );
    let backend = Backend::Sharded(sharded);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let (route_store, transition_store) = stores(&routes, &pairs);
    let twin = QueryService::new(route_store, transition_store, base);

    let server = Server::start(backend, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for query in query_mix() {
        let over_wire = client.query(&query).unwrap().answered().unwrap();
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(over_wire, expected[0].transitions);
    }
}

#[test]
fn subscription_deltas_stream_to_the_owning_connection() {
    let config = ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    // Twin service receiving the same subscription and updates in the same
    // order, so ids and deltas line up exactly.
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    let mut twin = QueryService::new(route_store, transition_store, config);

    let server = Server::start(backend, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let standing = RknntQuery::exists(vec![p(0.0, 40.0), p(600.0, 40.0), p(1200.0, 40.0)], 2);
    let sub = client.subscribe(&standing).unwrap().answered().unwrap();
    let twin_sub = twin.subscribe(standing.clone());
    assert_eq!(
        Some(sub.transitions.as_slice()),
        twin.subscription_result(twin_sub),
        "initial subscription result must match the twin"
    );

    // Churn the store through the wire; the twin gets the same updates.
    let updates = vec![
        StoreUpdate::InsertTransition {
            origin: p(100.0, 45.0),
            destination: p(200.0, 50.0),
        },
        StoreUpdate::InsertTransition {
            origin: p(300.0, 42.0),
            destination: p(420.0, 38.0),
        },
    ];
    let counts = client
        .apply_updates(updates.clone())
        .unwrap()
        .answered()
        .unwrap();
    assert_eq!(counts.applied, 2);
    assert_eq!(counts.rejected, 0);
    let twin_stats = twin.apply_updates(updates);
    let mut expected_deltas = twin_stats.deltas;
    expected_deltas.retain(|d| d.subscription == twin_sub);

    // The server pushes the same deltas (frames arrive after the
    // UpdatesOk reply on this connection, in emission order).
    for expected in &expected_deltas {
        let event = client.recv_delta().unwrap();
        assert_eq!(event.subscription, sub.subscription);
        assert_eq!(event.entered, expected.entered);
        assert_eq!(event.left, expected.left);
        assert_eq!(event.reason, expected.reason);
    }
    assert_eq!(server.deltas_pushed(), expected_deltas.len() as u64);
    assert!(
        !expected_deltas.is_empty(),
        "this world is built so inserts near the standing route change its result"
    );

    // Unsubscribe: first drop succeeds, second reports a dead handle.
    assert_eq!(
        client.unsubscribe(sub.subscription).unwrap(),
        Reply::Answered(true)
    );
    assert_eq!(
        client.unsubscribe(sub.subscription).unwrap(),
        Reply::Answered(false)
    );
}

#[test]
fn burst_replies_are_all_accounted_and_answered_ones_byte_identical() {
    let config = ServiceConfig::default()
        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi))
        .with_cache_capacity(0);
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    let twin = QueryService::new(route_store, transition_store, config);

    // Tiny queue so a pipelined burst overruns admission; replies must still
    // be one-per-request with nothing dropped.
    let server = Server::start(
        backend,
        ServerConfig::default()
            .with_queue_capacity(4)
            .with_per_conn_inflight(1_000),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let queries = query_mix();
    const ROUNDS: usize = 16;
    let mut sent: BTreeMap<u64, usize> = BTreeMap::new();
    for round in 0..ROUNDS {
        for (qi, query) in queries.iter().enumerate() {
            let id = client.send_query(query).unwrap();
            assert!(sent.insert(id, qi).is_none(), "round {round}: duplicate id");
        }
    }

    let total = sent.len();
    let mut answered = 0usize;
    let mut shed = 0usize;
    for _ in 0..total {
        let (id, reply) = client.recv_query_reply().unwrap();
        let qi = sent
            .remove(&id)
            .expect("reply for an unknown or repeated id");
        match reply {
            Reply::Answered(transitions) => {
                let (expected, _) = twin.execute_batch(std::slice::from_ref(&queries[qi]));
                assert_eq!(transitions, expected[0].transitions);
                answered += 1;
            }
            Reply::Overloaded(info) => {
                assert_eq!(info.cost_budget, ServerConfig::default().cost_budget);
                shed += 1;
            }
        }
    }
    assert!(sent.is_empty(), "every request must get exactly one reply");
    assert_eq!(answered + shed, total);
    assert_eq!(server.admitted() as usize, answered);
    assert_eq!(server.shed() as usize, shed);
}

#[test]
fn zero_cost_budget_sheds_every_query_with_a_typed_reply() {
    let backend = single_backend(ServiceConfig::default());
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default().with_cost_budget(0)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for query in query_mix() {
        match client.query(&query).unwrap() {
            Reply::Overloaded(info) => {
                assert_eq!(info.cost_budget, 0);
                assert!(info.estimated_cost >= 1);
            }
            Reply::Answered(_) => panic!("a zero budget must shed everything"),
        }
    }
    assert_eq!(server.admitted(), 0);
    assert_eq!(server.shed(), query_mix().len() as u64);
}

#[test]
fn per_connection_inflight_cap_sheds_independently_of_the_global_queue() {
    let backend = single_backend(ServiceConfig::default());
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default().with_per_conn_inflight(0)).unwrap();
    let mut greedy = Client::connect(server.local_addr()).unwrap();
    let query = &query_mix()[0];
    assert!(greedy.query(query).unwrap().is_overloaded());
    assert_eq!(server.shed(), 1);
}

#[test]
fn hostile_bytes_get_a_typed_error_then_the_connection_closes() {
    let backend = single_backend(ServiceConfig::default());
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default()).unwrap();

    // Garbage that cannot even frame (bogus checksum and hostile length):
    // the error reply has request id 0.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    use std::io::Write;
    stream
        .write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF, 0xFF, 0x7F])
        .unwrap();
    let mut buf = Vec::new();
    let mut replies = Vec::new();
    loop {
        match rknnt_net::protocol::read_frame(&mut stream, &mut buf) {
            Ok(Some(())) => replies.push(Message::decode(&buf).unwrap()),
            Ok(None) => break,
            Err(_) => break,
        }
    }
    let error = replies
        .iter()
        .find_map(|m| match m {
            Message::Error { id, message } => Some((*id, message.clone())),
            _ => None,
        })
        .expect("hostile bytes must produce a typed error reply");
    assert_eq!(error.0, 0);
    assert!(error.1.contains("malformed"), "got: {}", error.1);

    // A structurally valid frame carrying a *response* kind is a protocol
    // violation too.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    rknnt_net::protocol::write_frame(&mut stream, &Message::Pong { id: 9 }.encode()).unwrap();
    let mut got_error = false;
    while let Ok(Some(())) = rknnt_net::protocol::read_frame(&mut stream, &mut buf) {
        if let Ok(Message::Error { id, .. }) = Message::decode(&buf) {
            assert_eq!(id, 9);
            got_error = true;
        }
    }
    assert!(
        got_error,
        "a response kind sent as a request must be rejected"
    );
}

/// A guard that writes a trace/introspection dump under
/// `target/test-dumps/` if the current thread panics while it is alive —
/// CI uploads that directory as an artifact on test failure.
struct DumpFileOnPanic {
    name: &'static str,
    text: String,
}

impl Drop for DumpFileOnPanic {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("../../target"))
            .join("test-dumps");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(self.name);
        let _ = std::fs::write(&path, &self.text);
        eprintln!("wrote failure dump to {}", path.display());
    }
}

/// The index of the first span named `name`, or a panic naming what is
/// missing from the tree.
fn span_index(entry: &WireSlowQuery, name: &str) -> usize {
    entry
        .spans
        .iter()
        .position(|s| s.name == name)
        .unwrap_or_else(|| panic!("trace {:#x} has no {name:?} span", entry.trace_id))
}

/// An integer attribute of span `index`, or a panic naming what is missing.
fn span_attr(entry: &WireSlowQuery, index: usize, key: &str) -> u64 {
    entry.spans[index]
        .attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| {
            panic!(
                "span {:?} of trace {:#x} has no {key:?} attr",
                entry.spans[index].name, entry.trace_id
            )
        })
}

/// Whether span `index` sits under `ancestor` in the tree (or is it).
fn descends_from(entry: &WireSlowQuery, mut index: usize, ancestor: usize) -> bool {
    loop {
        if index == ancestor {
            return true;
        }
        match entry.spans[index].parent_index() {
            Some(parent) => index = parent,
            None => return false,
        }
    }
}

#[test]
fn introspect_fetches_the_slow_trace_span_tree_over_tcp() {
    // Sharded durable backend, so per-shard routing decisions and WAL
    // appends both appear in the trace.
    let (routes, pairs) = small_world();
    let base = ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine));
    let mut sharded = ShardedService::bulk_build(
        ShardedConfig::default().with_shards(4).with_base(base),
        routes.clone(),
        pairs.clone(),
    );
    let dir = std::env::temp_dir().join(format!("rknnt-net-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    sharded
        .attach_storage(&dir, StorageConfig::default().with_fsync(false))
        .unwrap();
    let backend = Backend::Sharded(sharded);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);

    // Threshold 0: every completed trace counts as slow, so promotion is
    // deterministic on any machine.
    let server = Server::start(
        backend,
        ServerConfig::default()
            .with_trace_sample(1.0)
            .with_slow_query_threshold_ns(0),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // One traced update (exercises the WAL path) and one traced query
    // (exercises shard routing), with distinct caller-chosen trace ids.
    const UPDATE_TRACE: u64 = 0x0DECAF;
    const QUERY_TRACE: u64 = 0xC0FFEE;
    let counts = client
        .apply_updates_traced(
            vec![StoreUpdate::InsertTransition {
                origin: p(100.0, 45.0),
                destination: p(200.0, 50.0),
            }],
            UPDATE_TRACE,
        )
        .unwrap()
        .answered()
        .unwrap();
    assert_eq!(counts.applied, 1);
    let query = &query_mix()[0];
    client
        .query_traced(query, QUERY_TRACE)
        .unwrap()
        .answered()
        .expect("a serial client under the default budget is never shed");
    // An *untraced* request must not add a slow-log entry.
    client.query(query).unwrap().answered().unwrap();

    let report = client.introspect(IntrospectWhat::SlowQueries).unwrap();
    let IntrospectReport::SlowQueries { entries } = report else {
        panic!("asked for SlowQueries, got {report:?}");
    };
    let _entries_dump = DumpFileOnPanic {
        name: "introspect-slow-queries.txt",
        text: format!("{entries:#?}"),
    };
    assert_eq!(
        entries.len(),
        2,
        "exactly the two traced requests promote at threshold 0"
    );

    // The update trace: request -> execute -> wal_append with real frames.
    let update = entries
        .iter()
        .find(|e| e.trace_id == UPDATE_TRACE)
        .expect("the traced update must be in the slow log");
    assert_eq!(update.spans[0].name, "request");
    assert!(update.root_dur_ns > 0);
    let execute = span_index(update, "execute");
    let wal = span_index(update, "wal_append");
    assert!(descends_from(update, wal, execute));
    assert!(span_attr(update, wal, "frames") >= 1);
    assert!(span_attr(update, wal, "bytes") > 0);

    // The query trace: admission and queue under the root, the batch
    // pipeline under execute, and a routing decision for every shard.
    let entry = entries
        .iter()
        .find(|e| e.trace_id == QUERY_TRACE)
        .expect("the traced query must be in the slow log");
    assert_eq!(entry.spans[0].name, "request");
    let admission = span_index(entry, "admission");
    assert_eq!(entry.spans[admission].parent_index(), Some(0));
    assert!(span_attr(entry, admission, "cost") >= 1);
    span_attr(entry, admission, "queue_depth");
    assert_eq!(
        entry.spans[span_index(entry, "queue")].parent_index(),
        Some(0)
    );
    let execute = span_index(entry, "execute");
    for name in ["batch", "worker", "group"] {
        let index = span_index(entry, name);
        assert!(
            descends_from(entry, index, execute),
            "{name} must hang under execute"
        );
    }
    let shard_spans: Vec<usize> = entry
        .spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "shard")
        .map(|(i, _)| i)
        .collect();
    let mut decided: Vec<u64> = Vec::new();
    for index in shard_spans {
        assert!(descends_from(entry, index, execute));
        decided.push(span_attr(entry, index, "shard"));
        match span_attr(entry, index, "pruned") {
            // Certificate-pruned shards record a zero-duration marker.
            1 => assert_eq!(span_attr(entry, index, "certificate"), 1),
            0 => {
                span_attr(entry, index, "candidates");
            }
            other => panic!("pruned attr must be 0 or 1, got {other}"),
        }
    }
    decided.sort_unstable();
    assert_eq!(
        decided,
        vec![0, 1, 2, 3],
        "the trace must record a prune decision for every shard"
    );
    // The correlated flight-recorder window rode along with the trace.
    assert!(entry.events.contains("flight recorder"));

    // Metrics introspection reaches the per-reason shed counters and the
    // shard-prefixed backend registries from the reader thread.
    let IntrospectReport::Metrics { text } = client.introspect(IntrospectWhat::Metrics).unwrap()
    else {
        panic!("asked for Metrics, got something else");
    };
    for needle in [
        "net.shed.queue_full",
        "net.shed.cost_budget",
        "net.shed.inflight",
        "shard.0.",
    ] {
        assert!(text.contains(needle), "metrics text missing {needle}");
    }

    // Flight-recorder introspection renders the backend's window.
    let IntrospectReport::FlightRecorder { text } =
        client.introspect(IntrospectWhat::FlightRecorder).unwrap()
    else {
        panic!("asked for FlightRecorder, got something else");
    };
    assert!(text.contains("flight recorder"), "got: {text}");

    // The server-side log agrees with what travelled over the wire.
    let log = server.slow_query_log();
    assert_eq!(log.promoted(), 2);
    assert_eq!(log.over_threshold(), 2);
}

#[test]
fn trace_sampling_zero_keeps_the_slow_log_empty() {
    let backend = single_backend(ServiceConfig::default());
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(
        backend,
        ServerConfig::default()
            .with_trace_sample(0.0)
            .with_slow_query_threshold_ns(0),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (i, query) in query_mix().iter().enumerate() {
        client
            .query_traced(query, 0x1000 + i as u64)
            .unwrap()
            .answered()
            .unwrap();
    }
    let IntrospectReport::SlowQueries { entries } =
        client.introspect(IntrospectWhat::SlowQueries).unwrap()
    else {
        panic!("asked for SlowQueries, got something else");
    };
    assert!(
        entries.is_empty(),
        "sampling 0.0 must trace nothing, got {entries:#?}"
    );
    assert_eq!(server.slow_query_log().completed(), 0);
}

#[test]
fn disconnect_reclaims_subscriptions_before_later_updates() {
    let config = ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default()).unwrap();

    let mut subscriber = Client::connect(server.local_addr()).unwrap();
    let standing = RknntQuery::exists(vec![p(0.0, 40.0), p(600.0, 40.0), p(1200.0, 40.0)], 2);
    subscriber.subscribe(&standing).unwrap().answered().unwrap();
    drop(subscriber);

    // `connections_closed` ticking guarantees the reclamation job is ahead
    // of anything admitted afterwards.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connections_closed() == 0 {
        assert!(Instant::now() < deadline, "reader never noticed the close");
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut updater = Client::connect(server.local_addr()).unwrap();
    let counts = updater
        .apply_updates(vec![StoreUpdate::InsertTransition {
            origin: p(100.0, 45.0),
            destination: p(200.0, 50.0),
        }])
        .unwrap()
        .answered()
        .unwrap();
    assert_eq!(counts.applied, 1);
    assert_eq!(
        server.deltas_pushed(),
        0,
        "a dead connection's subscription must not generate pushes"
    );
}
