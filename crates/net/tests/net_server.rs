//! Serving-edge invariants: answers over TCP are byte-identical to
//! in-process execution (for both backends), subscription deltas stream to
//! the owning connection, admission control sheds with a typed reply and
//! never silently drops a request, and hostile bytes on the wire get a
//! typed error instead of undefined behaviour.

use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionStore};
use rknnt_net::{Backend, Client, Message, Reply, Server, ServerConfig};
use rknnt_service::{
    EnginePolicy, QueryService, ServiceConfig, ShardedConfig, ShardedService, StoreUpdate,
};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// A deterministic little city: a grid of horizontal routes with transition
/// endpoints scattered between them.
fn small_world() -> (Vec<Vec<Point>>, Vec<(Point, Point)>) {
    let mut routes = Vec::new();
    for row in 0..6 {
        let y = row as f64 * 120.0;
        routes.push(vec![
            p(0.0, y),
            p(400.0, y + 10.0),
            p(800.0, y),
            p(1200.0, y - 10.0),
        ]);
    }
    let mut pairs = Vec::new();
    for i in 0..80 {
        let x = (i % 10) as f64 * 120.0 + 15.0;
        let y = (i / 10) as f64 * 80.0 + 25.0;
        pairs.push((p(x, y), p(x + 60.0, y + 30.0)));
    }
    (routes, pairs)
}

fn stores(routes: &[Vec<Point>], pairs: &[(Point, Point)]) -> (RouteStore, TransitionStore) {
    let mut route_store = RouteStore::default();
    for route in routes {
        route_store.insert_route(route.clone());
    }
    let mut transition_store = TransitionStore::default();
    for (origin, destination) in pairs {
        transition_store.insert(*origin, *destination).unwrap();
    }
    (route_store, transition_store)
}

fn query_mix() -> Vec<RknntQuery> {
    let mut queries = Vec::new();
    for k in [1usize, 2, 4] {
        for (i, semantics) in [Semantics::Exists, Semantics::ForAll]
            .into_iter()
            .enumerate()
        {
            let y = 35.0 + (k * 7 + i) as f64 * 40.0;
            queries.push(RknntQuery {
                route: vec![p(10.0, y), p(500.0, y + 20.0), p(1100.0, y)],
                k,
                semantics,
            });
        }
    }
    queries
}

fn single_backend(config: ServiceConfig) -> Backend {
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    Backend::Single(QueryService::new(route_store, transition_store, config))
}

#[test]
fn answers_over_tcp_are_byte_identical_to_in_process() {
    let config = ServiceConfig::default()
        .with_workers(2)
        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    let twin = QueryService::new(route_store, transition_store, config);

    let server = Server::start(backend, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert_eq!(client.ping().unwrap(), Reply::Answered(()));
    for query in query_mix() {
        let over_wire = client
            .query(&query)
            .unwrap()
            .answered()
            .expect("default budget must admit a serial client");
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(
            over_wire, expected[0].transitions,
            "k={} {:?}",
            query.k, query.semantics
        );
    }
    assert_eq!(server.shed(), 0);
    assert!(server.admitted() >= query_mix().len() as u64);
    assert!(server.request_latency().count() >= query_mix().len() as u64);
    let metrics = server.metrics_text();
    assert!(metrics.contains("net.admitted"), "metrics text: {metrics}");
}

#[test]
fn sharded_backend_matches_unsharded_twin_over_tcp() {
    let (routes, pairs) = small_world();
    let base = ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine));
    let sharded = ShardedService::bulk_build(
        ShardedConfig::default().with_shards(4).with_base(base),
        routes.clone(),
        pairs.clone(),
    );
    let backend = Backend::Sharded(sharded);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let (route_store, transition_store) = stores(&routes, &pairs);
    let twin = QueryService::new(route_store, transition_store, base);

    let server = Server::start(backend, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for query in query_mix() {
        let over_wire = client.query(&query).unwrap().answered().unwrap();
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(over_wire, expected[0].transitions);
    }
}

#[test]
fn subscription_deltas_stream_to_the_owning_connection() {
    let config = ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    // Twin service receiving the same subscription and updates in the same
    // order, so ids and deltas line up exactly.
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    let mut twin = QueryService::new(route_store, transition_store, config);

    let server = Server::start(backend, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let standing = RknntQuery::exists(vec![p(0.0, 40.0), p(600.0, 40.0), p(1200.0, 40.0)], 2);
    let sub = client.subscribe(&standing).unwrap().answered().unwrap();
    let twin_sub = twin.subscribe(standing.clone());
    assert_eq!(
        Some(sub.transitions.as_slice()),
        twin.subscription_result(twin_sub),
        "initial subscription result must match the twin"
    );

    // Churn the store through the wire; the twin gets the same updates.
    let updates = vec![
        StoreUpdate::InsertTransition {
            origin: p(100.0, 45.0),
            destination: p(200.0, 50.0),
        },
        StoreUpdate::InsertTransition {
            origin: p(300.0, 42.0),
            destination: p(420.0, 38.0),
        },
    ];
    let counts = client
        .apply_updates(updates.clone())
        .unwrap()
        .answered()
        .unwrap();
    assert_eq!(counts.applied, 2);
    assert_eq!(counts.rejected, 0);
    let twin_stats = twin.apply_updates(updates);
    let mut expected_deltas = twin_stats.deltas;
    expected_deltas.retain(|d| d.subscription == twin_sub);

    // The server pushes the same deltas (frames arrive after the
    // UpdatesOk reply on this connection, in emission order).
    for expected in &expected_deltas {
        let event = client.recv_delta().unwrap();
        assert_eq!(event.subscription, sub.subscription);
        assert_eq!(event.entered, expected.entered);
        assert_eq!(event.left, expected.left);
        assert_eq!(event.reason, expected.reason);
    }
    assert_eq!(server.deltas_pushed(), expected_deltas.len() as u64);
    assert!(
        !expected_deltas.is_empty(),
        "this world is built so inserts near the standing route change its result"
    );

    // Unsubscribe: first drop succeeds, second reports a dead handle.
    assert_eq!(
        client.unsubscribe(sub.subscription).unwrap(),
        Reply::Answered(true)
    );
    assert_eq!(
        client.unsubscribe(sub.subscription).unwrap(),
        Reply::Answered(false)
    );
}

#[test]
fn burst_replies_are_all_accounted_and_answered_ones_byte_identical() {
    let config = ServiceConfig::default()
        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi))
        .with_cache_capacity(0);
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let (routes, pairs) = small_world();
    let (route_store, transition_store) = stores(&routes, &pairs);
    let twin = QueryService::new(route_store, transition_store, config);

    // Tiny queue so a pipelined burst overruns admission; replies must still
    // be one-per-request with nothing dropped.
    let server = Server::start(
        backend,
        ServerConfig::default()
            .with_queue_capacity(4)
            .with_per_conn_inflight(1_000),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let queries = query_mix();
    const ROUNDS: usize = 16;
    let mut sent: BTreeMap<u64, usize> = BTreeMap::new();
    for round in 0..ROUNDS {
        for (qi, query) in queries.iter().enumerate() {
            let id = client.send_query(query).unwrap();
            assert!(sent.insert(id, qi).is_none(), "round {round}: duplicate id");
        }
    }

    let total = sent.len();
    let mut answered = 0usize;
    let mut shed = 0usize;
    for _ in 0..total {
        let (id, reply) = client.recv_query_reply().unwrap();
        let qi = sent
            .remove(&id)
            .expect("reply for an unknown or repeated id");
        match reply {
            Reply::Answered(transitions) => {
                let (expected, _) = twin.execute_batch(std::slice::from_ref(&queries[qi]));
                assert_eq!(transitions, expected[0].transitions);
                answered += 1;
            }
            Reply::Overloaded(info) => {
                assert_eq!(info.cost_budget, ServerConfig::default().cost_budget);
                shed += 1;
            }
        }
    }
    assert!(sent.is_empty(), "every request must get exactly one reply");
    assert_eq!(answered + shed, total);
    assert_eq!(server.admitted() as usize, answered);
    assert_eq!(server.shed() as usize, shed);
}

#[test]
fn zero_cost_budget_sheds_every_query_with_a_typed_reply() {
    let backend = single_backend(ServiceConfig::default());
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default().with_cost_budget(0)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for query in query_mix() {
        match client.query(&query).unwrap() {
            Reply::Overloaded(info) => {
                assert_eq!(info.cost_budget, 0);
                assert!(info.estimated_cost >= 1);
            }
            Reply::Answered(_) => panic!("a zero budget must shed everything"),
        }
    }
    assert_eq!(server.admitted(), 0);
    assert_eq!(server.shed(), query_mix().len() as u64);
}

#[test]
fn per_connection_inflight_cap_sheds_independently_of_the_global_queue() {
    let backend = single_backend(ServiceConfig::default());
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default().with_per_conn_inflight(0)).unwrap();
    let mut greedy = Client::connect(server.local_addr()).unwrap();
    let query = &query_mix()[0];
    assert!(greedy.query(query).unwrap().is_overloaded());
    assert_eq!(server.shed(), 1);
}

#[test]
fn hostile_bytes_get_a_typed_error_then_the_connection_closes() {
    let backend = single_backend(ServiceConfig::default());
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default()).unwrap();

    // Garbage that cannot even frame (bogus checksum and hostile length):
    // the error reply has request id 0.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    use std::io::Write;
    stream
        .write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF, 0xFF, 0x7F])
        .unwrap();
    let mut buf = Vec::new();
    let mut replies = Vec::new();
    loop {
        match rknnt_net::protocol::read_frame(&mut stream, &mut buf) {
            Ok(Some(())) => replies.push(Message::decode(&buf).unwrap()),
            Ok(None) => break,
            Err(_) => break,
        }
    }
    let error = replies
        .iter()
        .find_map(|m| match m {
            Message::Error { id, message } => Some((*id, message.clone())),
            _ => None,
        })
        .expect("hostile bytes must produce a typed error reply");
    assert_eq!(error.0, 0);
    assert!(error.1.contains("malformed"), "got: {}", error.1);

    // A structurally valid frame carrying a *response* kind is a protocol
    // violation too.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    rknnt_net::protocol::write_frame(&mut stream, &Message::Pong { id: 9 }.encode()).unwrap();
    let mut got_error = false;
    while let Ok(Some(())) = rknnt_net::protocol::read_frame(&mut stream, &mut buf) {
        if let Ok(Message::Error { id, .. }) = Message::decode(&buf) {
            assert_eq!(id, 9);
            got_error = true;
        }
    }
    assert!(
        got_error,
        "a response kind sent as a request must be rejected"
    );
}

#[test]
fn disconnect_reclaims_subscriptions_before_later_updates() {
    let config = ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));
    let backend = single_backend(config);
    let _dump = rknnt_obs::DumpOnPanic::new(backend.flight_recorder(), 32);
    let server = Server::start(backend, ServerConfig::default()).unwrap();

    let mut subscriber = Client::connect(server.local_addr()).unwrap();
    let standing = RknntQuery::exists(vec![p(0.0, 40.0), p(600.0, 40.0), p(1200.0, 40.0)], 2);
    subscriber.subscribe(&standing).unwrap().answered().unwrap();
    drop(subscriber);

    // `connections_closed` ticking guarantees the reclamation job is ahead
    // of anything admitted afterwards.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connections_closed() == 0 {
        assert!(Instant::now() < deadline, "reader never noticed the close");
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut updater = Client::connect(server.local_addr()).unwrap();
    let counts = updater
        .apply_updates(vec![StoreUpdate::InsertTransition {
            origin: p(100.0, 45.0),
            destination: p(200.0, 50.0),
        }])
        .unwrap()
        .answered()
        .unwrap();
    assert_eq!(counts.applied, 1);
    assert_eq!(
        server.deltas_pushed(),
        0,
        "a dead connection's subscription must not generate pushes"
    );
}
