//! Partial-failure invariants for the distributed shard fleet: a complete
//! fleet is byte-identical to an unsharded twin; a killed shard degrades
//! answers to a typed partial result that is exactly the healthy-shard
//! subset (never a silent wrong answer, never a hang); updates to a down
//! shard defer in the router log and replay from the recovered shard's
//! watermark; standing queries are re-established with resync deltas; and
//! after recovery the fleet is byte-identical to a fleet that never failed.

use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionId, TransitionStore};
use rknnt_net::{
    BreakerState, FleetConfig, FleetRouter, RecordingSleeper, RemoteShardConfig, ServerConfig,
};
use rknnt_obs::MockClock;
use rknnt_service::{EnginePolicy, QueryService, ServiceConfig, StoreUpdate};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Same deterministic world as the serving-edge tests: horizontal routes,
/// transitions scattered so every shard of a 3-way x-split owns some.
fn small_world() -> (Vec<Vec<Point>>, Vec<(Point, Point)>) {
    let mut routes = Vec::new();
    for row in 0..6 {
        let y = row as f64 * 120.0;
        routes.push(vec![
            p(0.0, y),
            p(400.0, y + 10.0),
            p(800.0, y),
            p(1200.0, y - 10.0),
        ]);
    }
    let mut pairs = Vec::new();
    for i in 0..80 {
        let x = (i % 10) as f64 * 120.0 + 15.0;
        let y = (i / 10) as f64 * 80.0 + 25.0;
        pairs.push((p(x, y), p(x + 60.0, y + 30.0)));
    }
    (routes, pairs)
}

fn query_mix() -> Vec<RknntQuery> {
    let mut queries = Vec::new();
    for k in [1usize, 2, 4] {
        for (i, semantics) in [Semantics::Exists, Semantics::ForAll]
            .into_iter()
            .enumerate()
        {
            let y = 35.0 + (k * 7 + i) as f64 * 40.0;
            queries.push(RknntQuery {
                route: vec![p(10.0, y), p(500.0, y + 20.0), p(1100.0, y)],
                k,
                semantics,
            });
        }
    }
    queries
}

fn churn() -> Vec<StoreUpdate> {
    vec![
        StoreUpdate::InsertTransition {
            origin: p(100.0, 45.0),
            destination: p(200.0, 50.0),
        },
        StoreUpdate::InsertTransition {
            origin: p(1100.0, 42.0),
            destination: p(1020.0, 38.0),
        },
        StoreUpdate::ExpireTransition(TransitionId::from(3)),
        StoreUpdate::InsertTransition {
            origin: p(620.0, 200.0),
            destination: p(700.0, 260.0),
        },
    ]
}

fn service_config() -> ServiceConfig {
    ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine))
}

/// A fleet wired for deterministic tests: recorded (not slept) backoffs, a
/// hand-advanced breaker clock, and a tiny retry budget so a dead shard is
/// declared missing quickly.
fn test_fleet(
    shards: usize,
    storage_root: Option<PathBuf>,
) -> (FleetRouter, Arc<RecordingSleeper>, Arc<MockClock>) {
    let sleeper = Arc::new(RecordingSleeper::new());
    let clock = Arc::new(MockClock::new());
    let config = FleetConfig {
        shards,
        service: service_config(),
        server: ServerConfig::default(),
        remote: RemoteShardConfig {
            deadline: Duration::from_secs(2),
            failure_threshold: 2,
            open_for: Duration::from_millis(50),
            ..RemoteShardConfig::default()
        },
        storage_root,
        ..FleetConfig::default()
    };
    let (routes, pairs) = small_world();
    let fleet = FleetRouter::bulk_build_with_parts(
        config,
        routes,
        pairs,
        clock.clone(),
        Some(sleeper.clone() as _),
    )
    .expect("fleet build");
    (fleet, sleeper, clock)
}

fn twin() -> QueryService {
    let (routes, pairs) = small_world();
    let mut route_store = RouteStore::default();
    for route in &routes {
        route_store.insert_route(route.clone());
    }
    let mut transition_store = TransitionStore::default();
    for (origin, destination) in &pairs {
        transition_store.insert(*origin, *destination).unwrap();
    }
    QueryService::new(route_store, transition_store, service_config())
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rknnt-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn complete_fleet_is_byte_identical_to_unsharded_twin() {
    let (mut fleet, _, _) = test_fleet(3, None);
    let mut twin = twin();
    for query in query_mix() {
        let fleet_answer = fleet.execute(&query);
        assert!(fleet_answer.is_complete());
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(fleet_answer.transitions, expected[0].transitions);
    }
    // Updates route through shard logs and land identically.
    let applied = fleet.apply_updates(churn());
    assert_eq!(applied.rejected, 0);
    assert!(applied.deferred_shards.is_empty());
    twin.apply_updates(churn());
    for query in query_mix() {
        let fleet_answer = fleet.execute(&query);
        assert!(fleet_answer.is_complete());
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(fleet_answer.transitions, expected[0].transitions);
    }
    fleet.shutdown();
}

#[test]
fn killed_shard_degrades_to_exactly_the_healthy_subset() {
    let (mut fleet, sleeper, _) = test_fleet(3, None);
    let twin = twin();
    let victim = 1usize;
    fleet.kill_shard(victim, "chaos: killed by test");
    for query in query_mix() {
        let degraded = fleet.execute(&query);
        assert_eq!(degraded.missing_shards, vec![victim], "typed, never silent");
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        let healthy_subset: Vec<TransitionId> = expected[0]
            .transitions
            .iter()
            .copied()
            .filter(|id| fleet.owner_of(*id) != Some(victim))
            .collect();
        assert_eq!(
            degraded.transitions, healthy_subset,
            "degraded answer must be exactly the healthy-shard subset"
        );
    }
    // The retry schedule ran (recorded, not slept) and stayed within the
    // policy's cap.
    let slept = sleeper.slept();
    assert!(!slept.is_empty(), "retries must back off");
    let max = fleet.shard_stats(victim);
    assert!(max.retries > 0);
    assert!(max.failures > 0);
    fleet.shutdown();
}

#[test]
fn breaker_opens_after_threshold_then_half_opens_on_clock() {
    let (mut fleet, _, clock) = test_fleet(2, None);
    let victim = 0usize;
    fleet.kill_shard(victim, "chaos: breaker test");
    let query = &query_mix()[0];
    // failure_threshold = 2: two failed dispatches trip the breaker.
    let _ = fleet.execute(query);
    let _ = fleet.execute(query);
    assert_eq!(fleet.shard_breaker_state(victim), BreakerState::Open);
    // While open, dispatches fast-fail without dialling.
    let denials_before = fleet.shard_stats(victim).breaker_denials;
    let degraded = fleet.execute(query);
    assert_eq!(degraded.missing_shards, vec![victim]);
    assert!(fleet.shard_stats(victim).breaker_denials > denials_before);
    // Past the cooldown the breaker half-opens and admits a probe; the
    // shard is still dead, so the probe fails and it re-opens.
    clock.advance(Duration::from_millis(51).as_nanos() as u64);
    assert_eq!(fleet.shard_breaker_state(victim), BreakerState::HalfOpen);
    let _ = fleet.execute(query);
    assert_eq!(fleet.shard_breaker_state(victim), BreakerState::Open);
    // Recovery closes it.
    fleet.restart_shard(victim).expect("restart");
    assert_eq!(fleet.shard_breaker_state(victim), BreakerState::Closed);
    assert!(fleet.execute(query).is_complete());
    fleet.shutdown();
}

#[test]
fn deferred_updates_replay_on_in_memory_restart() {
    let (mut fleet, _, _) = test_fleet(3, None);
    let mut twin = twin();
    let victim = 1usize;
    fleet.kill_shard(victim, "chaos: defer test");
    let applied = fleet.apply_updates(churn());
    twin.apply_updates(churn());
    assert_eq!(applied.rejected, 0);
    assert!(applied.deferred_shards.contains(&victim));
    let (acked, total) = fleet.shard_progress(victim);
    assert!(acked < total, "records must defer, not vanish");
    // Degraded but typed while down.
    for query in query_mix() {
        assert_eq!(fleet.execute(&query).missing_shards, vec![victim]);
    }
    fleet.restart_shard(victim).expect("restart");
    let (acked, total) = fleet.shard_progress(victim);
    assert_eq!(acked, total, "restart must replay the full deferred suffix");
    for query in query_mix() {
        let recovered = fleet.execute(&query);
        assert!(recovered.is_complete());
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(
            recovered.transitions, expected[0].transitions,
            "after recovery the fleet must be byte-identical to a twin that never failed"
        );
    }
    assert!(fleet.metrics_text().contains("fleet.replayed_records"));
    fleet.shutdown();
}

#[test]
fn durable_shard_recovers_from_disk_and_replays_only_the_suffix() {
    let root = temp_root("durable");
    let (mut fleet, _, _) = test_fleet(3, Some(root.clone()));
    let mut twin = twin();
    // Phase 1: updates land everywhere and are durably acked.
    let pre = vec![StoreUpdate::InsertTransition {
        origin: p(50.0, 140.0),
        destination: p(90.0, 180.0),
    }];
    assert!(fleet.apply_updates(pre.clone()).deferred_shards.is_empty());
    twin.apply_updates(pre);
    let victim = 0usize;
    let durable_watermark = fleet.shard_progress(victim).0;
    // Phase 2: kill, then route more records at the dead shard.
    fleet.kill_shard(victim, "chaos: durable test");
    let applied = fleet.apply_updates(churn());
    twin.apply_updates(churn());
    assert!(applied.deferred_shards.contains(&victim));
    fleet.restart_shard(victim).expect("restart from disk");
    // The health probe reports the on-disk watermark, so only the
    // post-kill suffix replays — not the whole log.
    let replayed: u64 = fleet
        .metrics_text()
        .lines()
        .find(|l| l.contains("fleet.replayed_records"))
        .and_then(|l| l.rsplit("value=").next()?.trim().parse().ok())
        .expect("replayed_records metric");
    let (acked, total) = fleet.shard_progress(victim);
    assert_eq!(acked, total);
    assert_eq!(
        replayed,
        total - durable_watermark,
        "only the suffix past the durable watermark may replay"
    );
    for query in query_mix() {
        let recovered = fleet.execute(&query);
        assert!(recovered.is_complete());
        let (expected, _) = twin.execute_batch(std::slice::from_ref(&query));
        assert_eq!(recovered.transitions, expected[0].transitions);
    }
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn subscriptions_resync_after_failover() {
    let (mut fleet, _, _) = test_fleet(3, None);
    let mut twin = twin();
    let standing = RknntQuery::exists(vec![p(0.0, 40.0), p(600.0, 40.0), p(1200.0, 40.0)], 2);
    let (sub, initial) = fleet.subscribe(&standing);
    assert!(initial.is_complete());
    let twin_sub = twin.subscribe(standing.clone());
    assert_eq!(
        Some(initial.transitions.as_slice()),
        twin.subscription_result(twin_sub)
    );
    let victim = 1usize;
    fleet.kill_shard(victim, "chaos: subscription test");
    // Churn while the shard is down: healthy shards stream deltas now, the
    // victim's changes arrive as a resync delta after recovery.
    fleet.apply_updates(churn());
    twin.apply_updates(churn());
    fleet.restart_shard(victim).expect("restart");
    // Fold every fleet delta over the initial view; the result must equal
    // the recorded subscription result AND the twin's.
    let mut view: std::collections::BTreeSet<TransitionId> =
        initial.transitions.iter().copied().collect();
    for delta in fleet.take_deltas() {
        assert_eq!(delta.subscription, sub);
        for id in delta.entered {
            view.insert(id);
        }
        for id in delta.left {
            view.remove(&id);
        }
    }
    let folded: Vec<TransitionId> = view.into_iter().collect();
    assert_eq!(
        fleet.subscription_result(sub).as_deref(),
        Some(folded.as_slice()),
        "deltas must reconstruct the recorded view"
    );
    assert_eq!(
        twin.subscription_result(twin_sub),
        Some(folded.as_slice()),
        "resynced subscription must match the twin"
    );
    fleet.shutdown();
}
