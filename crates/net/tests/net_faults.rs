//! Wire-fault invariants, driven by the deterministic failpoint layer:
//! whatever a hostile or unlucky connection does — mid-frame cuts,
//! single-byte corruption, a reader-side kill, an executor panic — the
//! server either answers with a typed reply or closes the connection. It
//! never hangs a client, never silently drops a request it accepted, and
//! never lets one connection's damage leak into another's answers: a fresh
//! connection is always byte-identical to in-process execution.

use proptest::prelude::*;
use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_fault::FaultPlan;
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionStore};
use rknnt_net::{
    Backend, Client, ClientConfig, ClientError, Reply, Server, ServerConfig, CLIENT_WRITE_SITE,
    SERVER_EXECUTOR_SITE, SERVER_READ_SITE, SERVER_WRITE_SITE,
};
use rknnt_service::{EnginePolicy, QueryService, ServiceConfig};
use std::time::Duration;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn small_world() -> (Vec<Vec<Point>>, Vec<(Point, Point)>) {
    let mut routes = Vec::new();
    for row in 0..6 {
        let y = row as f64 * 120.0;
        routes.push(vec![
            p(0.0, y),
            p(400.0, y + 10.0),
            p(800.0, y),
            p(1200.0, y - 10.0),
        ]);
    }
    let mut pairs = Vec::new();
    for i in 0..80 {
        let x = (i % 10) as f64 * 120.0 + 15.0;
        let y = (i / 10) as f64 * 80.0 + 25.0;
        pairs.push((p(x, y), p(x + 60.0, y + 30.0)));
    }
    (routes, pairs)
}

fn service() -> QueryService {
    let (routes, pairs) = small_world();
    let mut route_store = RouteStore::default();
    for route in &routes {
        route_store.insert_route(route.clone());
    }
    let mut transition_store = TransitionStore::default();
    for (origin, destination) in &pairs {
        transition_store.insert(*origin, *destination).unwrap();
    }
    QueryService::new(
        route_store,
        transition_store,
        ServiceConfig::default().with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine)),
    )
}

fn query(k: usize, semantics: Semantics) -> RknntQuery {
    RknntQuery {
        route: vec![p(10.0, 75.0), p(500.0, 95.0), p(1100.0, 75.0)],
        k,
        semantics,
    }
}

/// A client that can never hang the test: blocking reads give up after a
/// bounded wait with a typed [`ClientError::Timeout`].
fn bounded_client(server: &Server, config: ClientConfig) -> Client {
    Client::connect_with(
        server.local_addr(),
        config.with_read_timeout(Duration::from_secs(5)),
    )
    .expect("connect")
}

proptest! {
    /// Inject a mid-frame cut or a single-byte corruption into one of the
    /// first few frames a client writes. Every faulted call must return
    /// (typed reply or typed error — never a hang), the faulted
    /// connection's subscription must be reclaimed once the connection
    /// closes, and a fresh connection must still get byte-identical
    /// answers.
    #[test]
    fn client_frame_faults_never_wedge_the_server(
        at in 1u64..5,
        cut_draw in 0u32..2,
        after in 0u32..48,
        offset in 0u32..200,
        mask in 0u32..256,
    ) {
        let cut = cut_draw == 1;
        let (after, offset, mask) = (after as usize, offset as usize, mask as u8);
        let twin = service();
        let server = Server::start(Backend::Single(service()), ServerConfig::default()).unwrap();
        let plan = if cut {
            FaultPlan::new(0xFA17).cut_mid_frame(CLIENT_WRITE_SITE, at, after)
        } else {
            FaultPlan::new(0xFA17).corrupt(CLIENT_WRITE_SITE, at, offset, mask)
        };
        let fp = plan.arm();
        let mut faulted = bounded_client(
            &server,
            ClientConfig::default().with_failpoints(fp.clone()),
        );

        // A workload of 4 frames; the fault lands somewhere inside it.
        // Every call must come back, one way or another.
        let standing = query(2, Semantics::Exists);
        let mut conn_alive = true;
        let outcomes: [Result<(), ClientError>; 4] = [
            faulted.subscribe(&standing).map(|_| ()),
            faulted.query(&query(1, Semantics::Exists)).map(|_| ()),
            faulted.query(&query(2, Semantics::ForAll)).map(|_| ()),
            faulted.ping().map(|_| ()),
        ];
        for outcome in &outcomes {
            match outcome {
                Ok(()) => {}
                Err(ClientError::Timeout) => panic!("server failed to answer-or-close"),
                Err(_) => conn_alive = false,
            }
        }
        let subscribed = outcomes[0].is_ok();
        prop_assert!(fp.injected() > 0, "the fault must actually fire");
        // A cut always severs the connection. A corruption is detected by
        // the server's frame checksum, which closes the connection rather
        // than guess at the damage.
        prop_assert!(!conn_alive, "a faulted frame must close the connection");
        drop(faulted);

        // Fence: a fresh connection's ping round-trips through the same
        // FIFO queue as the disconnect reclamation job, so after the pong
        // the old connection's subscription (if it registered before the
        // fault) has been reclaimed.
        while server.connections_closed() < 1 {
            std::thread::yield_now();
        }
        let mut clean = bounded_client(&server, ClientConfig::default());
        prop_assert_eq!(clean.ping().unwrap(), Reply::Answered(()));
        prop_assert_eq!(
            server.subscriptions_reclaimed(),
            u64::from(subscribed),
            "a registered subscription must be reclaimed on close"
        );

        // Byte-identity through the surviving server.
        for (k, semantics) in [(1, Semantics::Exists), (2, Semantics::ForAll), (4, Semantics::Exists)] {
            let q = query(k, semantics);
            let over_wire = clean.query(&q).unwrap().answered().expect("admitted");
            let (expected, _) = twin.execute_batch(std::slice::from_ref(&q));
            prop_assert_eq!(&over_wire, &expected[0].transitions);
        }
    }
}

/// Satellite 2's proof: a panicking executor no longer strands readers.
/// Queued requests get a typed `Error` reply, the connections close
/// cleanly, and `Server::stop` still joins.
#[test]
fn executor_panic_answers_queued_requests_then_closes() {
    let fp = FaultPlan::new(0xDEAD)
        .panic_at(SERVER_EXECUTOR_SITE, 2, "injected executor panic")
        .arm();
    let server = Server::start(
        Backend::Single(service()),
        ServerConfig::default().with_failpoints(fp),
    )
    .unwrap();
    let mut client = bounded_client(&server, ClientConfig::default());
    // Batch 1 is clean; batch 2 panics before processing, so the query is
    // answered with a typed error — not silence.
    assert_eq!(client.ping().unwrap(), Reply::Answered(()));
    let err = client.query(&query(1, Semantics::Exists)).unwrap_err();
    match err {
        ClientError::Server { message, .. } => {
            assert!(
                message.contains("executor panicked"),
                "typed panic error, got: {message}"
            );
        }
        // The connection may be severed before the reply is read back.
        ClientError::Disconnected | ClientError::Io(_) => {}
        other => panic!("expected a typed error or a clean close, got {other:?}"),
    }
    // The server is dead (typed), connections are severed, and new
    // requests are refused rather than queued forever.
    assert!(server.is_dead());
    let fault = server.fault().expect("dead servers name their fault");
    assert!(fault.contains("injected executor panic"), "fault: {fault}");
    if let Ok(Reply::Answered(())) = client.ping() {
        panic!("dead server must not pong");
    }
    drop(client);
    drop(server.stop());
}

/// A reader-side kill mimics a crash: the in-flight frame is neither
/// applied nor acknowledged, every client sees a close (never a hang), and
/// reconnects are refused instantly.
#[test]
fn reader_kill_severs_clients_without_hanging() {
    let fp = FaultPlan::new(0x4B31).kill(SERVER_READ_SITE, 2).arm();
    let server = Server::start(
        Backend::Single(service()),
        ServerConfig::default().with_failpoints(fp),
    )
    .unwrap();
    let mut client = bounded_client(&server, ClientConfig::default());
    assert_eq!(client.ping().unwrap(), Reply::Answered(()));
    // Frame 2 trips the kill before it is decoded: no reply, typed close.
    match client.query(&query(1, Semantics::Exists)) {
        Err(ClientError::Timeout) => panic!("kill must sever, not hang"),
        Err(_) => {}
        Ok(reply) => panic!("killed server must not answer, got {reply:?}"),
    }
    assert!(server.is_dead());
    // The listener dies with the server: reconnection is refused rather
    // than accepted-and-ignored. (One handshake may still land in the
    // backlog while the acceptor thread winds down, hence the poll.)
    let refused = (0..2000).any(|_| {
        std::thread::sleep(Duration::from_millis(1));
        std::net::TcpStream::connect(server.local_addr()).is_err()
    });
    assert!(refused, "listener must die with the server");
    drop(server.stop());
}

/// A mid-frame cut on the server's write path: the client sees a typed
/// error on that connection, and the server keeps serving others.
#[test]
fn server_write_cut_is_typed_and_contained() {
    let fp = FaultPlan::new(0x5E7)
        .cut_mid_frame(SERVER_WRITE_SITE, 2, 3)
        .arm();
    let server = Server::start(
        Backend::Single(service()),
        ServerConfig::default().with_failpoints(fp),
    )
    .unwrap();
    let twin = service();
    let mut victim = bounded_client(&server, ClientConfig::default());
    assert_eq!(victim.ping().unwrap(), Reply::Answered(()));
    match victim.query(&query(1, Semantics::Exists)) {
        Err(ClientError::Timeout) => panic!("cut reply must close, not hang"),
        Err(_) => {}
        Ok(reply) => panic!("a 3-byte frame cannot decode, got {reply:?}"),
    }
    // Other connections are untouched.
    let mut clean = bounded_client(&server, ClientConfig::default());
    let q = query(2, Semantics::Exists);
    let over_wire = clean.query(&q).unwrap().answered().unwrap();
    let (expected, _) = twin.execute_batch(std::slice::from_ref(&q));
    assert_eq!(over_wire, expected[0].transitions);
    drop(server.stop());
}

/// Satellite 1's proof: a blocking read gives up after the configured
/// timeout with a typed [`ClientError::Timeout`] instead of blocking
/// forever on a stalled executor.
#[test]
fn blocking_reads_time_out_typed_on_a_stalled_server() {
    let fp = FaultPlan::new(0x71E)
        .delay(
            SERVER_EXECUTOR_SITE,
            2,
            Duration::from_millis(400).as_nanos() as u64,
        )
        .arm();
    let server = Server::start(
        Backend::Single(service()),
        ServerConfig::default().with_failpoints(fp),
    )
    .unwrap();
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientConfig::default().with_read_timeout(Duration::from_millis(40)),
    )
    .unwrap();
    assert_eq!(client.ping().unwrap(), Reply::Answered(()));
    let err = client.query(&query(1, Semantics::Exists)).unwrap_err();
    assert!(
        matches!(err, ClientError::Timeout),
        "expected a typed timeout, got {err:?}"
    );
    drop(client);
    drop(server.stop());
}
