//! Query workload generators matching Section 7's experimental setup.

use crate::city::City;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rknnt_geo::Point;
use rknnt_graph::{RouteGraph, VertexId};

/// Generates `count` synthetic RkNNT query routes with `len` points and a
/// mean interval of `interval` metres between consecutive points.
///
/// Each query starts at a random route point of the city and grows by
/// appending points one at a time; the heading may rotate by at most ±90°
/// per extension so the query route does not zigzag — exactly the procedure
/// described for the paper's synthetic query set.
pub fn rknnt_queries(
    city: &City,
    count: usize,
    len: usize,
    interval: f64,
    seed: u64,
) -> Vec<Vec<Point>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    if city.routes.is_empty() || len == 0 {
        return queries;
    }
    for _ in 0..count {
        let route = &city.routes[rng.gen_range(0..city.routes.len())];
        let start = route[rng.gen_range(0..route.len())];
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut points = vec![start];
        while points.len() < len {
            // Rotate by at most ±90° (π/2) per extension.
            heading += rng.gen_range(-std::f64::consts::FRAC_PI_2..std::f64::consts::FRAC_PI_2);
            let last = *points.last().expect("non-empty");
            let next = Point::new(
                last.x + interval * heading.cos(),
                last.y + interval * heading.sin(),
            );
            points.push(next);
        }
        queries.push(points);
    }
    queries
}

/// Picks `count` (start, end) vertex pairs whose straight-line distance is
/// approximately `span` metres (within ±`tolerance`), for the MaxRkNNT
/// experiments parameterised by ψ(se).
///
/// Falls back to the vertex whose distance is closest to the requested span
/// when no vertex lands inside the tolerance band, so the workload never
/// comes back empty on small graphs.
pub fn plan_queries(
    graph: &RouteGraph,
    count: usize,
    span: f64,
    tolerance: f64,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_vertices();
    let mut out = Vec::with_capacity(count);
    if n < 2 {
        return out;
    }
    for _ in 0..count {
        let start = VertexId(rng.gen_range(0..n as u32));
        let sp = graph.position(start);
        let mut best: Option<(VertexId, f64)> = None;
        for end in graph.vertices() {
            if end == start {
                continue;
            }
            let gap = (graph.position(end).distance(&sp) - span).abs();
            match best {
                Some((_, b)) if b <= gap => {}
                _ => best = Some((end, gap)),
            }
        }
        if let Some((end, gap)) = best {
            if gap <= tolerance || tolerance <= 0.0 {
                out.push((start, end));
            } else {
                out.push((start, end)); // best effort on sparse graphs
            }
        }
    }
    out
}

/// Takes every existing route of the city as a query (the "real route
/// queries" of Figures 16 and 20), optionally truncated to at most
/// `max_queries` routes for time-boxed runs.
pub fn real_route_queries(city: &City, max_queries: usize) -> Vec<Vec<Point>> {
    city.routes.iter().take(max_queries).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, CityGenerator};
    use rknnt_geo::travel_distance;

    fn city() -> City {
        CityGenerator::new(CityConfig::small(2)).generate()
    }

    #[test]
    fn rknnt_queries_have_requested_shape() {
        let city = city();
        let queries = rknnt_queries(&city, 50, 5, 1_000.0, 4);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.len(), 5);
            // Interval is exact by construction: ψ(Q)/(|Q|-1) == interval.
            let psi = travel_distance(q);
            assert!((psi / 4.0 - 1_000.0).abs() < 1e-6);
        }
        // Determinism.
        assert_eq!(queries, rknnt_queries(&city, 50, 5, 1_000.0, 4));
        assert_ne!(queries, rknnt_queries(&city, 50, 5, 1_000.0, 5));
    }

    #[test]
    fn plan_queries_hit_the_requested_span() {
        let city = city();
        let graph = city.graph();
        let span = 6_000.0;
        let pairs = plan_queries(&graph, 20, span, 1_500.0, 7);
        assert_eq!(pairs.len(), 20);
        for (s, e) in pairs {
            assert_ne!(s, e);
            let d = graph.position(s).distance(&graph.position(e));
            assert!(
                (d - span).abs() < 2_000.0,
                "span {d} too far from requested {span}"
            );
        }
    }

    #[test]
    fn real_route_queries_truncate() {
        let city = city();
        let all = real_route_queries(&city, usize::MAX);
        assert_eq!(all.len(), city.num_routes());
        let some = real_route_queries(&city, 10);
        assert_eq!(some.len(), 10);
        assert_eq!(some[3], city.routes[3]);
    }

    #[test]
    fn degenerate_inputs() {
        let city = city();
        assert!(rknnt_queries(&city, 5, 0, 100.0, 1)
            .iter()
            .all(|q| q.is_empty()));
        let empty_graph = RouteGraph::new();
        assert!(plan_queries(&empty_graph, 5, 100.0, 10.0, 1).is_empty());
    }
}
