//! Query workload generators matching Section 7's experimental setup.

use crate::city::City;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rknnt_geo::Point;
use rknnt_graph::{RouteGraph, VertexId};

/// Generates `count` synthetic RkNNT query routes with `len` points and a
/// mean interval of `interval` metres between consecutive points.
///
/// Each query starts at a random route point of the city and grows by
/// appending points one at a time; the heading may rotate by at most ±90°
/// per extension so the query route does not zigzag — exactly the procedure
/// described for the paper's synthetic query set.
pub fn rknnt_queries(
    city: &City,
    count: usize,
    len: usize,
    interval: f64,
    seed: u64,
) -> Vec<Vec<Point>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    if city.routes.is_empty() || len == 0 {
        return queries;
    }
    for _ in 0..count {
        let route = &city.routes[rng.gen_range(0..city.routes.len())];
        let start = route[rng.gen_range(0..route.len())];
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut points = vec![start];
        while points.len() < len {
            // Rotate by at most ±90° (π/2) per extension.
            heading += rng.gen_range(-std::f64::consts::FRAC_PI_2..std::f64::consts::FRAC_PI_2);
            let last = *points.last().expect("non-empty");
            let next = Point::new(
                last.x + interval * heading.cos(),
                last.y + interval * heading.sin(),
            );
            points.push(next);
        }
        queries.push(points);
    }
    queries
}

/// Picks `count` (start, end) vertex pairs whose straight-line distance is
/// approximately `span` metres (within ±`tolerance`), for the MaxRkNNT
/// experiments parameterised by ψ(se).
///
/// Falls back to the vertex whose distance is closest to the requested span
/// when no vertex lands inside the tolerance band, so the workload never
/// comes back empty on small graphs.
pub fn plan_queries(
    graph: &RouteGraph,
    count: usize,
    span: f64,
    tolerance: f64,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_vertices();
    let mut out = Vec::with_capacity(count);
    if n < 2 {
        return out;
    }
    for _ in 0..count {
        let start = VertexId(rng.gen_range(0..n as u32));
        let sp = graph.position(start);
        let mut best: Option<(VertexId, f64)> = None;
        for end in graph.vertices() {
            if end == start {
                continue;
            }
            let gap = (graph.position(end).distance(&sp) - span).abs();
            match best {
                Some((_, b)) if b <= gap => {}
                _ => best = Some((end, gap)),
            }
        }
        if let Some((end, gap)) = best {
            if gap <= tolerance || tolerance <= 0.0 {
                out.push((start, end));
            } else {
                out.push((start, end)); // best effort on sparse graphs
            }
        }
    }
    out
}

/// One event of a [`churn_stream`]: a query to answer or a store update to
/// apply. Update events that reference existing objects (expiry / route
/// removal) carry a raw random draw instead of a concrete id, because the
/// generator cannot know which ids the consumer's store will assign; the
/// consumer resolves the draw against its current live-id list (for example
/// `live[draw as usize % live.len()]`), which keeps the stream fully
/// deterministic for a deterministic consumer.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// Answer an RkNNT query over the given route.
    Query(Vec<Point>),
    /// A new transition arrives with these endpoints.
    InsertTransition(Point, Point),
    /// An existing transition expires; resolve the draw against the live
    /// transition ids.
    ExpireTransition(u64),
    /// A new route appears.
    InsertRoute(Vec<Point>),
    /// An existing route is withdrawn; resolve the draw against the live
    /// route ids.
    RemoveRoute(u64),
}

/// Shape of a [`churn_stream`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Total number of events (queries + updates).
    pub events: usize,
    /// Fraction of events that are store updates (0.0 – 1.0).
    pub update_ratio: f64,
    /// Fraction of *updates* that touch routes rather than transitions
    /// (lines change rarely; passenger requests churn constantly).
    pub route_update_fraction: f64,
    /// Number of distinct query routes cycled by the query events (small
    /// pools model popular routes queried repeatedly — the shape that makes
    /// caching matter).
    pub query_pool: usize,
    /// Points per query route.
    pub query_len: usize,
    /// Mean interval between consecutive query points, in metres.
    pub query_interval: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// A stream of `events` events at the given update ratio, with
    /// paper-shaped defaults: transition-dominated updates (5% of updates
    /// touch routes), a pool of 12 popular query routes of 4 points.
    pub fn new(events: usize, update_ratio: f64, seed: u64) -> Self {
        ChurnConfig {
            events,
            update_ratio,
            route_update_fraction: 0.05,
            query_pool: 12,
            query_len: 4,
            query_interval: 1_000.0,
            seed,
        }
    }
}

/// Samples a transition endpoint: jittered around a random stop of a random
/// route with a uniform background, mirroring the check-in-shaped transition
/// generator. Shared by [`churn_stream`] and [`subscription_stream`].
fn sample_endpoint(city: &City, rng: &mut StdRng) -> Point {
    let area = city.config.area();
    if rng.gen_range(0.0..1.0) < 0.15 {
        // Uniform background.
        Point::new(
            rng.gen_range(area.min.x..area.max.x),
            rng.gen_range(area.min.y..area.max.y),
        )
    } else {
        // Jittered around a random stop of a random route.
        let route = &city.routes[rng.gen_range(0..city.routes.len())];
        let stop = route[rng.gen_range(0..route.len())];
        Point::new(
            stop.x + rng.gen_range(-600.0..600.0),
            stop.y + rng.gen_range(-600.0..600.0),
        )
    }
}

/// Samples one store-update event (never a query), preserving the
/// transition-dominated mix of [`churn_stream`].
fn sample_update(city: &City, rng: &mut StdRng, route_update_fraction: f64) -> ChurnEvent {
    if rng.gen_range(0.0..1.0) < route_update_fraction {
        if rng.gen_range(0.0..1.0) < 0.7 {
            // A short new line: a straight-ish walk between stops.
            let from = sample_endpoint(city, rng);
            let heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let points: Vec<Point> = (0..rng.gen_range(3..7))
                .map(|i| {
                    let d = i as f64 * city.config.stop_spacing;
                    Point::new(from.x + d * heading.cos(), from.y + d * heading.sin())
                })
                .collect();
            ChurnEvent::InsertRoute(points)
        } else {
            ChurnEvent::RemoveRoute(rng.gen_range(0..u64::MAX))
        }
    } else if rng.gen_range(0.0..1.0) < 0.55 {
        ChurnEvent::InsertTransition(sample_endpoint(city, rng), sample_endpoint(city, rng))
    } else {
        ChurnEvent::ExpireTransition(rng.gen_range(0..u64::MAX))
    }
}

/// Generates an interleaved query/update stream over a city — the
/// update-heavy serving workload where "old transitions expire and new
/// transitions arrive" (and, rarely, bus lines change).
///
/// Update endpoints are sampled near random route stops with Gaussian-ish
/// jitter plus a uniform background, mirroring the check-in-shaped
/// transition generator; inserted routes are short lattice walks like the
/// city's own. The stream is deterministic in the configuration.
pub fn churn_stream(city: &City, config: &ChurnConfig) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.events);
    if city.routes.is_empty() || config.events == 0 {
        return events;
    }
    let pool = rknnt_queries(
        city,
        config.query_pool.max(1),
        config.query_len.max(1),
        config.query_interval,
        config.seed ^ 0xc0ffee,
    );
    let mut query_cursor = 0usize;
    // Inserts outnumber expiries slightly so the store never drains.
    for _ in 0..config.events {
        if rng.gen_range(0.0..1.0) < config.update_ratio {
            events.push(sample_update(city, &mut rng, config.route_update_fraction));
        } else {
            events.push(ChurnEvent::Query(pool[query_cursor % pool.len()].clone()));
            query_cursor += 1;
        }
    }
    events
}

/// One event of a [`subscription_stream`]: manage a standing query or apply
/// a store update. As in [`ChurnEvent`], events referencing existing objects
/// carry a raw random draw the consumer resolves against its live-id list.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionEvent {
    /// Register a standing RkNNT query over the given route.
    Subscribe(Vec<Point>),
    /// Drop a standing query; resolve the draw against the live
    /// subscription ids.
    Unsubscribe(u64),
    /// Apply a store update (never [`ChurnEvent::Query`]); queries stay
    /// one-shot and are not part of this stream — a consumer interleaving
    /// both can zip a [`churn_stream`] alongside.
    Update(ChurnEvent),
}

/// Shape of a [`subscription_stream`].
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionStreamConfig {
    /// Total number of events.
    pub events: usize,
    /// Fraction of events that manage subscriptions rather than mutate the
    /// stores (split ~70 % subscribe / 30 % unsubscribe).
    pub subscribe_ratio: f64,
    /// Subscriptions registered up front, before any update flows.
    pub initial_subscriptions: usize,
    /// Fraction of *updates* that touch routes rather than transitions.
    pub route_update_fraction: f64,
    /// Points per standing-query route.
    pub query_len: usize,
    /// Mean interval between consecutive query points, in metres.
    pub query_interval: f64,
    /// Number of distinct routes the subscribe events cycle through (repeat
    /// subscriptions model popular corridors watched by many dashboards —
    /// the shape that makes shared-filter re-execution matter).
    pub query_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SubscriptionStreamConfig {
    /// A stream of `events` events at the given subscribe ratio, with
    /// paper-shaped defaults matching [`ChurnConfig::new`]: 8 initial
    /// subscriptions, transition-dominated updates, a pool of 12 query
    /// routes of 4 points.
    pub fn new(events: usize, subscribe_ratio: f64, seed: u64) -> Self {
        SubscriptionStreamConfig {
            events,
            subscribe_ratio,
            initial_subscriptions: 8,
            route_update_fraction: 0.05,
            query_len: 4,
            query_interval: 1_000.0,
            query_pool: 12,
            seed,
        }
    }
}

/// Generates a subscription-management/update stream over a city: the
/// continuous-monitoring workload where standing queries come and go while
/// the stores churn underneath them. Deterministic in the configuration.
pub fn subscription_stream(
    city: &City,
    config: &SubscriptionStreamConfig,
) -> Vec<SubscriptionEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.events);
    if city.routes.is_empty() || config.events == 0 {
        return events;
    }
    let pool = rknnt_queries(
        city,
        config.query_pool.max(1),
        config.query_len.max(1),
        config.query_interval,
        config.seed ^ 0x5ab5c41b,
    );
    let mut pool_cursor = 0usize;
    let subscribe = |cursor: &mut usize| {
        let route = pool[*cursor % pool.len()].clone();
        *cursor += 1;
        SubscriptionEvent::Subscribe(route)
    };
    for _ in 0..config.initial_subscriptions.min(config.events) {
        events.push(subscribe(&mut pool_cursor));
    }
    while events.len() < config.events {
        if rng.gen_range(0.0..1.0) < config.subscribe_ratio {
            if rng.gen_range(0.0..1.0) < 0.7 {
                events.push(subscribe(&mut pool_cursor));
            } else {
                events.push(SubscriptionEvent::Unsubscribe(rng.gen_range(0..u64::MAX)));
            }
        } else {
            events.push(SubscriptionEvent::Update(sample_update(
                city,
                &mut rng,
                config.route_update_fraction,
            )));
        }
    }
    events
}

/// Takes every existing route of the city as a query (the "real route
/// queries" of Figures 16 and 20), optionally truncated to at most
/// `max_queries` routes for time-boxed runs.
pub fn real_route_queries(city: &City, max_queries: usize) -> Vec<Vec<Point>> {
    city.routes.iter().take(max_queries).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, CityGenerator};
    use rknnt_geo::travel_distance;

    fn city() -> City {
        CityGenerator::new(CityConfig::small(2)).generate()
    }

    #[test]
    fn rknnt_queries_have_requested_shape() {
        let city = city();
        let queries = rknnt_queries(&city, 50, 5, 1_000.0, 4);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.len(), 5);
            // Interval is exact by construction: ψ(Q)/(|Q|-1) == interval.
            let psi = travel_distance(q);
            assert!((psi / 4.0 - 1_000.0).abs() < 1e-6);
        }
        // Determinism.
        assert_eq!(queries, rknnt_queries(&city, 50, 5, 1_000.0, 4));
        assert_ne!(queries, rknnt_queries(&city, 50, 5, 1_000.0, 5));
    }

    #[test]
    fn plan_queries_hit_the_requested_span() {
        let city = city();
        let graph = city.graph();
        let span = 6_000.0;
        let pairs = plan_queries(&graph, 20, span, 1_500.0, 7);
        assert_eq!(pairs.len(), 20);
        for (s, e) in pairs {
            assert_ne!(s, e);
            let d = graph.position(s).distance(&graph.position(e));
            assert!(
                (d - span).abs() < 2_000.0,
                "span {d} too far from requested {span}"
            );
        }
    }

    #[test]
    fn real_route_queries_truncate() {
        let city = city();
        let all = real_route_queries(&city, usize::MAX);
        assert_eq!(all.len(), city.num_routes());
        let some = real_route_queries(&city, 10);
        assert_eq!(some.len(), 10);
        assert_eq!(some[3], city.routes[3]);
    }

    #[test]
    fn churn_stream_is_deterministic_and_respects_the_mix() {
        let city = city();
        let config = ChurnConfig::new(400, 0.10, 21);
        let a = churn_stream(&city, &config);
        let b = churn_stream(&city, &config);
        assert_eq!(a.len(), 400);
        assert_eq!(a, b, "same config must generate the same stream");
        assert_ne!(a, churn_stream(&city, &ChurnConfig::new(400, 0.10, 22)));

        let updates = a
            .iter()
            .filter(|e| !matches!(e, ChurnEvent::Query(_)))
            .count();
        let ratio = updates as f64 / a.len() as f64;
        assert!(
            (0.03..0.25).contains(&ratio),
            "update ratio {ratio} far from requested 0.10"
        );
        // Transition churn dominates route churn.
        let route_updates = a
            .iter()
            .filter(|e| matches!(e, ChurnEvent::InsertRoute(_) | ChurnEvent::RemoveRoute(_)))
            .count();
        assert!(route_updates * 2 < updates.max(1));
        // Queries cycle a small pool: repetition is guaranteed.
        let queries: Vec<&Vec<Point>> = a
            .iter()
            .filter_map(|e| match e {
                ChurnEvent::Query(q) => Some(q),
                _ => None,
            })
            .collect();
        assert!(queries.len() > config.query_pool);
        assert_eq!(queries[0], queries[config.query_pool]);
        // All generated geometry is finite.
        for e in &a {
            match e {
                ChurnEvent::Query(q) | ChurnEvent::InsertRoute(q) => {
                    assert!(q.iter().all(Point::is_finite))
                }
                ChurnEvent::InsertTransition(o, d) => {
                    assert!(o.is_finite() && d.is_finite())
                }
                ChurnEvent::ExpireTransition(_) | ChurnEvent::RemoveRoute(_) => {}
            }
        }
    }

    #[test]
    fn subscription_stream_is_deterministic_and_respects_the_mix() {
        let city = city();
        let config = SubscriptionStreamConfig::new(300, 0.2, 9);
        let a = subscription_stream(&city, &config);
        assert_eq!(a.len(), 300);
        assert_eq!(a, subscription_stream(&city, &config), "determinism");
        assert_ne!(
            a,
            subscription_stream(&city, &SubscriptionStreamConfig::new(300, 0.2, 10))
        );

        // The stream opens with the initial subscriptions.
        for event in a.iter().take(config.initial_subscriptions) {
            assert!(matches!(event, SubscriptionEvent::Subscribe(_)));
        }
        let subs = a
            .iter()
            .filter(|e| matches!(e, SubscriptionEvent::Subscribe(_)))
            .count();
        let unsubs = a
            .iter()
            .filter(|e| matches!(e, SubscriptionEvent::Unsubscribe(_)))
            .count();
        let updates = a
            .iter()
            .filter(|e| matches!(e, SubscriptionEvent::Update(_)))
            .count();
        assert_eq!(subs + unsubs + updates, 300);
        assert!(subs > unsubs, "subscribe outnumbers unsubscribe");
        assert!(updates > subs, "updates dominate at a 0.2 subscribe ratio");
        // Updates never contain one-shot queries, and subscribe routes have
        // the configured shape.
        for event in &a {
            match event {
                SubscriptionEvent::Update(u) => {
                    assert!(!matches!(u, ChurnEvent::Query(_)))
                }
                SubscriptionEvent::Subscribe(route) => {
                    assert_eq!(route.len(), config.query_len);
                    assert!(route.iter().all(Point::is_finite));
                }
                SubscriptionEvent::Unsubscribe(_) => {}
            }
        }
        // The pool cycles: repeat subscriptions for popular corridors.
        let routes: Vec<&Vec<Point>> = a
            .iter()
            .filter_map(|e| match e {
                SubscriptionEvent::Subscribe(r) => Some(r),
                _ => None,
            })
            .collect();
        if routes.len() > config.query_pool {
            assert_eq!(routes[0], routes[config.query_pool]);
        }
        // Degenerate inputs come back empty.
        assert!(subscription_stream(&city, &SubscriptionStreamConfig::new(0, 0.2, 1)).is_empty());
    }

    #[test]
    fn degenerate_inputs() {
        let city = city();
        assert!(rknnt_queries(&city, 5, 0, 100.0, 1)
            .iter()
            .all(|q| q.is_empty()));
        let empty_graph = RouteGraph::new();
        assert!(plan_queries(&empty_graph, 5, 100.0, 10.0, 1).is_empty());
    }
}
