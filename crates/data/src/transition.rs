//! Synthetic passenger transitions (the Foursquare check-in substitute).

use crate::city::City;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rknnt_geo::Point;
use rknnt_index::TransitionStore;
use rknnt_rtree::RTreeConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic transition set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionConfig {
    /// Number of transitions to generate.
    pub count: usize,
    /// Number of Gaussian hot-spots (popular venues / transit hubs).
    pub hotspots: usize,
    /// Standard deviation of each hot-spot cloud, in metres.
    pub hotspot_std: f64,
    /// Fraction of endpoints drawn uniformly over the whole city instead of
    /// from a hot-spot (0.0 – 1.0).
    pub background_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TransitionConfig {
    /// A transition set shaped like the paper's check-in data: strongly
    /// clustered around hubs with a thin uniform background (Figure 8).
    pub fn checkin_like(count: usize, seed: u64) -> Self {
        TransitionConfig {
            count,
            hotspots: 40,
            hotspot_std: 600.0,
            background_fraction: 0.15,
            seed,
        }
    }

    /// A fully uniform transition set (useful as an ablation).
    pub fn uniform(count: usize, seed: u64) -> Self {
        TransitionConfig {
            count,
            hotspots: 0,
            hotspot_std: 1.0,
            background_fraction: 1.0,
            seed,
        }
    }
}

/// Generates origin/destination transition pairs over a [`City`].
#[derive(Debug, Clone)]
pub struct TransitionGenerator {
    config: TransitionConfig,
}

impl TransitionGenerator {
    /// Creates a generator.
    pub fn new(config: TransitionConfig) -> Self {
        TransitionGenerator { config }
    }

    /// Generates the `(origin, destination)` pairs for `city`.
    ///
    /// Hot-spot centres are sampled from the city's bus stops (people travel
    /// between places that are served by transit); each endpoint is either a
    /// Gaussian sample around a hot-spot or a uniform background point.
    /// Origins and destinations use different hot-spots, mimicking home→work
    /// style movement between areas of the city.
    pub fn generate(&self, city: &City) -> Vec<(Point, Point)> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let area = city.config.area();

        // Hot-spot centres: random stops of random routes.
        let mut hubs: Vec<Point> = Vec::with_capacity(cfg.hotspots);
        if cfg.hotspots > 0 && !city.routes.is_empty() {
            for _ in 0..cfg.hotspots {
                let route = &city.routes[rng.gen_range(0..city.routes.len())];
                hubs.push(route[rng.gen_range(0..route.len())]);
            }
        }

        let sample_endpoint = |rng: &mut StdRng| -> Point {
            let background = hubs.is_empty() || rng.gen::<f64>() < cfg.background_fraction;
            if background {
                Point::new(
                    rng.gen_range(area.min.x..=area.max.x),
                    rng.gen_range(area.min.y..=area.max.y),
                )
            } else {
                let hub = hubs[rng.gen_range(0..hubs.len())];
                // Box–Muller gaussian around the hub.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let r = (-2.0 * u1.ln()).sqrt() * cfg.hotspot_std;
                let theta = 2.0 * std::f64::consts::PI * u2;
                Point::new(hub.x + r * theta.cos(), hub.y + r * theta.sin())
            }
        };

        (0..cfg.count)
            .map(|_| {
                let origin = sample_endpoint(&mut rng);
                let destination = sample_endpoint(&mut rng);
                (origin, destination)
            })
            .collect()
    }

    /// Convenience: generates the pairs and bulk-loads a TR-tree store.
    pub fn generate_store(&self, city: &City) -> TransitionStore {
        TransitionStore::bulk_build(RTreeConfig::default(), self.generate(city))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, CityGenerator};

    fn city() -> City {
        CityGenerator::new(CityConfig::small(1)).generate()
    }

    #[test]
    fn deterministic_and_correct_count() {
        let city = city();
        let cfg = TransitionConfig::checkin_like(500, 9);
        let a = TransitionGenerator::new(cfg.clone()).generate(&city);
        let b = TransitionGenerator::new(cfg).generate(&city);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
        let store =
            TransitionGenerator::new(TransitionConfig::checkin_like(200, 2)).generate_store(&city);
        assert_eq!(store.len(), 200);
        assert_eq!(store.rtree().len(), 400);
    }

    #[test]
    fn clustered_data_is_denser_than_uniform_near_hubs() {
        // The check-in-like generator should concentrate mass: the average
        // nearest-stop distance of its endpoints is smaller than for the
        // uniform generator.
        let city = city();
        let clustered =
            TransitionGenerator::new(TransitionConfig::checkin_like(400, 3)).generate(&city);
        let uniform = TransitionGenerator::new(TransitionConfig::uniform(400, 3)).generate(&city);
        let store = city.route_store();
        let mean_stop_dist = |pairs: &[(Point, Point)]| {
            let mut total = 0.0;
            let mut n = 0usize;
            for (o, d) in pairs {
                for p in [o, d] {
                    if let Some(hit) = store.rtree().nearest(p) {
                        total += hit.distance;
                        n += 1;
                    }
                }
            }
            total / n as f64
        };
        assert!(mean_stop_dist(&clustered) < mean_stop_dist(&uniform));
    }

    #[test]
    fn uniform_endpoints_stay_in_area() {
        let city = city();
        let pairs = TransitionGenerator::new(TransitionConfig::uniform(300, 5)).generate(&city);
        let area = city.config.area();
        for (o, d) in pairs {
            assert!(area.contains_point(&o));
            assert!(area.contains_point(&d));
        }
    }
}
