//! Dataset summaries reported by the paper's figures.
//!
//! * Figure 6 / 17: frequency histograms of the detour ratio, of the
//!   straight-line span ψ(se), of the mean stop interval and of the number
//!   of stops per route.
//! * Figure 8: heatmaps of routes and transitions, reported here as a coarse
//!   density grid.

use crate::city::City;
use rknnt_geo::{detour_ratio, mean_interval, straight_line_distance, Point, Rect};
use serde::{Deserialize, Serialize};

/// A simple frequency histogram over equally wide buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Width of each bucket.
    pub bucket_width: f64,
    /// Lower bound of the first bucket.
    pub origin: f64,
    /// Bucket counts.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram of `values` using buckets of width `bucket_width`
    /// starting at `origin`. Values below the origin are clamped into the
    /// first bucket.
    pub fn build(values: &[f64], origin: f64, bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        let mut counts = Vec::new();
        for v in values {
            let idx = (((v - origin) / bucket_width).floor().max(0.0)) as usize;
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
        Histogram {
            bucket_width,
            origin,
            counts,
        }
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// `(bucket_lower_bound, count)` rows for printing.
    pub fn rows(&self) -> Vec<(f64, usize)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| (self.origin + i as f64 * self.bucket_width, *c))
            .collect()
    }
}

/// Per-route summary statistics (the three histograms of Figure 17 plus the
/// detour ratio of Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RouteStats {
    /// Detour ratios ψ(R) / straight-line(R) per route (Figure 6).
    pub detour_ratios: Vec<f64>,
    /// Straight-line distance between first and last stop per route, ψ(se).
    pub spans: Vec<f64>,
    /// Mean stop interval ψ(R)/|R| per route.
    pub intervals: Vec<f64>,
    /// Number of stops per route.
    pub stop_counts: Vec<usize>,
}

/// Computes the per-route statistics of a city.
pub fn route_stats(city: &City) -> RouteStats {
    let mut stats = RouteStats::default();
    for route in &city.routes {
        if let Some(r) = detour_ratio(route) {
            stats.detour_ratios.push(r);
        }
        stats.spans.push(straight_line_distance(route));
        stats.intervals.push(mean_interval(route));
        stats.stop_counts.push(route.len());
    }
    stats
}

/// A coarse `nx × ny` density grid over `area` counting how many of `points`
/// fall into each cell — the textual stand-in for the heatmaps of Figure 8.
pub fn density_grid(points: &[Point], area: &Rect, nx: usize, ny: usize) -> Vec<Vec<usize>> {
    assert!(nx > 0 && ny > 0);
    let mut grid = vec![vec![0usize; nx]; ny];
    let w = area.width().max(f64::EPSILON);
    let h = area.height().max(f64::EPSILON);
    for p in points {
        if !area.contains_point(p) {
            continue;
        }
        let cx = (((p.x - area.min.x) / w) * nx as f64).min(nx as f64 - 1.0) as usize;
        let cy = (((p.y - area.min.y) / h) * ny as f64).min(ny as f64 - 1.0) as usize;
        grid[cy][cx] += 1;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, CityGenerator};

    #[test]
    fn histogram_buckets_and_totals() {
        let h = Histogram::build(&[0.5, 1.4, 1.6, 2.9, 3.0], 0.0, 1.0);
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
        let rows = h.rows();
        assert_eq!(rows[1], (1.0, 2));
        // Values below the origin are clamped.
        let h2 = Histogram::build(&[-3.0, 0.2], 0.0, 1.0);
        assert_eq!(h2.counts[0], 2);
    }

    #[test]
    fn route_stats_match_paper_shape() {
        // Figure 6: the detour ratio of real bus routes rarely exceeds ~3;
        // our generator must land in the same regime.
        let city = CityGenerator::new(CityConfig::small(4)).generate();
        let stats = route_stats(&city);
        assert_eq!(stats.stop_counts.len(), city.num_routes());
        assert!(!stats.detour_ratios.is_empty());
        for r in &stats.detour_ratios {
            assert!(*r >= 1.0 - 1e-9);
        }
        let median = {
            let mut v = stats.detour_ratios.clone();
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        assert!(median < 5.0, "median detour ratio {median} is implausible");
        // Intervals hover around the configured stop spacing.
        let mean_interval: f64 = stats.intervals.iter().sum::<f64>() / stats.intervals.len() as f64;
        assert!((mean_interval - city.config.stop_spacing).abs() < city.config.stop_spacing);
    }

    #[test]
    fn density_grid_counts_points_once() {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let points = vec![
            Point::new(1.0, 1.0),
            Point::new(9.5, 9.5),
            Point::new(5.0, 5.0),
            Point::new(50.0, 50.0), // outside
        ];
        let grid = density_grid(&points, &area, 2, 2);
        let total: usize = grid.iter().flatten().sum();
        assert_eq!(total, 3);
        assert_eq!(grid[0][0], 1);
        assert_eq!(grid[1][1], 2);
    }
}
