//! CSV import/export for routes and transitions.
//!
//! The format is deliberately simple so that real GTFS-derived data (what the
//! paper uses) can be converted with a few lines of scripting and dropped
//! into the benchmark harness:
//!
//! * Routes: one line per route, `route_id,x1,y1,x2,y2,...`
//! * Transitions: one line per transition, `ox,oy,dx,dy`

use rknnt_geo::Point;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes routes in the one-line-per-route CSV format.
pub fn write_routes<W: Write>(writer: W, routes: &[Vec<Point>]) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    for (id, route) in routes.iter().enumerate() {
        write!(out, "{id}")?;
        for p in route {
            write!(out, ",{},{}", p.x, p.y)?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Reads routes written by [`write_routes`]. Lines that are empty or start
/// with `#` are skipped; malformed lines produce an error naming the line.
pub fn read_routes<R: Read>(reader: R) -> io::Result<Vec<Vec<Point>>> {
    let mut routes = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 5 || !(fields.len() - 1).is_multiple_of(2) {
            return Err(malformed(lineno, "expected route_id followed by x,y pairs"));
        }
        let mut points = Vec::with_capacity((fields.len() - 1) / 2);
        for chunk in fields[1..].chunks(2) {
            points.push(Point::new(
                parse(lineno, chunk[0])?,
                parse(lineno, chunk[1])?,
            ));
        }
        routes.push(points);
    }
    Ok(routes)
}

/// Writes transitions in the `ox,oy,dx,dy` CSV format.
pub fn write_transitions<W: Write>(writer: W, pairs: &[(Point, Point)]) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    for (o, d) in pairs {
        writeln!(out, "{},{},{},{}", o.x, o.y, d.x, d.y)?;
    }
    out.flush()
}

/// Reads transitions written by [`write_transitions`].
pub fn read_transitions<R: Read>(reader: R) -> io::Result<Vec<(Point, Point)>> {
    let mut pairs = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 4 {
            return Err(malformed(lineno, "expected ox,oy,dx,dy"));
        }
        pairs.push((
            Point::new(parse(lineno, fields[0])?, parse(lineno, fields[1])?),
            Point::new(parse(lineno, fields[2])?, parse(lineno, fields[3])?),
        ));
    }
    Ok(pairs)
}

fn parse(lineno: usize, field: &str) -> io::Result<f64> {
    field
        .trim()
        .parse::<f64>()
        .map_err(|e| malformed(lineno, &format!("bad number {field:?}: {e}")))
}

fn malformed(lineno: usize, message: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {message}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn routes_roundtrip() {
        let routes = vec![
            vec![p(0.0, 0.0), p(10.5, -3.25), p(20.0, 0.0)],
            vec![p(1.0, 1.0), p(2.0, 2.0)],
        ];
        let mut buffer = Vec::new();
        write_routes(&mut buffer, &routes).unwrap();
        let back = read_routes(buffer.as_slice()).unwrap();
        assert_eq!(back, routes);
    }

    #[test]
    fn transitions_roundtrip_with_comments() {
        let pairs = vec![(p(1.0, 2.0), p(3.0, 4.0)), (p(-1.0, 0.5), p(0.0, 0.0))];
        let mut buffer = Vec::new();
        write_transitions(&mut buffer, &pairs).unwrap();
        let mut text = String::from_utf8(buffer).unwrap();
        text.insert_str(0, "# comment line\n\n");
        let back = read_transitions(text.as_bytes()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = read_transitions("1,2,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_routes("0,1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_transitions("a,b,c,d\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad number"));
    }
}
