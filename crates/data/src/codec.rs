//! Hand-rolled little-endian binary codec shared by the durable storage
//! engine (`rknnt-storage`) and the dataset save/load path of the bench
//! harness.
//!
//! The hermetic build environment has no serde backend (the in-tree `serde`
//! shim only supplies the derive surface), so everything that must hit disk
//! is encoded through this module instead: fixed-width little-endian
//! integers, IEEE-754 bit patterns for floats, `u64` length prefixes for
//! strings and sequences. The format is deliberately boring — byte-stable
//! across platforms, no varints, no padding — because snapshot round-trip
//! *byte-identity* is a tested invariant of the storage engine.
//!
//! Decoding is defensive: every read is bounds-checked and every declared
//! length is validated against the bytes actually remaining, so a corrupted
//! (but checksum-colliding) payload produces a [`CodecError`] instead of an
//! allocation blow-up or a panic.

use rknnt_geo::Point;
use std::fmt;

/// Error produced by a failed decode: where in the buffer it happened and
/// what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which the decode failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decode operations.
pub type CodecResult<T> = Result<T, CodecError>;

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder over an owned byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the on-disk format is 64-bit regardless
    /// of the host).
    pub fn len_prefix(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern. `NaN` payloads survive
    /// exactly, which is what makes encode→decode→encode byte-identical.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.len_prefix(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a point as two `f64`s.
    pub fn point(&mut self, p: &Point) {
        self.f64(p.x);
        self.f64(p.y);
    }

    /// Appends a point sequence with a `u64` length prefix.
    pub fn points(&mut self, ps: &[Point]) {
        self.len_prefix(ps.len());
        for p in ps {
            self.point(p);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian decoder over a borrowed byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless every byte has been consumed — trailing garbage after a
    /// structurally valid payload is corruption too.
    pub fn expect_exhausted(&self) -> CodecResult<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(self.error(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn error(&self, detail: impl Into<String>) -> CodecError {
        CodecError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.error(format!(
                "need {n} bytes for {what}, only {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` that holds a plain `usize` scalar (not a length).
    pub fn usize(&mut self) -> CodecResult<usize> {
        let start = self.pos;
        let raw = self.u64()?;
        usize::try_from(raw).map_err(|_| CodecError {
            offset: start,
            detail: format!("value {raw} does not fit usize"),
        })
    }

    /// Reads a `u64` length prefix, validating it against the bytes that
    /// remain: each of the `min_elem_bytes`-sized elements it promises must
    /// actually be present (`min_elem_bytes >= 1`), so corrupted lengths
    /// fail fast instead of driving a huge allocation.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> CodecResult<usize> {
        let start = self.pos;
        let len = self.usize()?;
        let need = len.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(CodecError {
                offset: start,
                detail: format!(
                    "declared length {len} needs {need} bytes, only {} remain",
                    self.remaining()
                ),
            });
        }
        Ok(len)
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte; anything but 0/1 is corruption.
    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.error(format!("bad bool byte {other}"))),
        }
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> CodecResult<&'a [u8]> {
        let len = self.len_prefix(1)?;
        self.take(len, "bytes body")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let start = self.pos;
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|e| CodecError {
            offset: start,
            detail: format!("invalid UTF-8: {e}"),
        })
    }

    /// Reads a point.
    pub fn point(&mut self) -> CodecResult<Point> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }

    /// Reads a length-prefixed point sequence. Bounds are checked once for
    /// the whole run, so the per-point loop is branch-free — this is the
    /// hot path of snapshot restoration.
    pub fn points(&mut self) -> CodecResult<Vec<Point>> {
        let len = self.len_prefix(16)?;
        let raw = self.take(len * 16, "point run")?;
        Ok(raw
            .chunks_exact(16)
            .map(|chunk| {
                Point::new(
                    f64::from_bits(u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"))),
                    f64::from_bits(u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"))),
                )
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
/// snapshot payload and WAL frame.
///
/// Slicing-by-8: eight table lookups per 8-byte chunk instead of one per
/// byte, which matters because the whole multi-hundred-kilobyte snapshot
/// payload is checksummed on every open and checkpoint.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn tables() -> [[u32; 256]; 8] {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            tables[0][i] = crc;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
                i += 1;
            }
            t += 1;
        }
        tables
    }
    const TABLES: [[u32; 256]; 8] = tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// City codec (dataset save/load)
// ---------------------------------------------------------------------------

use crate::{City, CityConfig};

/// Encodes a [`CityConfig`].
pub fn encode_city_config(enc: &mut Encoder, config: &CityConfig) {
    enc.str(&config.name);
    enc.f64(config.width);
    enc.f64(config.height);
    enc.len_prefix(config.num_routes);
    enc.len_prefix(config.stops_per_route.0);
    enc.len_prefix(config.stops_per_route.1);
    enc.f64(config.stop_spacing);
    enc.u64(config.seed);
}

/// Decodes a [`CityConfig`].
pub fn decode_city_config(dec: &mut Decoder<'_>) -> CodecResult<CityConfig> {
    Ok(CityConfig {
        name: dec.str()?,
        width: dec.f64()?,
        height: dec.f64()?,
        num_routes: dec.usize()?,
        stops_per_route: (dec.usize()?, dec.usize()?),
        stop_spacing: dec.f64()?,
        seed: dec.u64()?,
    })
}

/// Encodes a [`City`] (configuration plus every route).
pub fn encode_city(enc: &mut Encoder, city: &City) {
    encode_city_config(enc, &city.config);
    enc.len_prefix(city.routes.len());
    for route in &city.routes {
        enc.points(route);
    }
}

/// Decodes a [`City`].
pub fn decode_city(dec: &mut Decoder<'_>) -> CodecResult<City> {
    let config = decode_city_config(dec)?;
    let num_routes = dec.len_prefix(8)?;
    let mut routes = Vec::with_capacity(num_routes);
    for _ in 0..num_routes {
        routes.push(dec.points()?);
    }
    Ok(City { config, routes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 3);
        enc.f64(-1.5e300);
        enc.bool(true);
        enc.str("héllo");
        enc.point(&Point::new(3.25, -0.5));
        enc.points(&[Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.f64().unwrap(), -1.5e300);
        assert!(dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "héllo");
        assert_eq!(dec.point().unwrap(), Point::new(3.25, -0.5));
        assert_eq!(
            dec.points().unwrap(),
            vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]
        );
        dec.expect_exhausted().unwrap();
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut enc = Encoder::new();
        enc.f64(weird);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_reads_fail_with_offsets() {
        let mut enc = Encoder::new();
        enc.u64(42);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        let err = dec.u64().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.detail.contains("u64"));
    }

    #[test]
    fn hostile_length_prefixes_are_rejected() {
        // A declared length far beyond the remaining bytes must fail fast.
        let mut enc = Encoder::new();
        enc.u64(u64::MAX / 2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.len_prefix(16).is_err());
        // And a points vector with a hostile prefix too.
        let mut dec = Decoder::new(&bytes);
        assert!(dec.points().is_err());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut enc = Encoder::new();
        enc.u32(1);
        let mut bytes = enc.into_bytes();
        bytes.push(0xAB);
        let mut dec = Decoder::new(&bytes);
        dec.u32().unwrap();
        assert!(dec.expect_exhausted().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_corruption() {
        let mut dec = Decoder::new(&[2]);
        assert!(dec.bool().unwrap_err().detail.contains("bool"));
        let mut enc = Encoder::new();
        enc.bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).str().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn city_roundtrips_byte_identically() {
        let city = crate::CityGenerator::new(CityConfig::small(17)).generate();
        let mut enc = Encoder::new();
        encode_city(&mut enc, &city);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = decode_city(&mut dec).unwrap();
        dec.expect_exhausted().unwrap();
        assert_eq!(back.config, city.config);
        assert_eq!(back.routes, city.routes);
        // Re-encoding is byte-identical — the storage engine's invariant.
        let mut again = Encoder::new();
        encode_city(&mut again, &back);
        assert_eq!(again.into_bytes(), bytes);
    }
}
