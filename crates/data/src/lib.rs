//! Dataset and workload generation for the RkNNT evaluation.
//!
//! The paper evaluates on the NYC and LA GTFS bus networks and on passenger
//! transitions derived from Foursquare check-ins (plus a 10M-transition
//! synthetic set). Those exact datasets are not redistributable with this
//! reproduction, so this crate provides parametric generators that match
//! their *statistical shape* — route counts, stops per route, stop spacing,
//! detour ratios (Figure 6 / 17) and the hot-spot concentration of the
//! check-in heatmaps (Figure 8) — at configurable scale:
//!
//! * [`CityGenerator`] — a synthetic street lattice with arterial corridors;
//!   bus routes are bounded-rotation walks over the lattice, so routes share
//!   stops (which exercises the PList / crossover machinery) and do not
//!   zigzag, exactly like the paper's query generator.
//! * [`TransitionGenerator`] — origin/destination pairs drawn from a mixture
//!   of Gaussian hot-spots around stops plus a uniform background.
//! * [`workload`] — query generators for every experiment: synthetic RkNNT
//!   query routes with controlled |Q| and interval I (Table 4), and
//!   origin/destination pairs with controlled straight-line span ψ(se) for
//!   the MaxRkNNT experiments.
//! * [`stats`] — the histogram and density-grid summaries reported by
//!   Figures 6, 8 and 17.
//! * [`io`] — CSV import/export so real GTFS-derived data can be dropped in
//!   when available.
//! * [`codec`] — the hand-rolled little-endian binary codec (plus CRC-32)
//!   behind the durable storage engine's snapshots/WAL and the bench
//!   harness's `--save-dataset` / `--load-dataset` fast path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod city;
pub mod codec;
pub mod io;
pub mod stats;
mod transition;
pub mod workload;

pub use city::{City, CityConfig, CityGenerator};
pub use transition::{TransitionConfig, TransitionGenerator};
pub use workload::{ChurnConfig, ChurnEvent, SubscriptionEvent, SubscriptionStreamConfig};
