//! Synthetic city and bus-network generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rknnt_geo::{Point, Rect};
use rknnt_graph::RouteGraph;
use rknnt_index::RouteStore;
use rknnt_rtree::RTreeConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic city.
///
/// Defaults are laptop-sized; [`CityConfig::la_like`] and
/// [`CityConfig::nyc_like`] scale the route counts towards the paper's
/// Table 2 (1,208 and 2,022 routes) while keeping stop spacing around
/// 300–500 m, which reproduces the interval distribution of Figure 17.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Display name used in experiment output ("LA-like", "NYC-like", ...).
    pub name: String,
    /// Width of the city bounding box in metres.
    pub width: f64,
    /// Height of the city bounding box in metres.
    pub height: f64,
    /// Number of bus routes to generate.
    pub num_routes: usize,
    /// Inclusive range of stops per route.
    pub stops_per_route: (usize, usize),
    /// Spacing of the underlying stop lattice in metres (also the typical
    /// distance between consecutive stops of a route).
    pub stop_spacing: f64,
    /// RNG seed: the same configuration always generates the same city.
    pub seed: u64,
}

impl CityConfig {
    /// A small city for tests and examples (fast to index and query).
    pub fn small(seed: u64) -> Self {
        CityConfig {
            name: "Smallville".to_string(),
            width: 12_000.0,
            height: 12_000.0,
            num_routes: 60,
            stops_per_route: (8, 25),
            stop_spacing: 400.0,
            seed,
        }
    }

    /// A city with the shape of the paper's LA dataset, scaled by `scale`
    /// in (0, 1]; `scale = 1.0` approaches Table 2's 1,208 routes.
    pub fn la_like(scale: f64, seed: u64) -> Self {
        let scale = scale.clamp(0.01, 1.0);
        CityConfig {
            name: "LA-like".to_string(),
            width: 60_000.0,
            height: 50_000.0,
            num_routes: (1_208.0 * scale).round().max(4.0) as usize,
            stops_per_route: (15, 90),
            stop_spacing: 450.0,
            seed,
        }
    }

    /// A city with the shape of the paper's NYC dataset, scaled by `scale`.
    pub fn nyc_like(scale: f64, seed: u64) -> Self {
        let scale = scale.clamp(0.01, 1.0);
        CityConfig {
            name: "NYC-like".to_string(),
            width: 45_000.0,
            height: 55_000.0,
            num_routes: (2_022.0 * scale).round().max(4.0) as usize,
            stops_per_route: (12, 70),
            stop_spacing: 350.0,
            seed,
        }
    }

    /// Bounding rectangle of the city.
    pub fn area(&self) -> Rect {
        Rect::new(Point::ORIGIN, Point::new(self.width, self.height))
    }
}

/// A generated city: its configuration and the bus routes (point sequences).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// The configuration the city was generated from.
    pub config: CityConfig,
    /// Bus routes as ordered stop sequences.
    pub routes: Vec<Vec<Point>>,
}

impl City {
    /// Number of routes.
    pub fn num_routes(&self) -> usize {
        self.routes.len()
    }

    /// Total number of stop references across routes (with repetition).
    pub fn total_stops(&self) -> usize {
        self.routes.iter().map(Vec::len).sum()
    }

    /// Builds the RR-tree-backed route store for this city.
    pub fn route_store(&self) -> RouteStore {
        let (store, _) = RouteStore::bulk_build(RTreeConfig::default(), self.routes.clone());
        store
    }

    /// Builds the bus-network graph (Definition 9) for this city.
    pub fn graph(&self) -> RouteGraph {
        RouteGraph::from_routes(self.routes.iter().map(|r| r.as_slice()))
    }
}

/// Generates synthetic cities from a [`CityConfig`].
#[derive(Debug, Clone)]
pub struct CityGenerator {
    config: CityConfig,
}

impl CityGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: CityConfig) -> Self {
        CityGenerator { config }
    }

    /// Generates the city deterministically from the configured seed.
    ///
    /// Routes are walks over a jittered stop lattice: from a random start
    /// node the walk keeps a heading and turns by at most ±90° per step (the
    /// same "no zigzag" rule the paper uses to generate query routes), so
    /// generated routes look like real bus lines — mostly straight with
    /// occasional turns — and share lattice stops with other routes, giving
    /// non-trivial crossover sets.
    pub fn generate(&self) -> City {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let cols = (cfg.width / cfg.stop_spacing).floor().max(2.0) as i64;
        let rows = (cfg.height / cfg.stop_spacing).floor().max(2.0) as i64;

        let mut routes = Vec::with_capacity(cfg.num_routes);
        while routes.len() < cfg.num_routes {
            let target_len = rng.gen_range(cfg.stops_per_route.0..=cfg.stops_per_route.1);
            // Start anywhere on the lattice, with a random cardinal heading.
            let mut ci = rng.gen_range(0..cols);
            let mut cj = rng.gen_range(0..rows);
            let mut heading: (i64, i64) =
                [(1, 0), (-1, 0), (0, 1), (0, -1)][rng.gen_range(0..4usize)];
            let mut stops = vec![self.lattice_point(ci, cj)];
            while stops.len() < target_len {
                // Turn left/right with small probability, never reverse.
                let roll: f64 = rng.gen();
                if roll < 0.15 {
                    heading = (-heading.1, heading.0); // left turn
                } else if roll < 0.30 {
                    heading = (heading.1, -heading.0); // right turn
                }
                let ni = ci + heading.0;
                let nj = cj + heading.1;
                if ni < 0 || nj < 0 || ni >= cols || nj >= rows {
                    // Hit the border: turn back into the city instead.
                    heading = (-heading.0, -heading.1);
                    continue;
                }
                ci = ni;
                cj = nj;
                stops.push(self.lattice_point(ci, cj));
            }
            if stops.len() >= 2 {
                routes.push(stops);
            }
        }
        City {
            config: cfg.clone(),
            routes,
        }
    }

    /// The jittered position of lattice node `(i, j)`.
    ///
    /// The jitter is a deterministic hash of the node index (not of the RNG
    /// stream), so every route that visits the node gets the exact same
    /// coordinates — this is what makes stops shared between routes.
    fn lattice_point(&self, i: i64, j: i64) -> Point {
        let cfg = &self.config;
        let h = Self::hash(cfg.seed, i, j);
        let jx = ((h & 0xffff) as f64 / 65_535.0 - 0.5) * 0.3 * cfg.stop_spacing;
        let jy = (((h >> 16) & 0xffff) as f64 / 65_535.0 - 0.5) * 0.3 * cfg.stop_spacing;
        Point::new(
            (i as f64 + 0.5) * cfg.stop_spacing + jx,
            (j as f64 + 0.5) * cfg.stop_spacing + jy,
        )
    }

    fn hash(seed: u64, i: i64, j: i64) -> u64 {
        let mut x = seed
            ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 33;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generation_is_deterministic() {
        let a = CityGenerator::new(CityConfig::small(7)).generate();
        let b = CityGenerator::new(CityConfig::small(7)).generate();
        let c = CityGenerator::new(CityConfig::small(8)).generate();
        assert_eq!(a.routes, b.routes);
        assert_ne!(a.routes, c.routes);
    }

    #[test]
    fn routes_respect_configuration() {
        let cfg = CityConfig::small(3);
        let city = CityGenerator::new(cfg.clone()).generate();
        assert_eq!(city.num_routes(), cfg.num_routes);
        let area = cfg.area();
        for route in &city.routes {
            assert!(route.len() >= cfg.stops_per_route.0);
            assert!(route.len() <= cfg.stops_per_route.1);
            for p in route {
                assert!(
                    area.contains_point(p) || area.min_dist(p) < cfg.stop_spacing,
                    "stop {p} escapes the city area"
                );
            }
            // Consecutive stops are roughly one lattice cell apart.
            for w in route.windows(2) {
                let d = w[0].distance(&w[1]);
                assert!(d > 0.0 && d < cfg.stop_spacing * 2.5, "spacing {d}");
            }
        }
    }

    #[test]
    fn routes_share_stops() {
        // Shared lattice nodes give shared stops, hence crossover sets > 1.
        let city = CityGenerator::new(CityConfig::small(11)).generate();
        let mut seen: HashMap<(u64, u64), usize> = HashMap::new();
        for route in &city.routes {
            for p in route {
                *seen.entry((p.x.to_bits(), p.y.to_bits())).or_default() += 1;
            }
        }
        let shared = seen.values().filter(|c| **c > 1).count();
        assert!(
            shared > 0,
            "expected at least one stop shared between routes"
        );
        // And the route store must observe the same sharing through its PList.
        let store = city.route_store();
        assert!(store.num_stops() < city.total_stops());
    }

    #[test]
    fn la_and_nyc_scale_with_factor() {
        let small = CityConfig::la_like(0.05, 1);
        let large = CityConfig::la_like(0.2, 1);
        assert!(large.num_routes > small.num_routes);
        let nyc = CityConfig::nyc_like(0.05, 1);
        assert!(nyc.num_routes > 0);
        assert_eq!(CityConfig::la_like(5.0, 1).num_routes, 1208);
    }

    #[test]
    fn derived_structures_are_consistent() {
        let city = CityGenerator::new(CityConfig::small(5)).generate();
        let store = city.route_store();
        let graph = city.graph();
        assert_eq!(store.num_routes(), city.num_routes());
        // Graph vertices = distinct stops in the store.
        assert_eq!(graph.num_vertices(), store.num_stops());
        assert!(graph.num_edges() > 0);
    }
}
