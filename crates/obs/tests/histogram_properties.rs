//! Property tests pinning down the histogram's three contracts: percentile
//! estimates respect the log-linear bucket error bound against a sorted
//! oracle, merging two histograms is indistinguishable from recording every
//! sample into one, and concurrent recording from many threads loses no
//! counts.

use proptest::prelude::*;
use rknnt_obs::Histogram;

/// Mixed-magnitude sample draws: small exact-range values, mid-range, and
/// large values near the top octaves, so the buckets exercised span the
/// exact region, the linear sub-buckets and the wide high groups.
fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    let value = prop_oneof![
        0u64..16,
        16u64..4_096,
        4_096u64..1_000_000,
        1_000_000u64..u64::MAX / 2,
    ];
    prop::collection::vec(value, 1..200)
}

/// The true order statistic the histogram approximates: the rank-⌈p·n/100⌉
/// sample of the sorted data (1-based, clamped like `percentile_rank`).
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = (((p / 100.0) * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// estimate ≥ v* always, and estimate − v* ≤ v*/16 for v* ≥ 16 (the
    /// 6.25% bucket-width bound); exact below 16 where buckets are unit.
    #[test]
    fn percentile_respects_the_bucket_error_bound(samples in samples_strategy()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let truth = exact_percentile(&sorted, p);
            let estimate = h.percentile(p);
            prop_assert!(
                estimate >= truth,
                "p{p}: estimate {estimate} undershoots true {truth}"
            );
            if truth < 16 {
                // Unit-width buckets below 16: the estimate is exact.
                prop_assert_eq!(estimate, truth);
            } else {
                prop_assert!(
                    estimate - truth <= truth / 16,
                    "p{p}: estimate {estimate} overshoots true {truth} by more than 1/16"
                );
            }
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), sorted.first().copied());
        prop_assert_eq!(h.max(), sorted.last().copied());
    }

    /// merge(a, b) is bucket-exact: identical snapshot, count, sum, min,
    /// max and percentiles to recording every sample into one histogram.
    #[test]
    fn merge_equals_recording_into_one(
        left in samples_strategy(),
        right in samples_strategy(),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for &v in &left {
            a.record(v);
            combined.record(v);
        }
        for &v in &right {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.snapshot(), combined.snapshot());
        prop_assert_eq!(a.count(), combined.count());
        prop_assert_eq!(a.sum(), combined.sum());
        for p in [50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(a.percentile(p), combined.percentile(p));
        }
    }
}

/// N threads hammering one histogram lose no samples: the final count, sum
/// and extremes equal the sequential reference over the same values.
#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let shared = Histogram::new();
    let reference = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = &shared;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic mixed-magnitude values, distinct per
                    // thread, covering exact and log-linear buckets.
                    let v = (t * PER_THREAD + i).wrapping_mul(2_654_435_761) % 1_000_000;
                    shared.record(v);
                }
            });
        }
    });
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let v = (t * PER_THREAD + i).wrapping_mul(2_654_435_761) % 1_000_000;
            reference.record(v);
        }
    }
    assert_eq!(shared.count(), THREADS * PER_THREAD);
    assert_eq!(shared.snapshot(), reference.snapshot());
    assert_eq!(shared.sum(), reference.sum());
    assert_eq!(shared.min(), reference.min());
    assert_eq!(shared.max(), reference.max());
    for p in [50.0, 99.0, 100.0] {
        assert_eq!(shared.percentile(p), reference.percentile(p));
    }
}
