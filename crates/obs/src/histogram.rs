//! A fixed-memory log-linear latency histogram (HdrHistogram-style).
//!
//! Values are `u64` nanoseconds. Buckets are exact below 16 ns and then form
//! 16 linear sub-buckets per power of two, so every bucket's width is at most
//! 1/16 (6.25%) of its lower bound: a recorded value `v ≥ 16` lands in a
//! bucket whose upper bound overshoots `v` by at most `v / 16`. That bound is
//! what [`Histogram::percentile`] inherits and what the property tests in
//! `tests/histogram_properties.rs` pin down.
//!
//! The whole structure is 976 atomic buckets plus four scalar atomics —
//! about 8 KiB, allocated once. Recording is four relaxed atomic RMWs and
//! never allocates, which is what lets the query hot path keep a histogram
//! per pipeline stage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (and the exact-bucket range `0..16`).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count: covers the full `u64` range.
/// Index of `u64::MAX` is `((63 - 4 + 1) << 4) + 15 = 975`.
const BUCKET_COUNT: usize = (((64 - SUB_BITS) << SUB_BITS) + SUB_COUNT as u32 - 1) as usize + 1;

/// Bucket index for a value (total order, 0 ..= 975).
#[inline]
fn index_of(value: u64) -> usize {
    if value < SUB_COUNT {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BITS;
        (((shift + 1) << SUB_BITS) + ((value >> shift) as u32 & (SUB_COUNT as u32 - 1))) as usize
    }
}

/// Smallest value mapping to bucket `index`.
#[inline]
fn bucket_lower(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        index
    } else {
        let group = index >> SUB_BITS;
        let sub = index & (SUB_COUNT - 1);
        (SUB_COUNT + sub) << (group - 1)
    }
}

/// Largest value mapping to bucket `index`.
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if (index as u64) < SUB_COUNT {
        index as u64
    } else {
        let group = index as u64 >> SUB_BITS;
        bucket_lower(index) + ((1u64 << (group - 1)) - 1)
    }
}

/// Rank targeted by percentile `p` out of `total` samples (1-based).
#[inline]
fn percentile_rank(p: f64, total: u64) -> u64 {
    let p = p.clamp(0.0, 100.0);
    (((p / 100.0) * total as f64).ceil() as u64).clamp(1, total)
}

/// Walks sparse `(bucket index, count)` pairs in ascending index order and
/// returns the capped upper bound of the bucket containing `rank`.
fn percentile_over(
    buckets: impl Iterator<Item = (usize, u64)>,
    total: u64,
    cap: u64,
    p: f64,
) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = percentile_rank(p, total);
    let mut cumulative = 0u64;
    for (index, count) in buckets {
        cumulative += count;
        if cumulative >= rank {
            return bucket_upper(index).min(cap);
        }
    }
    cap
}

/// A concurrent log-linear latency histogram over `u64` nanoseconds.
///
/// `record` is lock-free and allocation-free; reads (`percentile`, `count`,
/// `snapshot`) scan the bucket array and are meant for cold paths. Reads that
/// race with writers see some consistent-enough interleaving (each bucket is
/// individually atomic), which is the usual histogram contract.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    total: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (~8 KiB, fixed).
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[index_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as saturated nanoseconds.
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all recorded values (wraps after ~584 years of total latency).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX || !self.is_empty()).then_some(v)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Value at percentile `p` (0.0 ..= 100.0).
    ///
    /// Returns the upper bound of the bucket holding the rank-`⌈p·n/100⌉`
    /// sample, capped at the recorded maximum — so the estimate never
    /// undershoots the true order statistic and overshoots it by at most
    /// 1/16 of its value (exact below 16 ns). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        let cap = self.max.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.load(Ordering::Relaxed)))
            .filter(|&(_, c)| c > 0);
        percentile_over(buckets, total, cap, p)
    }

    /// Adds all of `other`'s samples into `self`.
    ///
    /// Bucket-exact: merging equals having recorded every sample into one
    /// histogram. Not a consistent cut if `other` has concurrent writers.
    pub fn merge(&self, other: &Histogram) {
        for (bucket, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An owned point-in-time copy (sparse; cold path, allocates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u16, n))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, sparse copy of a [`Histogram`], suitable for diffing two
/// points in time and for embedding in a
/// [`MetricsSnapshot`](crate::MetricsSnapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` pairs, ascending by index, counts > 0.
    buckets: Vec<(u16, u64)>,
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty.
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of the snapshotted values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest snapshotted value, if any.
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest snapshotted value, if any.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at percentile `p`, with the same error contract as
    /// [`Histogram::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        let buckets = self.buckets.iter().map(|&(i, c)| (i as usize, c));
        percentile_over(buckets, self.count, self.max, p)
    }

    /// Samples recorded between `earlier` and `self` (both from the same
    /// histogram, `earlier` taken first).
    ///
    /// Bucket counts subtract exactly; the interval's min/max are
    /// reconstructed from its surviving buckets and therefore only
    /// bucket-accurate (within the 1/16 bound).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut their = earlier.buckets.iter().peekable();
        for &(index, count) in &self.buckets {
            let mut count = count;
            while let Some(&&(i, c)) = their.peek() {
                if i < index {
                    their.next();
                } else {
                    if i == index {
                        count = count.saturating_sub(c);
                        their.next();
                    }
                    break;
                }
            }
            if count > 0 {
                buckets.push((index, count));
            }
        }
        let count = self.count.saturating_sub(earlier.count);
        let (min, max) = match (buckets.first(), buckets.last()) {
            (Some(&(first, _)), Some(&(last, _))) if count > 0 => (
                bucket_lower(first as usize).max(self.min),
                bucket_upper(last as usize).min(self.max),
            ),
            _ => (u64::MAX, 0),
        };
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_total_and_monotone() {
        assert_eq!(index_of(0), 0);
        assert_eq!(index_of(15), 15);
        assert_eq!(index_of(16), 16);
        assert_eq!(index_of(31), 31);
        assert_eq!(index_of(32), 32);
        assert_eq!(index_of(u64::MAX), BUCKET_COUNT - 1);
        for index in 0..BUCKET_COUNT {
            let lower = bucket_lower(index);
            let upper = bucket_upper(index);
            assert!(lower <= upper);
            assert_eq!(index_of(lower), index, "lower of bucket {index}");
            assert_eq!(index_of(upper), index, "upper of bucket {index}");
            if index + 1 < BUCKET_COUNT {
                assert_eq!(upper + 1, bucket_lower(index + 1), "bucket {index} gap");
            } else {
                assert_eq!(upper, u64::MAX);
            }
        }
    }

    #[test]
    fn bucket_width_respects_relative_error_bound() {
        for index in 16..BUCKET_COUNT {
            let lower = bucket_lower(index);
            let width = bucket_upper(index) - lower;
            assert!(width <= lower / 16, "bucket {index} too wide");
        }
    }

    #[test]
    fn exact_percentiles_on_small_values() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(90.0), 9);
        assert_eq!(h.percentile(100.0), 10);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert!((h.mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_is_capped_at_recorded_max() {
        let h = Histogram::new();
        h.record(1_000_003);
        // Bucket upper bound exceeds the single sample; the cap hides that.
        assert_eq!(h.percentile(99.0), 1_000_003);
        assert_eq!(h.percentile(1.0), 1_000_003);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [0u64, 15, 16, 1_000, 123_456_789] {
            a.record(v);
            combined.record(v);
        }
        for v in [7u64, 16, 999_999_999_999] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
    }

    #[test]
    fn snapshot_diff_isolates_the_interval() {
        let h = Histogram::new();
        h.record(100);
        h.record(200);
        let earlier = h.snapshot();
        h.record(100);
        h.record(5_000);
        let diff = h.snapshot().diff(&earlier);
        assert_eq!(diff.count(), 2);
        assert_eq!(diff.sum(), 5_100);
        // The interval's p100 reflects only the new samples.
        let p100 = diff.percentile(100.0);
        assert!((5_000..=5_000 + 5_000 / 16).contains(&p100));
        assert!(diff.min().unwrap() <= 100);
    }

    #[test]
    fn snapshot_diff_of_identical_snapshots_is_empty() {
        let h = Histogram::new();
        h.record(42);
        let snap = h.snapshot();
        let diff = snap.diff(&snap);
        assert!(diff.is_empty());
        assert_eq!(diff.percentile(50.0), 0);
        assert_eq!(diff.min(), None);
    }
}
