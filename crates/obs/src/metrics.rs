//! Metric cells, stage spans and the registry that exposes them.
//!
//! The flow is: a component registers its metrics once at construction time
//! against a [`MetricsRegistry`] (getting back cheap clonable cells), then
//! increments/records through the cells on the hot path with no further
//! registry involvement. Reporting walks the registry cold: a
//! [`MetricsSnapshot`] is an owned point-in-time copy that can be rendered
//! as text or diffed against an earlier snapshot to isolate an interval.
//!
//! Counters and gauges are *always* live — exact per-call statistics
//! (`BatchStats`-style) are computed by diffing them around a call, so they
//! cannot be turned off. The [`Telemetry`] enabled flag gates only the parts
//! with measurable cost: clock reads in [`Span`]s, histogram recording and
//! flight-recorder events.

use crate::clock::{Clock, MonotonicClock};
use crate::histogram::{Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing atomic counter cell.
///
/// Clones share the same cell, so a component can keep one copy and hand
/// another to the registry.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value (or running-max) atomic gauge cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is larger than the current reading
    /// (used for high-water marks like `checkpoint_stall_ns`).
    #[inline]
    pub fn record_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared time source and master enable switch for instrumentation.
///
/// Cloning is cheap (two `Arc`s); every [`Stage`] and
/// [`FlightRecorder`](crate::FlightRecorder) carries a clone so a single
/// [`Telemetry::set_enabled`] call flips the whole pipeline.
#[derive(Clone)]
pub struct Telemetry {
    clock: Arc<dyn Clock>,
    enabled: Arc<AtomicBool>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Production telemetry: monotonic clock, enabled.
    pub fn monotonic() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Telemetry over an explicit clock (tests pass a
    /// [`MockClock`](crate::MockClock)).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Telemetry {
            clock,
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Whether spans, histograms and the flight recorder are live.
    ///
    /// With the `off` cargo feature this is a constant `false` and the
    /// compiler folds the instrumentation away entirely.
    #[inline]
    pub fn enabled(&self) -> bool {
        if cfg!(feature = "off") {
            return false;
        }
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns timing instrumentation on or off at runtime (counters and
    /// gauges stay live either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Reads the clock.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::monotonic()
    }
}

/// A named pipeline stage whose latencies feed one histogram.
///
/// Created by [`MetricsRegistry::stage`]; enter it with [`Span::enter`].
#[derive(Debug, Clone)]
pub struct Stage {
    name: &'static str,
    histogram: Arc<Histogram>,
    telemetry: Telemetry,
}

impl Stage {
    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The histogram this stage records into.
    pub fn histogram(&self) -> &Arc<Histogram> {
        &self.histogram
    }
}

/// An open timing span over a [`Stage`].
///
/// Records the elapsed nanoseconds into the stage's histogram when finished
/// or dropped. When telemetry is disabled the span never reads the clock and
/// [`Span::finish`] returns [`Duration::ZERO`] — callers that feed
/// wall-clock fields from spans therefore report zeros with metrics off.
#[derive(Debug)]
#[must_use = "a span measures nothing unless it lives across the timed code"]
pub struct Span<'a> {
    stage: &'a Stage,
    started: Option<u64>,
}

impl<'a> Span<'a> {
    /// Starts timing `stage` (a no-op span if telemetry is disabled).
    #[inline]
    pub fn enter(stage: &'a Stage) -> Self {
        let started = stage
            .telemetry
            .enabled()
            .then(|| stage.telemetry.now_nanos());
        Span { stage, started }
    }

    /// Stops the span, records it, and returns the elapsed time.
    #[inline]
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        match self.started.take() {
            Some(started) => {
                let nanos = self.stage.telemetry.now_nanos().saturating_sub(started);
                self.stage.histogram.record(nanos);
                Duration::from_nanos(nanos)
            }
            None => Duration::ZERO,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// One registered metric cell.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(Counter),
    /// A point-in-time or high-water value.
    Gauge(Gauge),
    /// A latency distribution.
    Histogram(Arc<Histogram>),
}

/// A stable handle to a registered metric (its index in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId(usize);

/// The set of metrics one component (or one service) exposes.
///
/// Registration happens once, at construction, through `&mut self`; after
/// that the registry is read-only and the returned cells are the only way to
/// write. Names must be unique `'static` strings — they double as the
/// stable exposition ids.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    telemetry: Telemetry,
    entries: Vec<(&'static str, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry with production (monotonic) telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry over the given telemetry (tests inject a mock
    /// clock here).
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        MetricsRegistry {
            telemetry,
            entries: Vec::new(),
        }
    }

    /// The registry's shared clock + enable switch.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn register(&mut self, name: &'static str, metric: Metric) {
        assert!(self.id(name).is_none(), "metric {name:?} registered twice");
        self.entries.push((name, metric));
    }

    /// Registers and returns a counter. Panics on a duplicate name.
    pub fn counter(&mut self, name: &'static str) -> Counter {
        let cell = Counter::new();
        self.register(name, Metric::Counter(cell.clone()));
        cell
    }

    /// Registers and returns a gauge. Panics on a duplicate name.
    pub fn gauge(&mut self, name: &'static str) -> Gauge {
        let cell = Gauge::new();
        self.register(name, Metric::Gauge(cell.clone()));
        cell
    }

    /// Registers and returns a histogram. Panics on a duplicate name.
    pub fn histogram(&mut self, name: &'static str) -> Arc<Histogram> {
        let cell = Arc::new(Histogram::new());
        self.register(name, Metric::Histogram(cell.clone()));
        cell
    }

    /// Registers a histogram and wraps it as an enterable [`Stage`] bound to
    /// this registry's telemetry. Panics on a duplicate name.
    pub fn stage(&mut self, name: &'static str) -> Stage {
        Stage {
            name,
            histogram: self.histogram(name),
            telemetry: self.telemetry.clone(),
        }
    }

    /// The id of a registered metric, if present.
    pub fn id(&self, name: &str) -> Option<MetricId> {
        self.entries
            .iter()
            .position(|&(n, _)| n == name)
            .map(MetricId)
    }

    /// The name behind an id. Panics if the id is from another registry.
    pub fn name(&self, id: MetricId) -> &'static str {
        self.entries[id.0].0
    }

    /// The cell behind an id. Panics if the id is from another registry.
    pub fn metric(&self, id: MetricId) -> &Metric {
        &self.entries[id.0].1
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// An owned point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(&'static str, MetricValue)> = self
            .entries
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (*name, value)
            })
            .collect();
        entries.sort_by_key(|&(name, _)| name);
        MetricsSnapshot { entries }
    }

    /// The current state in the text exposition format
    /// (see [`MetricsSnapshot::to_text`]).
    pub fn render_text(&self) -> String {
        self.snapshot().to_text()
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram copy.
    Histogram(HistogramSnapshot),
}

/// An owned point-in-time copy of a [`MetricsRegistry`], sorted by name.
///
/// Snapshots render to text and diff: `later.diff(&earlier)` subtracts
/// counters and histogram buckets (isolating the interval's samples) and
/// keeps the later gauge readings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    entries: Vec<(&'static str, MetricValue)>,
}

impl MetricsSnapshot {
    /// The value of a metric, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|&(n, _)| n.cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter reading by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge reading by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram copy by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (*n, v))
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The interval between `earlier` and `self` (both snapshots of the same
    /// registry, `earlier` taken first): counters and histograms subtract,
    /// gauges keep the later reading, metrics new in `self` pass through.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let value = match (value, earlier.get(name)) {
                    (MetricValue::Counter(v), Some(MetricValue::Counter(e))) => {
                        MetricValue::Counter(v.saturating_sub(*e))
                    }
                    (MetricValue::Histogram(h), Some(MetricValue::Histogram(e))) => {
                        MetricValue::Histogram(h.diff(e))
                    }
                    _ => value.clone(),
                };
                (*name, value)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Renders the snapshot as one `key=value` row per metric:
    ///
    /// ```text
    /// counter=<name> value=<n>
    /// gauge=<name> value=<n>
    /// histogram=<name> count=<n> p50=<ns> p90=<ns> p99=<ns> p999=<ns> max=<ns> mean=<ns>
    /// ```
    ///
    /// Rows are sorted by metric name; all latency figures are nanoseconds.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter={name} value={v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge={name} value={v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "histogram={name} count={} p50={} p90={} p99={} p999={} max={} mean={:.0}",
                        h.count(),
                        h.percentile(50.0),
                        h.percentile(90.0),
                        h.percentile(99.0),
                        h.percentile(99.9),
                        h.max().unwrap_or(0),
                        h.mean(),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    fn mock_registry() -> (MetricsRegistry, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new());
        let registry = MetricsRegistry::with_telemetry(Telemetry::with_clock(clock.clone()));
        (registry, clock)
    }

    #[test]
    fn counters_and_gauges_read_back() {
        let mut registry = MetricsRegistry::new();
        let hits = registry.counter("cache.hits");
        let stall = registry.gauge("checkpoint.stall");
        hits.inc();
        hits.add(4);
        stall.record_max(70);
        stall.record_max(30);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(5));
        assert_eq!(snap.gauge("checkpoint.stall"), Some(70));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut registry = MetricsRegistry::new();
        let _a = registry.counter("x");
        let _b = registry.gauge("x");
    }

    #[test]
    fn metric_ids_are_stable_handles() {
        let mut registry = MetricsRegistry::new();
        let _c = registry.counter("b.second");
        let _h = registry.histogram("a.first");
        let id = registry.id("a.first").expect("registered");
        assert_eq!(registry.name(id), "a.first");
        assert!(matches!(registry.metric(id), Metric::Histogram(_)));
        assert_eq!(registry.id("nope"), None);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn spans_record_mock_elapsed_time() {
        let (mut registry, clock) = mock_registry();
        let stage = registry.stage("stage.filter_ns");
        let span = Span::enter(&stage);
        clock.advance(1_500);
        assert_eq!(span.finish(), Duration::from_nanos(1_500));
        clock.advance(10);
        {
            let _implicit = Span::enter(&stage);
            clock.advance(2_500);
            // Dropped without finish(): still records.
        }
        assert_eq!(stage.histogram().count(), 2);
        assert_eq!(stage.histogram().max(), Some(2_500));
    }

    #[test]
    fn disabled_telemetry_skips_spans_but_not_counters() {
        let (mut registry, clock) = mock_registry();
        let stage = registry.stage("stage.verify_ns");
        let ops = registry.counter("ops");
        registry.telemetry().set_enabled(false);
        let span = Span::enter(&stage);
        clock.advance(9_999);
        ops.inc();
        assert_eq!(span.finish(), Duration::ZERO);
        assert!(stage.histogram().is_empty());
        assert_eq!(ops.get(), 1);
        registry.telemetry().set_enabled(true);
        let span = Span::enter(&stage);
        clock.advance(5);
        span.finish();
        assert_eq!(stage.histogram().count(), 1);
    }

    #[test]
    fn exposition_text_is_sorted_and_parseable() {
        let (mut registry, clock) = mock_registry();
        let stage = registry.stage("b.stage_ns");
        let hits = registry.counter("a.hits");
        let depth = registry.gauge("c.depth");
        hits.add(3);
        depth.set(11);
        let span = Span::enter(&stage);
        clock.advance(100);
        span.finish();
        let text = registry.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "counter=a.hits value=3");
        assert!(lines[1].starts_with("histogram=b.stage_ns count=1 p50=100"));
        assert!(lines[1].contains("p999=100"));
        assert!(lines[1].contains("max=100"));
        assert_eq!(lines[2], "gauge=c.depth value=11");
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_keeps_gauges() {
        let mut registry = MetricsRegistry::new();
        let hits = registry.counter("hits");
        let depth = registry.gauge("depth");
        hits.add(10);
        depth.set(5);
        let earlier = registry.snapshot();
        hits.add(7);
        depth.set(2);
        let diff = registry.snapshot().diff(&earlier);
        assert_eq!(diff.counter("hits"), Some(7));
        assert_eq!(diff.gauge("depth"), Some(2));
    }
}
