//! The flight recorder: a fixed-capacity ring of recent structured events.
//!
//! Metrics aggregate; the recorder remembers *what just happened* — the last
//! few hundred pipeline events (batches admitted, evictions, WAL fsyncs,
//! checkpoints, subscription reclassifications) with sequence numbers and
//! clock readings, dumpable on demand or automatically when a test
//! assertion fires ([`DumpOnPanic`]).
//!
//! Recording is allocation-free: [`EventKind`] is a fixed-size `Copy` enum
//! and the ring's slots are preallocated at construction, so the per-event
//! cost is one short mutex hold and a clock read. Events are dropped (not
//! recorded) while telemetry is disabled.

use crate::metrics::Telemetry;
use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

/// What happened. Fields are the small set of figures worth replaying when
/// debugging an anomaly; everything is inline and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A query batch entered the service pipeline.
    BatchAdmitted {
        /// Queries in the batch.
        queries: u32,
        /// How many were answered straight from the result cache.
        cache_hits: u32,
    },
    /// Cache entries were evicted by an update.
    CacheEvicted {
        /// Entries removed.
        entries: u32,
        /// Whether this was a full drop (budget exhausted) rather than a
        /// targeted region-scoped eviction.
        full_drop: bool,
    },
    /// A WAL batch was appended (and, per configuration, fsynced).
    WalAppend {
        /// Records in the appended batch.
        frames: u32,
        /// Bytes written.
        bytes: u64,
    },
    /// A checkpoint started; updates stall until the matching end event.
    CheckpointBegin,
    /// A checkpoint finished.
    CheckpointEnd {
        /// Checkpoint duration in nanoseconds (= the update-path stall).
        nanos: u64,
    },
    /// An update batch was classified against live subscriptions.
    SubscriptionsClassified {
        /// Subscriptions provably unaffected.
        unaffected: u32,
        /// Subscriptions patched in place (stable result membership).
        stable: u32,
        /// Subscriptions marked dirty for re-execution.
        dirty: u32,
    },
    /// A dirty subscription was re-executed.
    SubscriptionReexecuted {
        /// The subscription id.
        id: u64,
        /// Transitions that entered its result.
        entered: u32,
        /// Transitions that left its result.
        left: u32,
    },
    /// The sharded router dispatched one query to one shard (the filter
    /// footprint could not certify the shard candidate-free).
    ShardDispatch {
        /// Index of the consulted shard.
        shard: u32,
        /// Candidate endpoints the shard's prune phase returned.
        candidates: u32,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventKind::BatchAdmitted {
                queries,
                cache_hits,
            } => write!(
                f,
                "event=batch_admitted queries={queries} cache_hits={cache_hits}"
            ),
            EventKind::CacheEvicted { entries, full_drop } => {
                write!(
                    f,
                    "event=cache_evicted entries={entries} full_drop={full_drop}"
                )
            }
            EventKind::WalAppend { frames, bytes } => {
                write!(f, "event=wal_append frames={frames} bytes={bytes}")
            }
            EventKind::CheckpointBegin => write!(f, "event=checkpoint_begin"),
            EventKind::CheckpointEnd { nanos } => {
                write!(f, "event=checkpoint_end nanos={nanos}")
            }
            EventKind::SubscriptionsClassified {
                unaffected,
                stable,
                dirty,
            } => write!(
                f,
                "event=subs_classified unaffected={unaffected} stable={stable} dirty={dirty}"
            ),
            EventKind::SubscriptionReexecuted { id, entered, left } => {
                write!(
                    f,
                    "event=sub_reexecuted id={id} entered={entered} left={left}"
                )
            }
            EventKind::ShardDispatch { shard, candidates } => {
                write!(
                    f,
                    "event=shard_dispatch shard={shard} candidates={candidates}"
                )
            }
        }
    }
}

/// One recorded event: a sequence number, a clock reading, and the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Position in the recorder's total event stream (0-based, never
    /// wraps back — lets a dump show how much history was lost).
    pub seq: u64,
    /// Telemetry clock reading when the event was recorded.
    pub at_nanos: u64,
    /// The payload.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} t={}ns {}", self.seq, self.at_nanos, self.kind)
    }
}

#[derive(Debug)]
struct Ring {
    /// Preallocated storage; grows to `capacity` once, then overwrites.
    slots: Vec<Event>,
    /// Next slot to overwrite once full.
    next: usize,
    /// Total events ever recorded.
    seq: u64,
}

/// A fixed-capacity ring buffer of the most recent [`Event`]s.
///
/// Shared by `Arc`; recording is gated on the telemetry enable switch.
#[derive(Debug)]
pub struct FlightRecorder {
    telemetry: Telemetry,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// Default ring capacity used by the service layer.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize, telemetry: Telemetry) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            telemetry,
            capacity,
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                next: 0,
                seq: 0,
            }),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .slots
            .len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().expect("flight recorder poisoned").seq
    }

    /// Records an event (dropped while telemetry is disabled).
    pub fn record(&self, kind: EventKind) {
        if !self.telemetry.enabled() {
            return;
        }
        let at_nanos = self.telemetry.now_nanos();
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        let event = Event {
            seq: ring.seq,
            at_nanos,
            kind,
        };
        ring.seq += 1;
        if ring.slots.len() < self.capacity {
            ring.slots.push(event);
        } else {
            let next = ring.next;
            ring.slots[next] = event;
            ring.next = (next + 1) % self.capacity;
        }
    }

    /// The retained events, oldest first (cold path, allocates).
    pub fn dump(&self) -> Vec<Event> {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        let mut events = Vec::with_capacity(ring.slots.len());
        if ring.slots.len() < self.capacity {
            events.extend_from_slice(&ring.slots);
        } else {
            events.extend_from_slice(&ring.slots[ring.next..]);
            events.extend_from_slice(&ring.slots[..ring.next]);
        }
        events
    }

    /// Renders the last `last` retained events as text, one per line, with a
    /// header stating how much history the ring has seen in total.
    pub fn render(&self, last: usize) -> String {
        let events = self.dump();
        let total = self.total_recorded();
        let shown = events.len().min(last);
        let mut out = format!("flight recorder: showing last {shown} of {total} event(s)\n");
        for event in &events[events.len() - shown..] {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }
}

/// A guard that dumps a flight recorder to stderr if the current thread
/// panics while it is alive — install one at the top of a test to see the
/// last pipeline events when an invariant assertion fires.
#[derive(Debug)]
pub struct DumpOnPanic {
    recorder: Arc<FlightRecorder>,
    last: usize,
}

impl DumpOnPanic {
    /// Dumps the last `last` events of `recorder` on panic.
    pub fn new(recorder: Arc<FlightRecorder>, last: usize) -> Self {
        DumpOnPanic { recorder, last }
    }
}

impl Drop for DumpOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("{}", self.recorder.render(self.last));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    fn mock_recorder(capacity: usize) -> (FlightRecorder, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new());
        let recorder = FlightRecorder::new(capacity, Telemetry::with_clock(clock.clone()));
        (recorder, clock)
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let (recorder, clock) = mock_recorder(3);
        for i in 0..5u64 {
            clock.advance(10);
            recorder.record(EventKind::CheckpointEnd { nanos: i });
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.total_recorded(), 5);
        let events = recorder.dump();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(events[0].at_nanos, 30);
        assert_eq!(events[2].kind, EventKind::CheckpointEnd { nanos: 4 });
    }

    #[test]
    fn disabled_telemetry_drops_events() {
        let (recorder, _clock) = mock_recorder(4);
        recorder.record(EventKind::CheckpointBegin);
        recorder.telemetry.set_enabled(false);
        recorder.record(EventKind::CheckpointBegin);
        assert_eq!(recorder.total_recorded(), 1);
    }

    #[test]
    fn render_shows_tail_with_header() {
        let (recorder, _clock) = mock_recorder(8);
        recorder.record(EventKind::BatchAdmitted {
            queries: 64,
            cache_hits: 10,
        });
        recorder.record(EventKind::CacheEvicted {
            entries: 3,
            full_drop: false,
        });
        let text = recorder.render(1);
        assert!(text.starts_with("flight recorder: showing last 1 of 2"));
        assert!(text.contains("event=cache_evicted entries=3 full_drop=false"));
        assert!(!text.contains("batch_admitted"));
    }

    /// Concurrent wraparound: N threads hammer the ring at every small
    /// capacity (including the 0 → 1 clamp). Events must never tear (each
    /// decodes to a legal (thread, index) pair), the total count must be
    /// monotone under a concurrent reader, and the dump must be exactly
    /// the last `capacity` events in strictly increasing sequence order.
    #[test]
    fn concurrent_wraparound_never_tears_and_dumps_stay_well_formed() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 200;
        for capacity in [0usize, 1, 2, 3, 8, 64] {
            let recorder = Arc::new(FlightRecorder::new(
                capacity,
                Telemetry::with_clock(Arc::new(MockClock::new())),
            ));
            assert_eq!(recorder.capacity(), capacity.max(1));
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let recorder = Arc::clone(&recorder);
                    scope.spawn(move || {
                        for i in 0..PER_THREAD {
                            // Encode (thread, index) into the payload so a
                            // torn write would decode to an illegal pair.
                            recorder.record(EventKind::CheckpointEnd {
                                nanos: t * 1_000_000 + i,
                            });
                        }
                    });
                }
                // A concurrent reader: the total must be monotone and every
                // mid-flight dump well-formed (sorted seqs, legal payloads).
                let mut last_total = 0;
                for _ in 0..50 {
                    let total = recorder.total_recorded();
                    assert!(total >= last_total, "count went backwards");
                    last_total = total;
                    let events = recorder.dump();
                    assert!(events.len() <= recorder.capacity());
                    for pair in events.windows(2) {
                        assert!(pair[0].seq < pair[1].seq, "dump out of order");
                    }
                }
            });
            let total = recorder.total_recorded();
            assert_eq!(total, THREADS * PER_THREAD);
            let events = recorder.dump();
            assert_eq!(events.len(), recorder.capacity().min(total as usize));
            // The retained window is exactly the last `len` sequence
            // numbers, in order.
            let expect_first = total - events.len() as u64;
            for (offset, event) in events.iter().enumerate() {
                assert_eq!(event.seq, expect_first + offset as u64);
                let EventKind::CheckpointEnd { nanos } = event.kind else {
                    panic!("unexpected kind {:?}", event.kind);
                };
                let (t, i) = (nanos / 1_000_000, nanos % 1_000_000);
                assert!(t < THREADS && i < PER_THREAD, "torn event payload");
            }
            // render() stays well-formed at every capacity.
            let text = recorder.render(recorder.capacity());
            assert!(text.starts_with("flight recorder: showing last"));
            assert_eq!(text.lines().count(), 1 + events.len());
        }
    }

    #[test]
    fn event_display_is_key_value_shaped() {
        let event = Event {
            seq: 7,
            at_nanos: 1_234,
            kind: EventKind::SubscriptionReexecuted {
                id: 3,
                entered: 1,
                left: 2,
            },
        };
        assert_eq!(
            event.to_string(),
            "#7 t=1234ns event=sub_reexecuted id=3 entered=1 left=2"
        );
    }
}
