//! Hermetic telemetry for the RkNNT workspace.
//!
//! The source paper's evaluation lives and dies by *stage-level* cost
//! breakdowns — filtering vs. verification time is what separates the four
//! engines — so the reproduction needs first-class measurement machinery,
//! not ad-hoc counters threaded by hand. This crate provides it with zero
//! external dependencies:
//!
//! * [`Histogram`] — a fixed-memory log-linear latency histogram
//!   (HdrHistogram-style): `record`/`percentile`/`merge` over `u64`
//!   nanoseconds, ≤6.25% relative bucket error, ~8 KiB per histogram.
//! * [`Counter`] / [`Gauge`] — cheap clonable atomic cells.
//! * [`MetricsRegistry`] — register-once metric cells with static string
//!   ids, a `key=value` text exposition format ([`MetricsSnapshot::to_text`])
//!   and point-in-time [`MetricsSnapshot`]s that diff to isolate intervals.
//! * [`Stage`] / [`Span`] — lightweight stage timing
//!   (`Span::enter(&stage)`) over a pluggable [`Clock`]: monotonic in
//!   production, [`MockClock`] in tests.
//! * [`FlightRecorder`] — a fixed-capacity ring of recent structured
//!   [`Event`]s, dumpable on demand or on panic ([`DumpOnPanic`]).
//!
//! Everything on the hot path is allocation-free (preallocated cells and
//! ring slots, relaxed atomics); the [`Telemetry`] enable switch turns the
//! costed parts (clock reads, histogram records, recorder events) off at
//! runtime, while counters and gauges stay live so exact per-call stats
//! keep working. The `obs_overhead` bench experiment gates the enabled
//! cost at ≤5% of service throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod histogram;
mod metrics;
mod recorder;
mod trace;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{
    Counter, Gauge, Metric, MetricId, MetricValue, MetricsRegistry, MetricsSnapshot, Span, Stage,
    Telemetry,
};
pub use recorder::{DumpOnPanic, Event, EventKind, FlightRecorder};
pub use trace::{
    CompletedTrace, SlowQueryEntry, SlowQueryLog, SpanId, TraceContext, TraceCursor, TraceId,
    TraceSpan, MAX_SPAN_ATTRS, MAX_TRACE_SPANS, SLOW_LOG_EVENT_WINDOW,
};
