//! Time sources for the telemetry layer.
//!
//! Production code reads a monotonic clock; tests plug in a [`MockClock`]
//! they can advance by hand, so no test ever sleeps or depends on wall-clock
//! behaviour. Everything downstream ([`Span`](crate::Span), histograms, the
//! flight recorder) only sees `u64` nanoseconds from this trait.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be cheap (one clock read) and monotone
/// non-decreasing per instance; the absolute origin is arbitrary.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The production clock: [`Instant`] anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturates after ~584 years of process uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for tests: starts at zero, moves only when told.
#[derive(Debug, Default)]
pub struct MockClock {
    nanos: AtomicU64,
}

impl MockClock {
    /// A mock clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Jumps to an absolute reading (tests only; must not go backwards if
    /// spans are open across the jump).
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_only_when_told() {
        let clock = MockClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(5);
        clock.advance(7);
        assert_eq!(clock.now_nanos(), 12);
        clock.set(3);
        assert_eq!(clock.now_nanos(), 3);
    }

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
