//! Per-request distributed tracing: trace ids with deterministic head
//! sampling, a bounded per-trace span tree, and the slow-query log.
//!
//! A trace is born at the serving edge (or at a test/bench harness), carried
//! through every layer as a [`TraceContext`], and finished into a
//! [`CompletedTrace`] when the root request is answered. Three properties
//! are load-bearing:
//!
//! * **Deterministic sampling.** [`TraceId::sampled`] is a pure function of
//!   the trace id — a splitmix64 hash compared against the probability —
//!   so every shard, worker and layer makes the *same* keep/drop decision
//!   without any coordination. A distributed fleet never records half a
//!   trace.
//! * **Bounded, alloc-free span recording.** Each trace owns a slab of at
//!   most [`MAX_TRACE_SPANS`] fixed-size [`TraceSpan`]s, preallocated when
//!   the trace begins. Recording a span is one mutex hold and one slot
//!   write; when the slab is full further spans are counted as dropped,
//!   never reallocated.
//! * **Slow-query promotion.** A [`SlowQueryLog`] observes every completed
//!   trace; any trace whose root span exceeded the threshold is *promoted*
//!   into a fixed-capacity ring, retaining its full span tree plus the
//!   flight-recorder window current at promotion time. The
//!   `promoted == over_threshold` counter invariant is machine-independent
//!   and gated by the `trace_overhead` experiment.

use crate::metrics::Telemetry;
use crate::recorder::FlightRecorder;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bound on spans retained per trace (the slab size).
pub const MAX_TRACE_SPANS: usize = 64;

/// Upper bound on attributes per span (extra attributes are truncated).
pub const MAX_SPAN_ATTRS: usize = 4;

/// Flight-recorder events captured alongside a promoted slow trace.
pub const SLOW_LOG_EVENT_WINDOW: usize = 16;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Identifies one end-to-end request trace.
///
/// Ids are opaque `u64`s chosen by the trace originator (the client or a
/// harness); the all-important property is that the *sampling decision*
/// ([`TraceId::sampled`]) depends only on the id, so independent processes
/// agree on it without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// Wraps a raw id.
    pub fn from_raw(raw: u64) -> Self {
        TraceId(raw)
    }

    /// The raw id (what travels on the wire).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// The deterministic head-sampling decision at `probability` ∈ [0, 1].
    ///
    /// Pure in the id: every call, on every machine, returns the same
    /// answer for the same `(id, probability)` pair. `probability >= 1.0`
    /// always samples; `<= 0.0` (and NaN) never does.
    pub fn sampled(&self, probability: f64) -> bool {
        // NaN must fall into the "never sample" arm, so the comparison is
        // written to be false for NaN rather than negated.
        if probability.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return false;
        }
        if probability >= 1.0 {
            return true;
        }
        let threshold = (probability * (u64::MAX as f64)) as u64;
        splitmix64(self.0) <= threshold
    }
}

/// Handle to one span inside a trace's slab.
///
/// Handles are only meaningful against the [`TraceContext`] that issued
/// them. [`SpanId::NONE`] is the "no span" sentinel: it is returned when
/// the slab is full and is silently ignored by every recording method, so
/// callers never need to branch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u16);

impl SpanId {
    /// The "no parent / no span" sentinel.
    pub const NONE: SpanId = SpanId(u16::MAX);

    /// Whether this handle refers to a real slab slot.
    pub fn is_some(&self) -> bool {
        *self != SpanId::NONE
    }

    /// The slab index this handle refers to (`None` for the sentinel).
    /// Indexes [`CompletedTrace::spans`].
    pub fn index(&self) -> Option<usize> {
        if self.is_some() {
            Some(self.0 as usize)
        } else {
            None
        }
    }
}

/// One fixed-size span: a named interval with a parent link and up to
/// [`MAX_SPAN_ATTRS`] integer attributes. `Copy`, no heap — the slab of
/// these is the whole per-trace allocation.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpan {
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    parent: u16,
    attrs: [(&'static str, u64); MAX_SPAN_ATTRS],
    attr_len: u8,
}

impl TraceSpan {
    /// The span's static name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Start offset in nanoseconds (the trace telemetry clock's origin).
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Duration in nanoseconds (0 while the span is still open).
    pub fn dur_ns(&self) -> u64 {
        self.dur_ns
    }

    /// The parent span, if any.
    pub fn parent(&self) -> Option<SpanId> {
        if self.parent == u16::MAX {
            None
        } else {
            Some(SpanId(self.parent))
        }
    }

    /// The recorded attributes, in recording order.
    pub fn attrs(&self) -> &[(&'static str, u64)] {
        &self.attrs[..self.attr_len as usize]
    }

    /// Looks up one attribute by name.
    pub fn attr(&self, name: &str) -> Option<u64> {
        self.attrs()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    fn with_attrs(mut self, attrs: &[(&'static str, u64)]) -> Self {
        let take = attrs.len().min(MAX_SPAN_ATTRS);
        self.attrs[..take].copy_from_slice(&attrs[..take]);
        self.attr_len = take as u8;
        self
    }
}

struct TraceBuf {
    spans: Vec<TraceSpan>,
    dropped: u32,
}

/// A live trace: the id plus the shared span slab.
///
/// Cloning is cheap (an `Arc` bump) and every clone records into the same
/// slab, so the context threads freely across layers and worker threads.
/// Span recording never allocates: the slab is preallocated at
/// [`TraceContext::begin`] and capped at [`MAX_TRACE_SPANS`]; overflow
/// increments a dropped counter instead of growing.
#[derive(Clone)]
pub struct TraceContext {
    id: TraceId,
    telemetry: Telemetry,
    buf: Arc<Mutex<TraceBuf>>,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("id", &self.id)
            .finish()
    }
}

impl TraceContext {
    /// Starts a trace: preallocates the span slab and captures the clock.
    pub fn begin(id: TraceId, telemetry: Telemetry) -> Self {
        TraceContext {
            id,
            telemetry,
            buf: Arc::new(Mutex::new(TraceBuf {
                spans: Vec::with_capacity(MAX_TRACE_SPANS),
                dropped: 0,
            })),
        }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Reads the trace's clock (nanoseconds; same origin as span starts).
    pub fn now_nanos(&self) -> u64 {
        self.telemetry.now_nanos()
    }

    /// Opens a span under `parent` (pass [`SpanId::NONE`] for a root span).
    /// Returns [`SpanId::NONE`] — and counts a drop — if the slab is full.
    pub fn begin_span(&self, name: &'static str, parent: SpanId) -> SpanId {
        let start_ns = self.telemetry.now_nanos();
        self.push(TraceSpan {
            name,
            start_ns,
            dur_ns: 0,
            parent: parent.0,
            attrs: [("", 0); MAX_SPAN_ATTRS],
            attr_len: 0,
        })
    }

    /// Closes a span, setting its duration from the clock. No-op for
    /// [`SpanId::NONE`] or a handle from another trace.
    pub fn end_span(&self, span: SpanId) {
        self.end_span_with(span, &[]);
    }

    /// Closes a span and attaches attributes (truncated at
    /// [`MAX_SPAN_ATTRS`]).
    pub fn end_span_with(&self, span: SpanId, attrs: &[(&'static str, u64)]) {
        if !span.is_some() {
            return;
        }
        let now = self.telemetry.now_nanos();
        let mut buf = self.buf.lock().expect("trace buf poisoned");
        if let Some(slot) = buf.spans.get_mut(span.0 as usize) {
            slot.dur_ns = now.saturating_sub(slot.start_ns);
            *slot = slot.with_attrs(attrs);
        }
    }

    /// Records an already-measured interval as a closed span: the start is
    /// back-dated `dur_ns` from "now", so phases timed by existing
    /// [`Span`](crate::Span) machinery cost no extra clock reads.
    pub fn record_closed(
        &self,
        name: &'static str,
        parent: SpanId,
        dur_ns: u64,
        attrs: &[(&'static str, u64)],
    ) -> SpanId {
        let now = self.telemetry.now_nanos();
        let span = TraceSpan {
            name,
            start_ns: now.saturating_sub(dur_ns),
            dur_ns,
            parent: parent.0,
            attrs: [("", 0); MAX_SPAN_ATTRS],
            attr_len: 0,
        }
        .with_attrs(attrs);
        self.push(span)
    }

    /// Number of spans currently recorded.
    pub fn span_count(&self) -> usize {
        self.buf.lock().expect("trace buf poisoned").spans.len()
    }

    /// Finishes the trace, draining the slab into a [`CompletedTrace`].
    /// Clones of this context left behind record into an empty slab and
    /// are harmless.
    pub fn finish(&self) -> CompletedTrace {
        let mut buf = self.buf.lock().expect("trace buf poisoned");
        CompletedTrace {
            id: self.id,
            spans: std::mem::take(&mut buf.spans),
            dropped: std::mem::take(&mut buf.dropped),
        }
    }

    fn push(&self, span: TraceSpan) -> SpanId {
        let mut buf = self.buf.lock().expect("trace buf poisoned");
        if buf.spans.len() >= MAX_TRACE_SPANS {
            buf.dropped += 1;
            return SpanId::NONE;
        }
        let id = SpanId(buf.spans.len() as u16);
        buf.spans.push(span);
        id
    }
}

/// A position inside a live trace: the context plus the span a callee
/// should parent its own spans under. This is what crosses layer
/// boundaries — the server opens its `execute` span and hands the service
/// a cursor rooted there, so the service never needs to know the net
/// layer's span layout.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    ctx: TraceContext,
    parent: SpanId,
}

impl TraceCursor {
    /// A cursor parenting new spans under `parent`.
    pub fn new(ctx: &TraceContext, parent: SpanId) -> Self {
        TraceCursor {
            ctx: ctx.clone(),
            parent,
        }
    }

    /// The underlying context.
    pub fn context(&self) -> &TraceContext {
        &self.ctx
    }

    /// The span new children are parented under.
    pub fn parent(&self) -> SpanId {
        self.parent
    }

    /// Opens a child span; close it with [`TraceCursor::end`] /
    /// [`TraceCursor::end_with`].
    pub fn begin(&self, name: &'static str) -> SpanId {
        self.ctx.begin_span(name, self.parent)
    }

    /// Closes a span opened by [`TraceCursor::begin`].
    pub fn end(&self, span: SpanId) {
        self.ctx.end_span(span);
    }

    /// Closes a span with attributes.
    pub fn end_with(&self, span: SpanId, attrs: &[(&'static str, u64)]) {
        self.ctx.end_span_with(span, attrs);
    }

    /// Records an already-measured child span (see
    /// [`TraceContext::record_closed`]).
    pub fn record(&self, name: &'static str, dur_ns: u64, attrs: &[(&'static str, u64)]) -> SpanId {
        self.ctx.record_closed(name, self.parent, dur_ns, attrs)
    }

    /// A cursor over the same trace parenting under `span` instead.
    pub fn at(&self, span: SpanId) -> TraceCursor {
        TraceCursor {
            ctx: self.ctx.clone(),
            parent: span,
        }
    }
}

/// A finished trace: the id, the span slab in recording order (the root is
/// span 0 by convention), and how many spans overflowed the slab.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    id: TraceId,
    spans: Vec<TraceSpan>,
    dropped: u32,
}

impl CompletedTrace {
    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Spans that overflowed the slab and were not retained.
    pub fn dropped(&self) -> u32 {
        self.dropped
    }

    /// Duration of the first-recorded span — the root request span by
    /// convention. 0 for an empty trace.
    pub fn root_duration_ns(&self) -> u64 {
        self.spans.first().map(|s| s.dur_ns).unwrap_or(0)
    }

    /// Renders the span tree, indented by depth, one span per line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {:#018x} root_dur_ns={} spans={} dropped={}\n",
            self.id.raw(),
            self.root_duration_ns(),
            self.spans.len(),
            self.dropped
        );
        for span in &self.spans {
            let mut depth = 0usize;
            let mut cursor = span.parent;
            // Depth by parent walk; the slab is tiny and acyclic (parents
            // always precede children), so this terminates.
            while cursor != u16::MAX && depth <= MAX_TRACE_SPANS {
                depth += 1;
                cursor = match self.spans.get(cursor as usize) {
                    Some(p) => p.parent,
                    None => u16::MAX,
                };
            }
            let _ = write!(
                out,
                "{:indent$}{} start_ns={} dur_ns={}",
                "",
                span.name(),
                span.start_ns(),
                span.dur_ns(),
                indent = 2 * (depth + 1)
            );
            for (name, value) in span.attrs() {
                let _ = write!(out, " {name}={value}");
            }
            out.push('\n');
        }
        out
    }
}

/// One promoted slow trace: the full span tree plus the flight-recorder
/// window captured at promotion time.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The promoted trace.
    pub trace: CompletedTrace,
    /// Rendered flight-recorder events current when the trace was
    /// promoted (empty when no recorder was supplied).
    pub events: String,
}

/// A fixed-capacity ring of the slowest requests.
///
/// Every completed trace passes through [`SlowQueryLog::observe`]; traces
/// whose root duration exceeds the threshold are *promoted* into the ring
/// (evicting the oldest entry at capacity). Three counters make the
/// promotion pipeline auditable without timing assumptions:
/// `completed` ≥ `over_threshold` == `promoted`, always — the
/// `trace_overhead` experiment gates on the equality exactly.
pub struct SlowQueryLog {
    threshold_ns: u64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
    completed: AtomicU64,
    over_threshold: AtomicU64,
    promoted: AtomicU64,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("threshold_ns", &self.threshold_ns)
            .field("capacity", &self.capacity)
            .field("completed", &self.completed.load(Ordering::Relaxed))
            .field("promoted", &self.promoted.load(Ordering::Relaxed))
            .finish()
    }
}

impl SlowQueryLog {
    /// A log promoting traces slower than `threshold_ns`, retaining the
    /// most recent `capacity` of them (clamped to at least 1).
    pub fn new(threshold_ns: u64, capacity: usize) -> Self {
        SlowQueryLog {
            threshold_ns,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            completed: AtomicU64::new(0),
            over_threshold: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
        }
    }

    /// The promotion threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// The ring capacity (entries retained).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Observes a completed trace, promoting it if its root duration
    /// exceeds the threshold. When a `recorder` is supplied the promoted
    /// entry captures its last [`SLOW_LOG_EVENT_WINDOW`] events — the
    /// pipeline activity correlated with the slow request.
    pub fn observe(&self, trace: CompletedTrace, recorder: Option<&FlightRecorder>) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if trace.root_duration_ns() <= self.threshold_ns {
            return;
        }
        self.over_threshold.fetch_add(1, Ordering::Relaxed);
        let events = recorder
            .map(|r| r.render(SLOW_LOG_EVENT_WINDOW))
            .unwrap_or_default();
        let mut ring = self.ring.lock().expect("slow-query ring poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(SlowQueryEntry { trace, events });
        self.promoted.fetch_add(1, Ordering::Relaxed);
    }

    /// Traces observed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Observed traces whose root exceeded the threshold.
    pub fn over_threshold(&self) -> u64 {
        self.over_threshold.load(Ordering::Relaxed)
    }

    /// Traces promoted into the ring (equals
    /// [`SlowQueryLog::over_threshold`] by construction; the
    /// `trace_overhead` gate asserts the equality end to end).
    pub fn promoted(&self) -> u64 {
        self.promoted.load(Ordering::Relaxed)
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow-query ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones out the retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring
            .lock()
            .expect("slow-query ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the retained entries for humans (and for panic-time dumps).
    pub fn render(&self) -> String {
        let entries = self.entries();
        let mut out = format!(
            "slow-query log: {} retained of {} promoted ({} completed, threshold {} ns)\n",
            entries.len(),
            self.promoted(),
            self.completed(),
            self.threshold_ns
        );
        for entry in &entries {
            out.push_str(&entry.trace.render());
            if !entry.events.is_empty() {
                for line in entry.events.lines() {
                    let _ = writeln!(out, "  | {line}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::metrics::Telemetry;
    use crate::recorder::EventKind;

    fn mock() -> (Arc<MockClock>, Telemetry) {
        let clock = Arc::new(MockClock::new());
        let telemetry = Telemetry::with_clock(clock.clone());
        (clock, telemetry)
    }

    #[test]
    fn sampling_is_deterministic_and_respects_extremes() {
        for raw in [0u64, 1, 42, u64::MAX] {
            let id = TraceId::from_raw(raw);
            assert!(id.sampled(1.0));
            assert!(id.sampled(2.5));
            assert!(!id.sampled(0.0));
            assert!(!id.sampled(-1.0));
            assert!(!id.sampled(f64::NAN));
            assert_eq!(id.sampled(0.3), id.sampled(0.3));
        }
    }

    #[test]
    fn sampling_rate_tracks_probability() {
        let hits = (0..10_000u64)
            .filter(|&raw| TraceId::from_raw(raw).sampled(0.5))
            .count();
        assert!((4_000..=6_000).contains(&hits), "hits={hits}");
        // Monotone in p for a fixed id: sampled at p implies sampled at p' > p.
        for raw in 0..500u64 {
            let id = TraceId::from_raw(raw);
            if id.sampled(0.2) {
                assert!(id.sampled(0.7));
            }
        }
    }

    #[test]
    fn span_tree_records_durations_parents_and_attrs() {
        let (clock, telemetry) = mock();
        let ctx = TraceContext::begin(TraceId::from_raw(7), telemetry);
        let root = ctx.begin_span("request", SpanId::NONE);
        clock.advance(10);
        let child = ctx.begin_span("execute", root);
        clock.advance(30);
        ctx.end_span_with(child, &[("batch", 4)]);
        clock.advance(5);
        ctx.end_span(root);

        let done = ctx.finish();
        assert_eq!(done.id(), TraceId::from_raw(7));
        assert_eq!(done.spans().len(), 2);
        assert_eq!(done.dropped(), 0);
        let spans = done.spans();
        assert_eq!(spans[0].name(), "request");
        assert_eq!(spans[0].parent(), None);
        assert_eq!(spans[0].dur_ns(), 45);
        assert_eq!(done.root_duration_ns(), 45);
        assert_eq!(spans[1].name(), "execute");
        assert_eq!(spans[1].parent(), Some(root));
        assert_eq!(spans[1].start_ns(), 10);
        assert_eq!(spans[1].dur_ns(), 30);
        assert_eq!(spans[1].attr("batch"), Some(4));
        assert_eq!(spans[1].attr("missing"), None);

        let text = done.render();
        assert!(text.contains("request"));
        assert!(text.contains("batch=4"));
    }

    #[test]
    fn slab_overflow_counts_drops_and_never_grows() {
        let (_, telemetry) = mock();
        let ctx = TraceContext::begin(TraceId::from_raw(1), telemetry);
        let root = ctx.begin_span("request", SpanId::NONE);
        for _ in 0..(MAX_TRACE_SPANS + 10) {
            let span = ctx.begin_span("child", root);
            ctx.end_span(span);
        }
        assert_eq!(ctx.span_count(), MAX_TRACE_SPANS);
        let done = ctx.finish();
        assert_eq!(done.spans().len(), MAX_TRACE_SPANS);
        assert_eq!(done.dropped() as usize, 11);
        // Overflow handles are inert sentinels.
        assert!(!SpanId::NONE.is_some());
    }

    #[test]
    fn record_closed_backdates_the_start() {
        let (clock, telemetry) = mock();
        clock.set(1_000);
        let ctx = TraceContext::begin(TraceId::from_raw(9), telemetry);
        let span = ctx.record_closed("cache_lookup", SpanId::NONE, 250, &[("hits", 3)]);
        assert!(span.is_some());
        let done = ctx.finish();
        assert_eq!(done.spans()[0].start_ns(), 750);
        assert_eq!(done.spans()[0].dur_ns(), 250);
        assert_eq!(done.spans()[0].attr("hits"), Some(3));
    }

    #[test]
    fn attrs_truncate_at_the_cap() {
        let (_, telemetry) = mock();
        let ctx = TraceContext::begin(TraceId::from_raw(2), telemetry);
        let attrs: Vec<(&'static str, u64)> =
            vec![("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5)];
        let span = ctx.record_closed("over", SpanId::NONE, 1, &attrs);
        assert!(span.is_some());
        let done = ctx.finish();
        assert_eq!(done.spans()[0].attrs().len(), MAX_SPAN_ATTRS);
        assert_eq!(done.spans()[0].attr("e"), None);
    }

    #[test]
    fn cursor_parents_children_under_its_span() {
        let (clock, telemetry) = mock();
        let ctx = TraceContext::begin(TraceId::from_raw(3), telemetry);
        let root = ctx.begin_span("request", SpanId::NONE);
        let cursor = TraceCursor::new(&ctx, root);
        let exec = cursor.begin("execute");
        clock.advance(12);
        cursor.end(exec);
        let nested = cursor.at(exec);
        nested.record("shard", 4, &[("shard", 2), ("pruned", 1)]);
        ctx.end_span(root);
        let done = ctx.finish();
        assert_eq!(done.spans()[1].parent(), Some(root));
        assert_eq!(done.spans()[2].parent(), Some(exec));
        assert_eq!(done.spans()[2].attr("pruned"), Some(1));
    }

    #[test]
    fn slow_log_promotes_exactly_the_over_threshold_traces() {
        let (clock, telemetry) = mock();
        let log = SlowQueryLog::new(100, 2);
        let mut slow_ids = Vec::new();
        for i in 0..6u64 {
            let ctx = TraceContext::begin(TraceId::from_raw(i), telemetry.clone());
            let root = ctx.begin_span("request", SpanId::NONE);
            // Odd traces are slow (150 ns), even ones fast (50 ns).
            let dur = if i % 2 == 1 { 150 } else { 50 };
            clock.advance(dur);
            ctx.end_span(root);
            if i % 2 == 1 {
                slow_ids.push(TraceId::from_raw(i));
            }
            log.observe(ctx.finish(), None);
        }
        assert_eq!(log.completed(), 6);
        assert_eq!(log.over_threshold(), 3);
        assert_eq!(log.promoted(), 3);
        // Capacity 2: the ring retains the two most recent promotions.
        assert_eq!(log.len(), 2);
        let retained: Vec<TraceId> = log.entries().iter().map(|e| e.trace.id()).collect();
        assert_eq!(retained, slow_ids[1..].to_vec());
        assert!(log.render().contains("threshold 100 ns"));
    }

    #[test]
    fn slow_log_exact_threshold_is_not_promoted() {
        let (clock, telemetry) = mock();
        let log = SlowQueryLog::new(100, 4);
        let ctx = TraceContext::begin(TraceId::from_raw(1), telemetry);
        let root = ctx.begin_span("request", SpanId::NONE);
        clock.advance(100);
        ctx.end_span(root);
        log.observe(ctx.finish(), None);
        assert_eq!(log.completed(), 1);
        assert_eq!(log.over_threshold(), 0);
        assert_eq!(log.promoted(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn slow_log_captures_the_recorder_window() {
        let (clock, telemetry) = mock();
        let recorder = FlightRecorder::new(8, telemetry.clone());
        recorder.record(EventKind::CheckpointBegin);
        let log = SlowQueryLog::new(0, 1);
        let ctx = TraceContext::begin(TraceId::from_raw(5), telemetry);
        let root = ctx.begin_span("request", SpanId::NONE);
        clock.advance(10);
        ctx.end_span(root);
        log.observe(ctx.finish(), Some(&recorder));
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].events.contains("flight recorder"));
        assert!(entries[0].events.contains("event=checkpoint_begin"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let log = SlowQueryLog::new(0, 0);
        assert_eq!(log.capacity(), 1);
    }
}
