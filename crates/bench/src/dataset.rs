//! Dataset construction for the experiments.

use rknnt_data::codec::{self, Decoder, Encoder};
use rknnt_data::{CityConfig, CityGenerator, TransitionConfig, TransitionGenerator};
use rknnt_graph::RouteGraph;
use rknnt_index::{RouteStore, TransitionStore};
use std::path::Path;

/// Magic bytes opening a saved-dataset file.
const DATASET_MAGIC: [u8; 8] = *b"RKNTDSET";
/// Saved-dataset format version.
const DATASET_VERSION: u32 = 1;
/// Header: magic + version + payload_len + crc.
const DATASET_HEADER_BYTES: usize = 8 + 4 + 8 + 4;

/// Which of the paper's datasets to emulate (plus the small synthetic city
/// used by the examples and the service-throughput experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The small synthetic city of `CityConfig::small` (tests, examples,
    /// service throughput).
    Small,
    /// The LA bus network + LA-Transit check-ins.
    LaLike,
    /// The NYC bus network + NYC-Transit check-ins.
    NycLike,
    /// The NYC network with the large synthetic transition set
    /// (NYC-Synthetic, 10M transitions in the paper).
    NycSynthetic,
}

impl DatasetKind {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Small => "Small-synthetic",
            DatasetKind::LaLike => "LA-like",
            DatasetKind::NycLike => "NYC-like",
            DatasetKind::NycSynthetic => "NYC-Synthetic-like",
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DatasetKind::Small => "small",
            DatasetKind::LaLike => "la",
            DatasetKind::NycLike => "nyc",
            DatasetKind::NycSynthetic => "nyc-synthetic",
        })
    }
}

impl std::str::FromStr for DatasetKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "small" | "smallville" => Ok(DatasetKind::Small),
            "la" | "la-like" => Ok(DatasetKind::LaLike),
            "nyc" | "nyc-like" => Ok(DatasetKind::NycLike),
            "nyc-synthetic" | "synthetic" => Ok(DatasetKind::NycSynthetic),
            other => Err(format!(
                "unknown dataset {other:?}; expected small, la, nyc or nyc-synthetic"
            )),
        }
    }
}

/// Scale knobs for experiment runs. The defaults keep a full `--exp all`
/// sweep to a few minutes on a laptop; raise `city_scale` /
/// `transitions` to approach the paper's dataset sizes (Table 2 / 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Fraction of the paper's route counts to generate (1.0 = full size).
    pub city_scale: f64,
    /// Number of transitions for the LA-like / NYC-like check-in sets.
    pub transitions: usize,
    /// Number of transitions for the synthetic set (paper: 10,000,000).
    pub synthetic_transitions: usize,
    /// Number of queries per configuration point.
    pub queries_per_point: usize,
    /// RNG seed shared by all generators.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            city_scale: 0.08,
            transitions: 20_000,
            synthetic_transitions: 80_000,
            queries_per_point: 12,
            seed: 42,
        }
    }
}

impl ScaleConfig {
    /// A deliberately tiny configuration for smoke tests and CI.
    pub fn tiny() -> Self {
        ScaleConfig {
            city_scale: 0.01,
            transitions: 1_000,
            synthetic_transitions: 2_000,
            queries_per_point: 2,
            seed: 42,
        }
    }
}

/// One generated dataset: the city, its index structures and its graph.
pub struct Dataset {
    /// Which dataset this emulates.
    pub kind: DatasetKind,
    /// The generated city (routes as point sequences).
    pub city: rknnt_data::City,
    /// RR-tree-backed route store.
    pub routes: RouteStore,
    /// TR-tree-backed transition store.
    pub transitions: TransitionStore,
    /// Bus-network graph.
    pub graph: RouteGraph,
}

impl Dataset {
    /// Builds a dataset of the given kind at the given scale.
    pub fn build(kind: DatasetKind, scale: &ScaleConfig) -> Self {
        let city_config = match kind {
            DatasetKind::Small => CityConfig::small(scale.seed),
            DatasetKind::LaLike => CityConfig::la_like(scale.city_scale, scale.seed),
            DatasetKind::NycLike | DatasetKind::NycSynthetic => {
                CityConfig::nyc_like(scale.city_scale, scale.seed ^ 0x5a5a)
            }
        };
        let city = CityGenerator::new(city_config).generate();
        let transition_count = match kind {
            DatasetKind::NycSynthetic => scale.synthetic_transitions,
            _ => scale.transitions,
        };
        let transitions = TransitionGenerator::new(TransitionConfig::checkin_like(
            transition_count,
            scale.seed ^ kind.name().len() as u64,
        ))
        .generate_store(&city);
        let routes = city.route_store();
        let graph = city.graph();
        Dataset {
            kind,
            city,
            routes,
            transitions,
            graph,
        }
    }

    /// Saves the dataset's raw material — kind, generated city, transition
    /// pairs — to one checksummed binary file (the storage engine's codec),
    /// so CI and bench runs can skip regeneration with
    /// `experiments --load-dataset`.
    ///
    /// Only the *generated* data is stored; the index structures (stores,
    /// graph) are rebuilt deterministically on load, which keeps the file
    /// small and the formats decoupled.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut enc = Encoder::new();
        enc.str(&self.kind.to_string());
        codec::encode_city(&mut enc, &self.city);
        let pairs: Vec<(rknnt_geo::Point, rknnt_geo::Point)> = self
            .transitions
            .transitions()
            .map(|t| (t.origin, t.destination))
            .collect();
        enc.len_prefix(pairs.len());
        for (o, d) in &pairs {
            enc.point(o);
            enc.point(d);
        }
        let payload = enc.into_bytes();
        let mut bytes = Vec::with_capacity(DATASET_HEADER_BYTES + payload.len());
        bytes.extend_from_slice(&DATASET_MAGIC);
        bytes.extend_from_slice(&DATASET_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(path, bytes).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Loads a dataset saved by [`Dataset::save`], rebuilding the stores and
    /// graph from the decoded city and transition pairs. Bad magic, version,
    /// checksum or payload are errors naming the file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let against = |detail: String| format!("{}: {detail}", path.display());
        if bytes.len() < DATASET_HEADER_BYTES {
            return Err(against(format!("only {} bytes", bytes.len())));
        }
        if bytes[..8] != DATASET_MAGIC {
            return Err(against("bad magic".to_string()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != DATASET_VERSION {
            return Err(against(format!("unsupported version {version}")));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        let payload = &bytes[DATASET_HEADER_BYTES..];
        if payload.len() as u64 != payload_len {
            return Err(against(format!(
                "declares {payload_len} payload bytes, holds {}",
                payload.len()
            )));
        }
        if codec::crc32(payload) != stored_crc {
            return Err(against("checksum mismatch".to_string()));
        }
        let mut dec = Decoder::new(payload);
        type DatasetPayload = (
            DatasetKind,
            rknnt_data::City,
            Vec<(rknnt_geo::Point, rknnt_geo::Point)>,
        );
        let mut decode = || -> Result<DatasetPayload, String> {
            let kind: DatasetKind = dec.str().map_err(|e| e.to_string())?.parse()?;
            let city = codec::decode_city(&mut dec).map_err(|e| e.to_string())?;
            let count = dec.len_prefix(32).map_err(|e| e.to_string())?;
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                pairs.push((
                    dec.point().map_err(|e| e.to_string())?,
                    dec.point().map_err(|e| e.to_string())?,
                ));
            }
            dec.expect_exhausted().map_err(|e| e.to_string())?;
            Ok((kind, city, pairs))
        };
        let (kind, city, pairs) = decode().map_err(against)?;
        let routes = city.route_store();
        let graph = city.graph();
        let transitions = TransitionStore::bulk_build(rknnt_rtree::RTreeConfig::default(), pairs);
        Ok(Dataset {
            kind,
            city,
            routes,
            transitions,
            graph,
        })
    }

    /// One-line summary used by the Tables 2/3 experiment.
    pub fn summary(&self) -> String {
        format!(
            "{:<20} |D_R| = {:>6}  |G.V| = {:>7}  |G.E| = {:>7}  |D_T| = {:>9}",
            self.kind.name(),
            self.routes.num_routes(),
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.transitions.len()
        )
    }
}

/// The two (or three) datasets an experiment sweep needs, plus the default
/// query parameters of Table 4 (scaled to the synthetic city size).
pub struct ExperimentContext {
    /// LA-like dataset.
    pub la: Dataset,
    /// NYC-like dataset.
    pub nyc: Dataset,
    /// Scale configuration used to build the context.
    pub scale: ScaleConfig,
}

impl ExperimentContext {
    /// Builds the LA-like and NYC-like datasets.
    pub fn build(scale: ScaleConfig) -> Self {
        ExperimentContext {
            la: Dataset::build(DatasetKind::LaLike, &scale),
            nyc: Dataset::build(DatasetKind::NycLike, &scale),
            scale,
        }
    }

    /// Saves both datasets under `dir` (`la.dataset` / `nyc.dataset`) for
    /// `experiments --save-dataset`.
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        self.la.save(&dir.join("la.dataset"))?;
        self.nyc.save(&dir.join("nyc.dataset"))
    }

    /// Loads a context saved by [`ExperimentContext::save`], skipping
    /// generation entirely. `scale` still drives the query counts and seeds
    /// of the experiments; the dataset contents come from the files.
    pub fn load(dir: &Path, scale: ScaleConfig) -> Result<Self, String> {
        Ok(ExperimentContext {
            la: Dataset::load(&dir.join("la.dataset"))?,
            nyc: Dataset::load(&dir.join("nyc.dataset"))?,
            scale,
        })
    }

    /// Default k (Table 4 underlines k = 10).
    pub fn default_k(&self) -> usize {
        10
    }

    /// Default query length |Q| (Table 4 underlines 5).
    pub fn default_query_len(&self) -> usize {
        5
    }

    /// Default interval I between adjacent query points, in metres.
    ///
    /// The paper's default is 3 km on full-size cities; the scaled cities
    /// keep the same stop spacing, so the absolute value carries over.
    pub fn default_interval(&self) -> f64 {
        3_000.0
    }

    /// The k sweep of Table 4.
    pub fn k_values(&self) -> Vec<usize> {
        vec![1, 5, 10, 15, 20, 25]
    }

    /// The |Q| sweep of Table 4.
    pub fn query_len_values(&self) -> Vec<usize> {
        vec![3, 4, 5, 6, 7, 8, 9, 10]
    }

    /// The interval sweep of Table 4 (1–6 km).
    pub fn interval_values(&self) -> Vec<f64> {
        (1..=6).map(|i| i as f64 * 1_000.0).collect()
    }

    /// The ψ(se) sweep of Table 4, scaled to the generated city diagonal so
    /// every span admits at least one start/end pair.
    pub fn span_values(&self, dataset: &Dataset) -> Vec<f64> {
        let diag = dataset
            .city
            .config
            .area()
            .min
            .distance(&dataset.city.config.area().max);
        (1..=5).map(|i| diag * 0.08 * i as f64).collect()
    }

    /// The τ/ψ(se) sweep of Table 4.
    pub fn tau_ratio_values(&self) -> Vec<f64> {
        vec![1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_datasets_build_consistently() {
        let scale = ScaleConfig::tiny();
        let la = Dataset::build(DatasetKind::LaLike, &scale);
        assert!(la.routes.num_routes() > 0);
        assert_eq!(la.transitions.len(), scale.transitions);
        assert_eq!(la.graph.num_vertices(), la.routes.num_stops());
        assert!(la.summary().contains("LA-like"));
        let synthetic = Dataset::build(DatasetKind::NycSynthetic, &scale);
        assert_eq!(synthetic.transitions.len(), scale.synthetic_transitions);
    }

    #[test]
    fn dataset_kind_roundtrips_display_fromstr() {
        for kind in [
            DatasetKind::Small,
            DatasetKind::LaLike,
            DatasetKind::NycLike,
            DatasetKind::NycSynthetic,
        ] {
            let parsed: DatasetKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!("LA".parse::<DatasetKind>().unwrap(), DatasetKind::LaLike);
        assert!("chicago".parse::<DatasetKind>().is_err());
    }

    #[test]
    fn small_dataset_builds_from_the_small_city() {
        let scale = ScaleConfig::tiny();
        let small = Dataset::build(DatasetKind::Small, &scale);
        assert_eq!(small.city.config.name, "Smallville");
        assert_eq!(small.transitions.len(), scale.transitions);
        assert!(small.summary().contains("Small-synthetic"));
    }

    #[test]
    fn datasets_roundtrip_through_save_and_load() {
        let scale = ScaleConfig::tiny();
        let original = Dataset::build(DatasetKind::Small, &scale);
        let dir = std::env::temp_dir().join(format!("rknnt-dataset-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.dataset");
        original.save(&path).unwrap();
        let loaded = Dataset::load(&path).unwrap();
        assert_eq!(loaded.kind, original.kind);
        assert_eq!(loaded.city.config, original.city.config);
        assert_eq!(loaded.city.routes, original.city.routes);
        // The rebuilt index structures are byte-for-byte the same state the
        // generation path produces.
        assert_eq!(loaded.routes.export_state(), original.routes.export_state());
        assert_eq!(
            loaded.transitions.export_state(),
            original.transitions.export_state()
        );
        assert_eq!(loaded.graph.num_vertices(), original.graph.num_vertices());
        assert_eq!(loaded.graph.num_edges(), original.graph.num_edges());
        // Corruption is detected by the checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = match Dataset::load(&path) {
            Err(err) => err,
            Ok(_) => panic!("corrupted dataset file must not load"),
        };
        assert!(err.contains("checksum") || err.contains("decode"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn context_save_load_roundtrips() {
        let scale = ScaleConfig::tiny();
        let ctx = ExperimentContext::build(scale);
        let dir = std::env::temp_dir().join(format!("rknnt-ctx-io-{}", std::process::id()));
        ctx.save(&dir).unwrap();
        let loaded = ExperimentContext::load(&dir, scale).unwrap();
        assert_eq!(loaded.la.city.routes, ctx.la.city.routes);
        assert_eq!(loaded.nyc.city.routes, ctx.nyc.city.routes);
        assert_eq!(
            loaded.la.transitions.export_state(),
            ctx.la.transitions.export_state()
        );
        assert!(ExperimentContext::load(&dir.join("missing"), scale).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn context_parameters_match_table4() {
        let ctx = ExperimentContext::build(ScaleConfig::tiny());
        assert_eq!(ctx.default_k(), 10);
        assert_eq!(ctx.default_query_len(), 5);
        assert_eq!(ctx.k_values(), vec![1, 5, 10, 15, 20, 25]);
        assert_eq!(ctx.query_len_values().len(), 8);
        assert_eq!(ctx.interval_values().len(), 6);
        assert_eq!(ctx.tau_ratio_values().len(), 6);
        assert_eq!(ctx.span_values(&ctx.la).len(), 5);
    }
}
