//! Dataset construction for the experiments.

use rknnt_data::{CityConfig, CityGenerator, TransitionConfig, TransitionGenerator};
use rknnt_graph::RouteGraph;
use rknnt_index::{RouteStore, TransitionStore};

/// Which of the paper's datasets to emulate (plus the small synthetic city
/// used by the examples and the service-throughput experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The small synthetic city of `CityConfig::small` (tests, examples,
    /// service throughput).
    Small,
    /// The LA bus network + LA-Transit check-ins.
    LaLike,
    /// The NYC bus network + NYC-Transit check-ins.
    NycLike,
    /// The NYC network with the large synthetic transition set
    /// (NYC-Synthetic, 10M transitions in the paper).
    NycSynthetic,
}

impl DatasetKind {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Small => "Small-synthetic",
            DatasetKind::LaLike => "LA-like",
            DatasetKind::NycLike => "NYC-like",
            DatasetKind::NycSynthetic => "NYC-Synthetic-like",
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DatasetKind::Small => "small",
            DatasetKind::LaLike => "la",
            DatasetKind::NycLike => "nyc",
            DatasetKind::NycSynthetic => "nyc-synthetic",
        })
    }
}

impl std::str::FromStr for DatasetKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "small" | "smallville" => Ok(DatasetKind::Small),
            "la" | "la-like" => Ok(DatasetKind::LaLike),
            "nyc" | "nyc-like" => Ok(DatasetKind::NycLike),
            "nyc-synthetic" | "synthetic" => Ok(DatasetKind::NycSynthetic),
            other => Err(format!(
                "unknown dataset {other:?}; expected small, la, nyc or nyc-synthetic"
            )),
        }
    }
}

/// Scale knobs for experiment runs. The defaults keep a full `--exp all`
/// sweep to a few minutes on a laptop; raise `city_scale` /
/// `transitions` to approach the paper's dataset sizes (Table 2 / 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Fraction of the paper's route counts to generate (1.0 = full size).
    pub city_scale: f64,
    /// Number of transitions for the LA-like / NYC-like check-in sets.
    pub transitions: usize,
    /// Number of transitions for the synthetic set (paper: 10,000,000).
    pub synthetic_transitions: usize,
    /// Number of queries per configuration point.
    pub queries_per_point: usize,
    /// RNG seed shared by all generators.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            city_scale: 0.08,
            transitions: 20_000,
            synthetic_transitions: 80_000,
            queries_per_point: 12,
            seed: 42,
        }
    }
}

impl ScaleConfig {
    /// A deliberately tiny configuration for smoke tests and CI.
    pub fn tiny() -> Self {
        ScaleConfig {
            city_scale: 0.01,
            transitions: 1_000,
            synthetic_transitions: 2_000,
            queries_per_point: 2,
            seed: 42,
        }
    }
}

/// One generated dataset: the city, its index structures and its graph.
pub struct Dataset {
    /// Which dataset this emulates.
    pub kind: DatasetKind,
    /// The generated city (routes as point sequences).
    pub city: rknnt_data::City,
    /// RR-tree-backed route store.
    pub routes: RouteStore,
    /// TR-tree-backed transition store.
    pub transitions: TransitionStore,
    /// Bus-network graph.
    pub graph: RouteGraph,
}

impl Dataset {
    /// Builds a dataset of the given kind at the given scale.
    pub fn build(kind: DatasetKind, scale: &ScaleConfig) -> Self {
        let city_config = match kind {
            DatasetKind::Small => CityConfig::small(scale.seed),
            DatasetKind::LaLike => CityConfig::la_like(scale.city_scale, scale.seed),
            DatasetKind::NycLike | DatasetKind::NycSynthetic => {
                CityConfig::nyc_like(scale.city_scale, scale.seed ^ 0x5a5a)
            }
        };
        let city = CityGenerator::new(city_config).generate();
        let transition_count = match kind {
            DatasetKind::NycSynthetic => scale.synthetic_transitions,
            _ => scale.transitions,
        };
        let transitions = TransitionGenerator::new(TransitionConfig::checkin_like(
            transition_count,
            scale.seed ^ kind.name().len() as u64,
        ))
        .generate_store(&city);
        let routes = city.route_store();
        let graph = city.graph();
        Dataset {
            kind,
            city,
            routes,
            transitions,
            graph,
        }
    }

    /// One-line summary used by the Tables 2/3 experiment.
    pub fn summary(&self) -> String {
        format!(
            "{:<20} |D_R| = {:>6}  |G.V| = {:>7}  |G.E| = {:>7}  |D_T| = {:>9}",
            self.kind.name(),
            self.routes.num_routes(),
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.transitions.len()
        )
    }
}

/// The two (or three) datasets an experiment sweep needs, plus the default
/// query parameters of Table 4 (scaled to the synthetic city size).
pub struct ExperimentContext {
    /// LA-like dataset.
    pub la: Dataset,
    /// NYC-like dataset.
    pub nyc: Dataset,
    /// Scale configuration used to build the context.
    pub scale: ScaleConfig,
}

impl ExperimentContext {
    /// Builds the LA-like and NYC-like datasets.
    pub fn build(scale: ScaleConfig) -> Self {
        ExperimentContext {
            la: Dataset::build(DatasetKind::LaLike, &scale),
            nyc: Dataset::build(DatasetKind::NycLike, &scale),
            scale,
        }
    }

    /// Default k (Table 4 underlines k = 10).
    pub fn default_k(&self) -> usize {
        10
    }

    /// Default query length |Q| (Table 4 underlines 5).
    pub fn default_query_len(&self) -> usize {
        5
    }

    /// Default interval I between adjacent query points, in metres.
    ///
    /// The paper's default is 3 km on full-size cities; the scaled cities
    /// keep the same stop spacing, so the absolute value carries over.
    pub fn default_interval(&self) -> f64 {
        3_000.0
    }

    /// The k sweep of Table 4.
    pub fn k_values(&self) -> Vec<usize> {
        vec![1, 5, 10, 15, 20, 25]
    }

    /// The |Q| sweep of Table 4.
    pub fn query_len_values(&self) -> Vec<usize> {
        vec![3, 4, 5, 6, 7, 8, 9, 10]
    }

    /// The interval sweep of Table 4 (1–6 km).
    pub fn interval_values(&self) -> Vec<f64> {
        (1..=6).map(|i| i as f64 * 1_000.0).collect()
    }

    /// The ψ(se) sweep of Table 4, scaled to the generated city diagonal so
    /// every span admits at least one start/end pair.
    pub fn span_values(&self, dataset: &Dataset) -> Vec<f64> {
        let diag = dataset
            .city
            .config
            .area()
            .min
            .distance(&dataset.city.config.area().max);
        (1..=5).map(|i| diag * 0.08 * i as f64).collect()
    }

    /// The τ/ψ(se) sweep of Table 4.
    pub fn tau_ratio_values(&self) -> Vec<f64> {
        vec![1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_datasets_build_consistently() {
        let scale = ScaleConfig::tiny();
        let la = Dataset::build(DatasetKind::LaLike, &scale);
        assert!(la.routes.num_routes() > 0);
        assert_eq!(la.transitions.len(), scale.transitions);
        assert_eq!(la.graph.num_vertices(), la.routes.num_stops());
        assert!(la.summary().contains("LA-like"));
        let synthetic = Dataset::build(DatasetKind::NycSynthetic, &scale);
        assert_eq!(synthetic.transitions.len(), scale.synthetic_transitions);
    }

    #[test]
    fn dataset_kind_roundtrips_display_fromstr() {
        for kind in [
            DatasetKind::Small,
            DatasetKind::LaLike,
            DatasetKind::NycLike,
            DatasetKind::NycSynthetic,
        ] {
            let parsed: DatasetKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!("LA".parse::<DatasetKind>().unwrap(), DatasetKind::LaLike);
        assert!("chicago".parse::<DatasetKind>().is_err());
    }

    #[test]
    fn small_dataset_builds_from_the_small_city() {
        let scale = ScaleConfig::tiny();
        let small = Dataset::build(DatasetKind::Small, &scale);
        assert_eq!(small.city.config.name, "Smallville");
        assert_eq!(small.transitions.len(), scale.transitions);
        assert!(small.summary().contains("Small-synthetic"));
    }

    #[test]
    fn context_parameters_match_table4() {
        let ctx = ExperimentContext::build(ScaleConfig::tiny());
        assert_eq!(ctx.default_k(), 10);
        assert_eq!(ctx.default_query_len(), 5);
        assert_eq!(ctx.k_values(), vec![1, 5, 10, 15, 20, 25]);
        assert_eq!(ctx.query_len_values().len(), 8);
        assert_eq!(ctx.interval_values().len(), 6);
        assert_eq!(ctx.tau_ratio_values().len(), 6);
        assert_eq!(ctx.span_values(&ctx.la).len(), 5);
    }
}
