//! Plain-text experiment reports: printed to stdout and collected so the
//! `experiments` binary can also write them under `results/`.

use std::fmt::Write as _;

/// A named experiment report built up line by line.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    lines: Vec<String>,
}

impl Report {
    /// Creates a report with the given title (e.g. "Figure 9 — RkNNT vs k").
    pub fn new(title: impl Into<String>) -> Self {
        let title = title.into();
        println!("\n=== {title} ===");
        Report {
            title,
            lines: Vec::new(),
        }
    }

    /// Title of the report.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Appends (and echoes) one line.
    pub fn line(&mut self, line: impl Into<String>) {
        let line = line.into();
        println!("{line}");
        self.lines.push(line);
    }

    /// Appends a formatted row of `(label, value)` columns.
    pub fn row(&mut self, columns: &[(&str, String)]) {
        let mut line = String::new();
        for (label, value) in columns {
            let _ = write!(line, "{label}={value}  ");
        }
        self.line(line.trim_end().to_string());
    }

    /// All lines, prefixed by the title, ready to be written to a file.
    pub fn to_text(&self) -> String {
        let mut out = format!("=== {} ===\n", self.title);
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Number of data lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the report has no data lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_collects_lines() {
        let mut r = Report::new("Test");
        r.line("hello");
        r.row(&[("k", "5".to_string()), ("time", "1.2ms".to_string())]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.title(), "Test");
        let text = r.to_text();
        assert!(text.contains("=== Test ==="));
        assert!(text.contains("hello"));
        assert!(text.contains("k=5"));
    }
}
