//! CI perf-regression gate: checks the machine-independent ratios of the
//! serving-layer experiments against the thresholds checked in at
//! `results/ci_gates.toml`, and exits non-zero on any regression.
//!
//! ```text
//! bench_gate [--results DIR] [--gates FILE]
//! ```
//!
//! Run the experiments first, e.g.:
//!
//! ```text
//! experiments --exp churn_throughput --out results-ci ...
//! experiments --exp continuous_monitoring --out results-ci ...
//! bench_gate --results results-ci --gates results/ci_gates.toml
//! ```

use rknnt_bench::gate;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut results = PathBuf::from("results-ci");
    let mut gates = PathBuf::from("results/ci_gates.toml");
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--results" => match value("--results") {
                Ok(v) => results = PathBuf::from(v),
                Err(e) => return fail(&e),
            },
            "--gates" => match value("--gates") {
                Ok(v) => gates = PathBuf::from(v),
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_gate [--results DIR] [--gates FILE]");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag {other}; try --help")),
        }
    }

    match gate::run_gates(&results, &gates) {
        Err(message) => fail(&message),
        Ok(outcomes) => {
            let mut failed = false;
            for outcome in &outcomes {
                println!("{outcome}");
                failed |= !outcome.passed;
            }
            if failed {
                eprintln!("bench gate FAILED: a serving-layer ratio regressed");
                ExitCode::FAILURE
            } else {
                println!("bench gate passed ({} checks)", outcomes.len());
                ExitCode::SUCCESS
            }
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("{message}");
    ExitCode::FAILURE
}
