//! CI perf-regression gate: checks the machine-independent ratios of the
//! serving-layer experiments against the thresholds checked in at
//! `results/ci_gates.toml`, and exits non-zero on any regression.
//!
//! Besides the human-readable PASS/FAIL lines on stdout, every run writes
//! a machine-readable `gates.json` into the results directory (carrying
//! the error when the run itself fails, so the artifact never goes
//! missing), and appends a markdown table to `$GITHUB_STEP_SUMMARY` when
//! that variable is set — locally it simply isn't, and nothing happens.
//!
//! ```text
//! bench_gate [--results DIR] [--gates FILE]
//! ```
//!
//! Run the experiments first, e.g.:
//!
//! ```text
//! experiments --exp churn_throughput --out results-ci ...
//! experiments --exp continuous_monitoring --out results-ci ...
//! bench_gate --results results-ci --gates results/ci_gates.toml
//! ```

use rknnt_bench::gate;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut results = PathBuf::from("results-ci");
    let mut gates = PathBuf::from("results/ci_gates.toml");
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--results" => match value("--results") {
                Ok(v) => results = PathBuf::from(v),
                Err(e) => return fail(&e),
            },
            "--gates" => match value("--gates") {
                Ok(v) => gates = PathBuf::from(v),
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_gate [--results DIR] [--gates FILE]");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag {other}; try --help")),
        }
    }

    match gate::run_gates(&results, &gates) {
        Err(message) => {
            write_artifact(&results, &gate::render_json_error(&message));
            append_step_summary(&format!(
                "### Bench gates\n\n❌ gate run failed: {message}\n"
            ));
            fail(&message)
        }
        Ok(outcomes) => {
            write_artifact(&results, &gate::render_json(&outcomes));
            append_step_summary(&gate::render_markdown(&outcomes));
            let mut failed = false;
            for outcome in &outcomes {
                println!("{outcome}");
                failed |= !outcome.passed;
            }
            if failed {
                eprintln!("bench gate FAILED: a serving-layer ratio regressed");
                ExitCode::FAILURE
            } else {
                println!("bench gate passed ({} checks)", outcomes.len());
                ExitCode::SUCCESS
            }
        }
    }
}

/// Writes `gates.json` next to the reports; a write failure is loud on
/// stderr but never masks the gate verdict itself.
fn write_artifact(results: &std::path::Path, json: &str) {
    let path = results.join("gates.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// Appends markdown to `$GITHUB_STEP_SUMMARY` when running under Actions;
/// a no-op anywhere else.
fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, markdown.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: cannot append to {path}: {e}");
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("{message}");
    ExitCode::FAILURE
}
