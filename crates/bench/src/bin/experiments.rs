//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation on the synthetic datasets.
//!
//! ```text
//! experiments [--exp NAME] [--city-scale F] [--transitions N]
//!             [--synthetic-transitions N] [--queries N] [--seed N]
//!             [--out DIR]
//! ```
//!
//! `--exp all` (the default) runs everything in paper order. Reports are
//! printed to stdout and written to `<out>/<experiment>.txt`
//! (default `results/`).

use rknnt_bench::{experiments, ExperimentContext, ScaleConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    scale: ScaleConfig,
    out_dir: PathBuf,
    options: experiments::RunOptions,
    save_dataset: Option<PathBuf>,
    load_dataset: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: "all".to_string(),
        scale: ScaleConfig::default(),
        out_dir: PathBuf::from("results"),
        options: experiments::RunOptions::default(),
        save_dataset: None,
        load_dataset: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--exp" => args.experiment = value("--exp")?,
            "--city-scale" => {
                args.scale.city_scale = value("--city-scale")?
                    .parse()
                    .map_err(|e| format!("--city-scale: {e}"))?
            }
            "--transitions" => {
                args.scale.transitions = value("--transitions")?
                    .parse()
                    .map_err(|e| format!("--transitions: {e}"))?
            }
            "--synthetic-transitions" => {
                args.scale.synthetic_transitions = value("--synthetic-transitions")?
                    .parse()
                    .map_err(|e| format!("--synthetic-transitions: {e}"))?
            }
            "--queries" => {
                args.scale.queries_per_point = value("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--seed" => {
                args.scale.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out_dir = PathBuf::from(value("--out")?),
            "--save-dataset" => args.save_dataset = Some(PathBuf::from(value("--save-dataset")?)),
            "--load-dataset" => args.load_dataset = Some(PathBuf::from(value("--load-dataset")?)),
            "--tiny" => args.scale = ScaleConfig::tiny(),
            "--dataset" => {
                args.options.service_dataset = value("--dataset")?
                    .parse()
                    .map_err(|e| format!("--dataset: {e}"))?
            }
            "--semantics" => {
                args.options.semantics = value("--semantics")?
                    .parse()
                    .map_err(|e| format!("--semantics: {e}"))?
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: experiments [--exp NAME] [--city-scale F] [--transitions N] \
                     [--synthetic-transitions N] [--queries N] [--seed N] [--out DIR] [--tiny] \
                     [--dataset small|la|nyc|nyc-synthetic] [--semantics exists|forall] \
                     [--save-dataset DIR] [--load-dataset DIR]\n\
                     experiments: {}",
                    experiments::experiment_names().join(", ")
                ))
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let ctx = match &args.load_dataset {
        Some(dir) => {
            println!("Loading datasets from {}...", dir.display());
            match ExperimentContext::load(dir, args.scale) {
                Ok(ctx) => ctx,
                Err(message) => {
                    eprintln!("cannot load datasets: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            println!(
                "Building datasets (city scale {}, {} transitions, seed {})...",
                args.scale.city_scale, args.scale.transitions, args.scale.seed
            );
            ExperimentContext::build(args.scale)
        }
    };
    println!("{}", ctx.la.summary());
    println!("{}", ctx.nyc.summary());
    if let Some(dir) = &args.save_dataset {
        if let Err(message) = ctx.save(dir) {
            eprintln!("cannot save datasets: {message}");
            return ExitCode::FAILURE;
        }
        println!("Saved datasets to {}", dir.display());
    }

    let Some(reports) = experiments::run(&ctx, &args.experiment, &args.options) else {
        eprintln!(
            "unknown experiment {:?}; valid names: {}",
            args.experiment,
            experiments::experiment_names().join(", ")
        );
        return ExitCode::FAILURE;
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }
    for report in &reports {
        let file = args.out_dir.join(format!(
            "{}.txt",
            report
                .title()
                .split_whitespace()
                .take(2)
                .collect::<Vec<_>>()
                .join("_")
                .replace(['&', '—'], "")
                .to_lowercase()
        ));
        if let Err(e) = std::fs::write(&file, report.to_text()) {
            eprintln!("cannot write {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "\nWrote {} report(s) to {}",
        reports.len(),
        args.out_dir.display()
    );
    ExitCode::SUCCESS
}
