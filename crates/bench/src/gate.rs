//! The CI performance-regression gate.
//!
//! Absolute throughput numbers are machine-dependent and useless as CI
//! assertions; the *ratios* the serving layer is built around are not. This
//! module parses the plain-text reports the `experiments` binary writes
//! (`key=value` rows) plus a checked-in `results/ci_gates.toml`, derives the
//! machine-independent ratios and fails when any falls past its threshold:
//!
//! * `churn_throughput` — the region-scoped cache hit-rate must beat the
//!   full-drop hit-rate by at least `min_hit_rate_advantage` at the 10 %
//!   update ratio (the whole point of region-scoped invalidation);
//! * `continuous_monitoring` — the monitored re-execution rate must stay
//!   below `max_reexecution_rate` at the 10 % update ratio, while the naive
//!   baseline stays at ≥ `min_naive_reexecution_rate` ≈ 1.0 (proving the
//!   comparison is honest).
//!
//! Missing files, rows or thresholds are gate *failures*, never silent
//! passes. The `bench_gate` binary is the CLI front-end.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed gate thresholds: `section -> key -> value`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateConfig {
    sections: BTreeMap<String, BTreeMap<String, f64>>,
}

impl GateConfig {
    /// Parses the minimal TOML subset the gate file uses: `[section]`
    /// headers, `key = <float>` assignments, `#` comments and blank lines.
    /// Anything else is an error — the file is checked in and small, so
    /// strictness beats leniency.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = GateConfig::default();
        let mut current: Option<String> = None;
        for (number, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                if config.sections.contains_key(&name) {
                    return Err(format!("line {}: duplicate section [{name}]", number + 1));
                }
                config.sections.insert(name.clone(), BTreeMap::new());
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value`: {raw:?}",
                    number + 1
                ));
            };
            let Some(section) = &current else {
                return Err(format!(
                    "line {}: assignment before any [section]",
                    number + 1
                ));
            };
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad number: {e}", number + 1))?;
            let key = key.trim().to_string();
            let keys = config
                .sections
                .get_mut(section)
                .expect("section was inserted");
            if keys.contains_key(&key) {
                return Err(format!(
                    "line {}: duplicate key {key:?} in [{section}]",
                    number + 1
                ));
            }
            keys.insert(key, value);
        }
        Ok(config)
    }

    /// The threshold `section.key`, or an error naming what is missing.
    pub fn threshold(&self, section: &str, key: &str) -> Result<f64, String> {
        self.sections
            .get(section)
            .ok_or_else(|| format!("gate file has no [{section}] section"))?
            .get(key)
            .copied()
            .ok_or_else(|| format!("gate file has no {section}.{key} threshold"))
    }
}

/// One `key=value` report row, as written by `Report::row`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportRow {
    fields: BTreeMap<String, String>,
}

impl ReportRow {
    /// A field's raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// A field parsed as `f64`, or an error naming the field.
    pub fn number(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .ok_or_else(|| format!("row has no field {key:?}"))?
            .parse()
            .map_err(|e| format!("field {key:?}: {e}"))
    }
}

/// Parses every `key=value` row of a report file (non-row lines — titles,
/// prose headers — are skipped).
pub fn parse_report_rows(text: &str) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut fields = BTreeMap::new();
        for token in line.split_whitespace() {
            if let Some((key, value)) = token.split_once('=') {
                if !key.is_empty() {
                    fields.insert(key.to_string(), value.to_string());
                }
            }
        }
        // A row has at least two fields; prose with a stray '=' does not.
        if fields.len() >= 2 {
            rows.push(ReportRow { fields });
        }
    }
    rows
}

/// Finds the row matching all `(key, value)` selectors.
pub fn find_row<'a>(
    rows: &'a [ReportRow],
    selectors: &[(&str, &str)],
) -> Result<&'a ReportRow, String> {
    rows.iter()
        .find(|row| selectors.iter().all(|(k, v)| row.get(k) == Some(v)))
        .ok_or_else(|| format!("no report row matching {selectors:?}"))
}

/// Outcome of one gate check.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Which gate.
    pub name: String,
    /// The measured ratio.
    pub measured: f64,
    /// The threshold it was held against.
    pub threshold: f64,
    /// Whether the gate passed.
    pub passed: bool,
}

impl std::fmt::Display for GateOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: measured {:.3} vs threshold {:.3}",
            if self.passed { "PASS" } else { "FAIL" },
            self.name,
            self.measured,
            self.threshold
        )
    }
}

/// Checks the churn-throughput gate against the report text: region-scoped
/// hit-rate minus full-drop hit-rate at the 10 % update ratio must be at
/// least `churn_throughput.min_hit_rate_advantage`.
pub fn check_churn_gate(report: &str, config: &GateConfig) -> Result<GateOutcome, String> {
    let threshold = config.threshold("churn_throughput", "min_hit_rate_advantage")?;
    let rows = parse_report_rows(report);
    let region = find_row(
        &rows,
        &[("update_ratio", "0.10"), ("mode", "region-scoped")],
    )?;
    let full = find_row(&rows, &[("update_ratio", "0.10"), ("mode", "full-drop")])?;
    let measured = region.number("hit_rate")? - full.number("hit_rate")?;
    Ok(GateOutcome {
        name: "churn_throughput.hit_rate_advantage@0.10".to_string(),
        measured,
        threshold,
        passed: measured >= threshold,
    })
}

/// Checks the continuous-monitoring gates against the report text: the
/// monitored re-execution rate at the 10 % update ratio must stay below
/// `max_reexecution_rate`, and the naive baseline at or above
/// `min_naive_reexecution_rate`.
pub fn check_monitor_gates(report: &str, config: &GateConfig) -> Result<Vec<GateOutcome>, String> {
    let max_reexec = config.threshold("continuous_monitoring", "max_reexecution_rate")?;
    let min_naive = config.threshold("continuous_monitoring", "min_naive_reexecution_rate")?;
    let rows = parse_report_rows(report);
    let monitored = find_row(&rows, &[("update_ratio", "0.10"), ("mode", "monitored")])?;
    let naive = find_row(&rows, &[("update_ratio", "0.10"), ("mode", "naive")])?;
    let monitored_rate = monitored.number("reexec_rate")?;
    let naive_rate = naive.number("reexec_rate")?;
    Ok(vec![
        GateOutcome {
            name: "continuous_monitoring.reexec_rate@0.10".to_string(),
            measured: monitored_rate,
            threshold: max_reexec,
            passed: monitored_rate <= max_reexec,
        },
        GateOutcome {
            name: "continuous_monitoring.naive_reexec_rate@0.10".to_string(),
            measured: naive_rate,
            threshold: min_naive,
            passed: naive_rate >= min_naive,
        },
    ])
}

/// Checks the cold-start gate against the report text: opening from a
/// snapshot must beat rebuilding from raw generation by at least
/// `cold_start.min_open_speedup` (the experiment reports the ratio
/// directly, and asserts byte-identical answers inline before it does).
pub fn check_cold_start_gate(report: &str, config: &GateConfig) -> Result<GateOutcome, String> {
    let threshold = config.threshold("cold_start", "min_open_speedup")?;
    let rows = parse_report_rows(report);
    let row = find_row(&rows, &[("metric", "open_speedup")])?;
    let measured = row.number("ratio")?;
    Ok(GateOutcome {
        name: "cold_start.open_speedup".to_string(),
        measured,
        threshold,
        passed: measured >= threshold,
    })
}

/// Checks the verify-hot-path gate against the report text: the scratch
/// (zero-allocation) verification path must beat the legacy allocating path
/// by at least `verify_hot_path.min_scratch_speedup` in candidates/sec on
/// the same store (the experiment asserts byte-identical counts inline
/// before timing anything).
pub fn check_verify_hot_path_gate(
    report: &str,
    config: &GateConfig,
) -> Result<GateOutcome, String> {
    let threshold = config.threshold("verify_hot_path", "min_scratch_speedup")?;
    let rows = parse_report_rows(report);
    let row = find_row(&rows, &[("metric", "scratch_speedup")])?;
    let measured = row.number("ratio")?;
    Ok(GateOutcome {
        name: "verify_hot_path.scratch_speedup".to_string(),
        measured,
        threshold,
        passed: measured >= threshold,
    })
}

/// Checks the observability-overhead gate against the report text: the
/// instrumented service's throughput cost — `1 − instrumented_qps /
/// metrics_off_qps`, same run, same workload, best-of-3 each — must not
/// exceed `obs_overhead.max_throughput_cost` (the experiment asserts
/// identical answers between the two modes before anything is compared).
pub fn check_obs_overhead_gate(report: &str, config: &GateConfig) -> Result<GateOutcome, String> {
    let threshold = config.threshold("obs_overhead", "max_throughput_cost")?;
    let rows = parse_report_rows(report);
    let row = find_row(&rows, &[("metric", "throughput_cost")])?;
    let measured = row.number("ratio")?;
    Ok(GateOutcome {
        name: "obs_overhead.throughput_cost".to_string(),
        measured,
        threshold,
        passed: measured <= threshold,
    })
}

/// Checks the trace-overhead gates against the report text: full (1.0)
/// trace sampling must cost at most `trace_overhead.max_throughput_cost`
/// of baseline throughput — `1 − sampled_qps / baseline_qps`, same run,
/// same workload, best-of-3 each — and the slow-query log's promoted count
/// must match its over-threshold count *exactly* (the experiment runs the
/// log at threshold 0, so every completed trace is over threshold and
/// `slow_log_mismatch` is a machine-independent exact count, gated at 0).
/// Identical answers across all sampling rates are asserted inside the
/// experiment before anything is compared.
pub fn check_trace_overhead_gates(
    report: &str,
    config: &GateConfig,
) -> Result<Vec<GateOutcome>, String> {
    let max_cost = config.threshold("trace_overhead", "max_throughput_cost")?;
    let max_mismatch = config.threshold("trace_overhead", "max_slow_log_mismatch")?;
    let rows = parse_report_rows(report);
    let cost = find_row(&rows, &[("metric", "throughput_cost")])?.number("ratio")?;
    let mismatch = find_row(&rows, &[("metric", "slow_log_mismatch")])?.number("ratio")?;
    Ok(vec![
        GateOutcome {
            name: "trace_overhead.throughput_cost".to_string(),
            measured: cost,
            threshold: max_cost,
            passed: cost <= max_cost,
        },
        GateOutcome {
            name: "trace_overhead.slow_log_mismatch".to_string(),
            measured: mismatch,
            threshold: max_mismatch,
            passed: mismatch <= max_mismatch,
        },
    ])
}

/// Checks the shard-scaleout gate against the report text: the router's
/// worst mean fan-out at 8 shards, expressed as a fraction of the fleet,
/// must stay at or below `shard_scaleout.max_mean_fanout_fraction`. The
/// footprint certificate has to keep most shards out of most fresh
/// executions for sharding to scale, and that fraction is a property of
/// the pruning logic, not the machine (the experiment asserts answers
/// byte-identical to the unsharded service inline before reporting).
pub fn check_shard_scaleout_gate(report: &str, config: &GateConfig) -> Result<GateOutcome, String> {
    let threshold = config.threshold("shard_scaleout", "max_mean_fanout_fraction")?;
    let rows = parse_report_rows(report);
    let row = find_row(&rows, &[("metric", "fanout_fraction")])?;
    let measured = row.number("ratio")?;
    Ok(GateOutcome {
        name: "shard_scaleout.fanout_fraction@8".to_string(),
        measured,
        threshold,
        passed: measured <= threshold,
    })
}

/// Checks the shard-failover gates against the report text: with one shard
/// of four killed mid-stream and restarted later, every query must get a
/// typed result (`unanswered = 0`), every degraded answer must be exactly
/// the healthy-shard subset of the unsharded reference answer
/// (`degraded_mismatch = 0`), answers must return to byte-identity after
/// the watermark resync (`post_recovery_divergence = 0`), and the outage
/// window must actually cover queries (`degraded_answers >= 1`) so the
/// other three gates cannot pass vacuously. All pure counts — fully
/// machine-independent.
pub fn check_shard_failover_gates(
    report: &str,
    config: &GateConfig,
) -> Result<Vec<GateOutcome>, String> {
    let max_unanswered = config.threshold("shard_failover", "max_unanswered")?;
    let max_mismatch = config.threshold("shard_failover", "max_degraded_mismatch")?;
    let max_divergence = config.threshold("shard_failover", "max_post_recovery_divergence")?;
    let min_degraded = config.threshold("shard_failover", "min_degraded_answers")?;
    let rows = parse_report_rows(report);
    let unanswered = find_row(&rows, &[("metric", "unanswered")])?.number("ratio")?;
    let mismatch = find_row(&rows, &[("metric", "degraded_mismatch")])?.number("ratio")?;
    let divergence = find_row(&rows, &[("metric", "post_recovery_divergence")])?.number("ratio")?;
    let degraded = find_row(&rows, &[("metric", "degraded_answers")])?.number("ratio")?;
    Ok(vec![
        GateOutcome {
            name: "shard_failover.unanswered".to_string(),
            measured: unanswered,
            threshold: max_unanswered,
            passed: unanswered <= max_unanswered,
        },
        GateOutcome {
            name: "shard_failover.degraded_mismatch".to_string(),
            measured: mismatch,
            threshold: max_mismatch,
            passed: mismatch <= max_mismatch,
        },
        GateOutcome {
            name: "shard_failover.post_recovery_divergence".to_string(),
            measured: divergence,
            threshold: max_divergence,
            passed: divergence <= max_divergence,
        },
        GateOutcome {
            name: "shard_failover.degraded_answers".to_string(),
            measured: degraded,
            threshold: min_degraded,
            passed: degraded >= min_degraded,
        },
    ])
}

/// Checks the open-loop serving gates against the report text. Under the
/// experiment's overload burst the server must *shed* with typed replies
/// rather than violate: `shed_fraction_under_overload` must clear
/// `open_loop_latency.min_shed_fraction_under_overload` (a slower machine
/// sheds more, never less, so the floor is machine-independent) while
/// `unanswered_under_overload` stays at or below
/// `open_loop_latency.max_unanswered_fraction` — nothing silently dropped
/// (the experiment asserts answered replies byte-identical to in-process
/// execution inline).
pub fn check_open_loop_gates(
    report: &str,
    config: &GateConfig,
) -> Result<Vec<GateOutcome>, String> {
    let min_shed = config.threshold("open_loop_latency", "min_shed_fraction_under_overload")?;
    let max_unanswered = config.threshold("open_loop_latency", "max_unanswered_fraction")?;
    let rows = parse_report_rows(report);
    let shed = find_row(&rows, &[("metric", "shed_fraction_under_overload")])?.number("ratio")?;
    let unanswered =
        find_row(&rows, &[("metric", "unanswered_under_overload")])?.number("ratio")?;
    Ok(vec![
        GateOutcome {
            name: "open_loop_latency.shed_fraction_under_overload".to_string(),
            measured: shed,
            threshold: min_shed,
            passed: shed >= min_shed,
        },
        GateOutcome {
            name: "open_loop_latency.unanswered_under_overload".to_string(),
            measured: unanswered,
            threshold: max_unanswered,
            passed: unanswered <= max_unanswered,
        },
    ])
}

/// Renders outcomes as a GitHub-flavoured markdown table, for
/// `$GITHUB_STEP_SUMMARY`.
pub fn render_markdown(outcomes: &[GateOutcome]) -> String {
    let mut out = String::from(
        "### Bench gates\n\n| gate | measured | threshold | result |\n|---|---:|---:|---|\n",
    );
    for o in outcomes {
        out.push_str(&format!(
            "| `{}` | {:.4} | {:.4} | {} |\n",
            o.name,
            o.measured,
            o.threshold,
            if o.passed { "✅ pass" } else { "❌ **fail**" }
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders outcomes as machine-readable JSON (the `gates.json` artifact).
pub fn render_json(outcomes: &[GateOutcome]) -> String {
    let mut out = String::from("{\n  \"passed\": ");
    out.push_str(if outcomes.iter().all(|o| o.passed) {
        "true"
    } else {
        "false"
    });
    out.push_str(",\n  \"gates\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"measured\": {}, \"threshold\": {}, \"passed\": {}}}{}\n",
            json_escape(&o.name),
            json_number(o.measured),
            json_number(o.threshold),
            o.passed,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a gate-runner *error* (unreadable file, missing row, bad config)
/// as JSON, so the artifact carries the failure instead of going missing.
pub fn render_json_error(error: &str) -> String {
    format!(
        "{{\n  \"passed\": false,\n  \"error\": \"{}\"\n}}\n",
        json_escape(error)
    )
}

/// Runs every gate against a results directory, returning the outcomes.
/// Missing files or rows are errors, not passes.
pub fn run_gates(results_dir: &Path, gates_file: &Path) -> Result<Vec<GateOutcome>, String> {
    let config = GateConfig::parse(
        &std::fs::read_to_string(gates_file)
            .map_err(|e| format!("cannot read {}: {e}", gates_file.display()))?,
    )?;
    let read = |name: &str| -> Result<String, String> {
        let path = results_dir.join(name);
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let mut outcomes = vec![check_churn_gate(&read("churn_throughput.txt")?, &config)?];
    outcomes.extend(check_monitor_gates(
        &read("continuous_monitoring.txt")?,
        &config,
    )?);
    outcomes.push(check_cold_start_gate(&read("cold_start.txt")?, &config)?);
    outcomes.push(check_verify_hot_path_gate(
        &read("verify_hot_path.txt")?,
        &config,
    )?);
    outcomes.push(check_obs_overhead_gate(
        &read("obs_overhead.txt")?,
        &config,
    )?);
    outcomes.extend(check_trace_overhead_gates(
        &read("trace_overhead.txt")?,
        &config,
    )?);
    outcomes.push(check_shard_scaleout_gate(
        &read("shard_scaleout.txt")?,
        &config,
    )?);
    outcomes.extend(check_shard_failover_gates(
        &read("shard_failover.txt")?,
        &config,
    )?);
    outcomes.extend(check_open_loop_gates(
        &read("open_loop_latency.txt")?,
        &config,
    )?);
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GATES: &str = "\
# comment\n\
[churn_throughput]\n\
min_hit_rate_advantage = 0.05  # inline comment\n\
\n\
[continuous_monitoring]\n\
max_reexecution_rate = 0.95\n\
min_naive_reexecution_rate = 0.99\n\
\n\
[cold_start]\n\
min_open_speedup = 1.5\n\
\n\
[verify_hot_path]\n\
min_scratch_speedup = 1.15\n\
\n\
[obs_overhead]\n\
max_throughput_cost = 0.05\n\
\n\
[trace_overhead]\n\
max_throughput_cost = 0.05\n\
max_slow_log_mismatch = 0.0\n\
\n\
[shard_scaleout]\n\
max_mean_fanout_fraction = 0.5\n\
\n\
[shard_failover]\n\
max_unanswered = 0.0\n\
max_degraded_mismatch = 0.0\n\
max_post_recovery_divergence = 0.0\n\
min_degraded_answers = 1.0\n\
\n\
[open_loop_latency]\n\
min_shed_fraction_under_overload = 0.30\n\
max_unanswered_fraction = 0.0\n";

    #[test]
    fn parses_the_gate_file_subset() {
        let config = GateConfig::parse(GATES).unwrap();
        assert_eq!(
            config
                .threshold("churn_throughput", "min_hit_rate_advantage")
                .unwrap(),
            0.05
        );
        assert_eq!(
            config
                .threshold("continuous_monitoring", "max_reexecution_rate")
                .unwrap(),
            0.95
        );
        assert!(config.threshold("churn_throughput", "missing").is_err());
        assert!(config.threshold("missing", "x").is_err());
        // Strictness: junk lines and headerless assignments are errors.
        assert!(GateConfig::parse("key = 1.0").is_err());
        assert!(GateConfig::parse("[s]\nnot an assignment").is_err());
        assert!(GateConfig::parse("[s]\nkey = abc").is_err());
    }

    #[test]
    fn hostile_gate_files_fail_with_typed_errors() {
        // Duplicate key: the second assignment must not silently win.
        let err = GateConfig::parse("[s]\nkey = 1.0\nkey = 2.0\n").unwrap_err();
        assert!(err.contains("duplicate key"), "got: {err}");
        assert!(err.contains("line 3"), "got: {err}");
        // Duplicate section header: the two bodies must not silently merge.
        let err = GateConfig::parse("[s]\na = 1.0\n[s]\nb = 2.0\n").unwrap_err();
        assert!(err.contains("duplicate section"), "got: {err}");
        // Assignment before any section header.
        let err = GateConfig::parse("a = 1.0\n[s]\nb = 2.0\n").unwrap_err();
        assert!(err.contains("before any [section]"), "got: {err}");
        // Non-numeric threshold.
        let err = GateConfig::parse("[s]\na = fast\n").unwrap_err();
        assert!(err.contains("bad number"), "got: {err}");
        // Trailing garbage after a numeric value is not a number either.
        let err = GateConfig::parse("[s]\na = 1.0 oops\n").unwrap_err();
        assert!(err.contains("bad number"), "got: {err}");
        // Trailing garbage after a section header is not a header, and the
        // line is not an assignment — typed error, not a lenient skip.
        let err = GateConfig::parse("[s] trailing\na = 1.0\n").unwrap_err();
        assert!(err.contains("expected `key = value`"), "got: {err}");
    }

    #[test]
    fn report_rows_round_trip_through_the_parser() {
        let report = "=== Churn throughput ===\n\
                      Small — k = 10\n\
                      update_ratio=0.10  mode=region-scoped  hit_rate=0.630\n\
                      update_ratio=0.10  mode=full-drop  hit_rate=0.240\n";
        let rows = parse_report_rows(report);
        assert_eq!(rows.len(), 2);
        let region = find_row(&rows, &[("mode", "region-scoped")]).unwrap();
        assert_eq!(region.number("hit_rate").unwrap(), 0.630);
        assert!(find_row(&rows, &[("mode", "nonexistent")]).is_err());
        assert!(region.number("missing").is_err());
    }

    #[test]
    fn churn_gate_passes_and_fails_on_the_advantage() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "update_ratio=0.10  mode=region-scoped  hit_rate=0.630\n\
                    update_ratio=0.10  mode=full-drop  hit_rate=0.240\n";
        let outcome = check_churn_gate(good, &config).unwrap();
        assert!(outcome.passed);
        assert!((outcome.measured - 0.39).abs() < 1e-9);
        let regressed = "update_ratio=0.10  mode=region-scoped  hit_rate=0.250\n\
                         update_ratio=0.10  mode=full-drop  hit_rate=0.240\n";
        assert!(!check_churn_gate(regressed, &config).unwrap().passed);
        // A missing row is an error, never a silent pass.
        assert!(
            check_churn_gate("update_ratio=0.50  mode=full-drop  hit_rate=0.1", &config).is_err()
        );
    }

    #[test]
    fn cold_start_gate_holds_the_speedup_ratio() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "mode=rebuild  ms=42.000\n\
                    mode=open  ms=3.000  snapshot_bytes=120000\n\
                    metric=open_speedup  ratio=14.000\n\
                    mode=recover  ms=9.000  replayed=200  records_per_sec=22000\n";
        let outcome = check_cold_start_gate(good, &config).unwrap();
        assert!(outcome.passed);
        assert_eq!(outcome.measured, 14.0);
        let regressed = "metric=open_speedup  ratio=0.900\nmode=open ms=1.0";
        assert!(!check_cold_start_gate(regressed, &config).unwrap().passed);
        // A missing ratio row is an error, never a silent pass.
        assert!(check_cold_start_gate("mode=open ms=1.0", &config).is_err());
    }

    #[test]
    fn verify_hot_path_gate_holds_the_speedup_ratio() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "mode=legacy  candidates=800  cands_per_sec=120000\n\
                    mode=scratch  candidates=800  cands_per_sec=240000\n\
                    metric=scratch_speedup  ratio=2.000\n";
        let outcome = check_verify_hot_path_gate(good, &config).unwrap();
        assert!(outcome.passed);
        assert_eq!(outcome.measured, 2.0);
        let regressed = "metric=scratch_speedup  ratio=1.010\nmode=legacy x=1";
        assert!(
            !check_verify_hot_path_gate(regressed, &config)
                .unwrap()
                .passed
        );
        // A missing ratio row is an error, never a silent pass.
        assert!(check_verify_hot_path_gate("mode=legacy x=1", &config).is_err());
    }

    #[test]
    fn obs_overhead_gate_holds_the_cost_ceiling() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "mode=instrumented  qps=52000  results=900\n\
                    mode=metrics-off  qps=53000  results=900\n\
                    metric=throughput_cost  ratio=0.0189\n";
        let outcome = check_obs_overhead_gate(good, &config).unwrap();
        assert!(outcome.passed);
        assert!((outcome.measured - 0.0189).abs() < 1e-9);
        // Negative cost (instrumented faster, i.e. noise) still passes.
        let noisy = "metric=throughput_cost  ratio=-0.0100\nmode=instrumented qps=1";
        assert!(check_obs_overhead_gate(noisy, &config).unwrap().passed);
        let regressed = "metric=throughput_cost  ratio=0.1200\nmode=instrumented qps=1";
        assert!(!check_obs_overhead_gate(regressed, &config).unwrap().passed);
        // A missing ratio row is an error, never a silent pass.
        assert!(check_obs_overhead_gate("mode=instrumented qps=1", &config).is_err());
    }

    #[test]
    fn trace_overhead_gates_hold_cost_and_mismatch() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "mode=baseline  qps=52000  results=900\n\
                    mode=sample-1.00  qps=51000  results=900  traces=64  promoted=64\n\
                    metric=throughput_cost  ratio=0.0192\n\
                    metric=slow_log_mismatch  ratio=0.0\n";
        let outcomes = check_trace_overhead_gates(good, &config).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.passed));
        // Negative cost (traced faster, i.e. noise) still passes.
        let noisy = "metric=throughput_cost  ratio=-0.0100\n\
                     metric=slow_log_mismatch  ratio=0.0\n";
        assert!(check_trace_overhead_gates(noisy, &config)
            .unwrap()
            .iter()
            .all(|o| o.passed));
        // A hot-path regression trips the cost ceiling.
        let slow = "metric=throughput_cost  ratio=0.1200\n\
                    metric=slow_log_mismatch  ratio=0.0\n";
        let outcomes = check_trace_overhead_gates(slow, &config).unwrap();
        assert!(!outcomes[0].passed);
        assert!(outcomes[1].passed);
        // A single lost slow-query promotion is an exact-count failure.
        let lossy = "metric=throughput_cost  ratio=0.0100\n\
                     metric=slow_log_mismatch  ratio=1.0\n";
        let outcomes = check_trace_overhead_gates(lossy, &config).unwrap();
        assert!(outcomes[0].passed);
        assert!(!outcomes[1].passed);
        // Missing rows are errors, never silent passes.
        assert!(check_trace_overhead_gates("mode=baseline qps=1", &config).is_err());
    }

    #[test]
    fn shard_scaleout_gate_holds_the_fanout_ceiling() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "update_ratio=0.10  shards=8  mean_fanout=1.820  fanout_fraction=0.2275\n\
                    metric=fanout_fraction  ratio=0.2275\n";
        let outcome = check_shard_scaleout_gate(good, &config).unwrap();
        assert!(outcome.passed);
        assert!((outcome.measured - 0.2275).abs() < 1e-9);
        let regressed = "metric=fanout_fraction  ratio=0.8100\nshards=8 mean_fanout=6.5";
        assert!(
            !check_shard_scaleout_gate(regressed, &config)
                .unwrap()
                .passed
        );
        // A missing ratio row is an error, never a silent pass.
        assert!(check_shard_scaleout_gate("shards=8 mean_fanout=6.5", &config).is_err());
    }

    #[test]
    fn shard_failover_gates_hold_every_partial_failure_invariant() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "queries=120  answered=120  degraded_answers=38  degraded_mismatches=0\n\
                    metric=unanswered  ratio=0\n\
                    metric=degraded_mismatch  ratio=0\n\
                    metric=post_recovery_divergence  ratio=0\n\
                    metric=degraded_answers  ratio=38\n";
        let outcomes = check_shard_failover_gates(good, &config).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.passed));
        // A single degraded answer that is not exactly the healthy subset
        // is a silent-wrong-answer bug: typed failure.
        let wrong = "metric=unanswered  ratio=0\n\
                     metric=degraded_mismatch  ratio=1\n\
                     metric=post_recovery_divergence  ratio=0\n\
                     metric=degraded_answers  ratio=38\n";
        let outcomes = check_shard_failover_gates(wrong, &config).unwrap();
        assert!(!outcomes[1].passed);
        // An outage window that covered no queries passes the other gates
        // vacuously — the coverage floor catches it.
        let vacuous = "metric=unanswered  ratio=0\n\
                       metric=degraded_mismatch  ratio=0\n\
                       metric=post_recovery_divergence  ratio=0\n\
                       metric=degraded_answers  ratio=0\n";
        let outcomes = check_shard_failover_gates(vacuous, &config).unwrap();
        assert!(!outcomes[3].passed);
        // Missing rows are errors, never silent passes.
        assert!(check_shard_failover_gates("queries=120", &config).is_err());
    }

    #[test]
    fn open_loop_gates_hold_the_shed_floor_and_unanswered_ceiling() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "phase=burst  offered=all-at-once  answered=120  shed=392  unanswered=0\n\
                    metric=shed_fraction_under_overload  ratio=0.7656\n\
                    metric=unanswered_under_overload  ratio=0.0000\n";
        let outcomes = check_open_loop_gates(good, &config).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.passed));
        // A server that answers everything under overload is violating its
        // latency budget instead of shedding — the floor catches it.
        let no_shed = "metric=shed_fraction_under_overload  ratio=0.0000\n\
                       metric=unanswered_under_overload  ratio=0.0000\n";
        let outcomes = check_open_loop_gates(no_shed, &config).unwrap();
        assert!(!outcomes[0].passed);
        assert!(outcomes[1].passed);
        // A silently dropped request is the worst outcome: typed failure.
        let dropped = "metric=shed_fraction_under_overload  ratio=0.9000\n\
                       metric=unanswered_under_overload  ratio=0.0100\n";
        let outcomes = check_open_loop_gates(dropped, &config).unwrap();
        assert!(outcomes[0].passed);
        assert!(!outcomes[1].passed);
        // Missing rows are errors, never silent passes.
        assert!(check_open_loop_gates("phase=burst shed=1", &config).is_err());
    }

    #[test]
    fn markdown_and_json_renderers_carry_every_outcome() {
        let outcomes = vec![
            GateOutcome {
                name: "a.x".to_string(),
                measured: 0.5,
                threshold: 0.3,
                passed: true,
            },
            GateOutcome {
                name: "b.y".to_string(),
                measured: 1.0,
                threshold: 2.0,
                passed: false,
            },
        ];
        let md = render_markdown(&outcomes);
        assert!(md.contains("| gate | measured | threshold | result |"));
        assert!(md.contains("| `a.x` | 0.5000 | 0.3000 | ✅ pass |"));
        assert!(md.contains("| `b.y` | 1.0000 | 2.0000 | ❌ **fail** |"));

        let json = render_json(&outcomes);
        assert!(json.contains("\"passed\": false,"));
        assert!(json.contains(
            "{\"name\": \"a.x\", \"measured\": 0.5, \"threshold\": 0.3, \"passed\": true},"
        ));
        assert!(json
            .contains("{\"name\": \"b.y\", \"measured\": 1, \"threshold\": 2, \"passed\": false}"));
        // All-green report sets the top-level flag.
        assert!(render_json(&outcomes[..1]).contains("\"passed\": true,"));
        // Non-finite measurements degrade to null, not invalid JSON.
        let nan = vec![GateOutcome {
            name: "c.z".to_string(),
            measured: f64::NAN,
            threshold: 1.0,
            passed: false,
        }];
        assert!(render_json(&nan).contains("\"measured\": null"));
        // Error rendering escapes quotes so the artifact stays parseable.
        let err = render_json_error("cannot read \"x\"\n");
        assert!(err.contains("\"error\": \"cannot read \\\"x\\\"\\u000a\""));
        assert!(err.contains("\"passed\": false"));
    }

    #[test]
    fn run_gates_fails_loudly_when_results_are_missing() {
        // A results directory with no reports must be an error — a gate
        // that cannot find its report never counts as a pass.
        let dir = std::env::temp_dir().join("rknnt-gate-test-missing");
        std::fs::create_dir_all(&dir).unwrap();
        let gates = dir.join("ci_gates.toml");
        std::fs::write(&gates, GATES).unwrap();
        let err = run_gates(&dir, &gates).unwrap_err();
        assert!(err.contains("cannot read"), "got: {err}");
        assert!(err.contains("churn_throughput.txt"), "got: {err}");
        // An unreadable gates file is equally loud.
        let err = run_gates(&dir, &dir.join("nope.toml")).unwrap_err();
        assert!(err.contains("cannot read"), "got: {err}");
    }

    #[test]
    fn monitor_gates_check_both_modes() {
        let config = GateConfig::parse(GATES).unwrap();
        let good = "update_ratio=0.10  mode=monitored  reexec_rate=0.120\n\
                    update_ratio=0.10  mode=naive  reexec_rate=1.000\n";
        let outcomes = check_monitor_gates(good, &config).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.passed));
        let regressed = "update_ratio=0.10  mode=monitored  reexec_rate=0.990\n\
                         update_ratio=0.10  mode=naive  reexec_rate=1.000\n";
        let outcomes = check_monitor_gates(regressed, &config).unwrap();
        assert!(!outcomes[0].passed);
        assert!(outcomes[1].passed);
        let display = format!("{}", outcomes[0]);
        assert!(display.starts_with("FAIL"));
        assert!(display.contains("reexec_rate@0.10"));
    }
}
