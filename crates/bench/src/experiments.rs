//! One function per table / figure of the paper's evaluation (Section 7).
//!
//! Every function prints the rows/series the corresponding figure or table
//! reports (methods compared, parameter sweeps, phase breakdowns) and
//! returns them as a [`Report`] so the `experiments` binary can archive them
//! under `results/`. Absolute numbers are machine- and scale-dependent; the
//! *shape* (which method wins, how curves grow with k, |Q|, I, ψ(se),
//! τ/ψ(se)) is what reproduces the paper and what `EXPERIMENTS.md` records.

use crate::dataset::{Dataset, DatasetKind, ExperimentContext};
use crate::report::Report;
use rknnt_core::{
    DivideConquerEngine, EngineKind, FilterRefineEngine, RknnTEngine, RknntQuery, Semantics,
    VoronoiEngine,
};
use rknnt_data::{stats, workload};
use rknnt_geo::Point;
use rknnt_index::RouteStore;
use rknnt_obs::{
    MetricsRegistry, SlowQueryLog, SpanId, Telemetry, TraceContext, TraceCursor, TraceId,
};
use rknnt_routeplan::{
    BruteForcePlanner, Objective, PlanQuery, PlannerConfig, PrePlanner, Precomputation,
    PruningPlanner, RoutePlanner,
};
use rknnt_service::{
    EnginePolicy, QueryService, ServiceConfig, ShardedConfig, ShardedService, StoreUpdate,
};
use std::time::Duration;

/// Mean of a slice of durations (zero for an empty slice).
fn mean(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        Duration::ZERO
    } else {
        durations.iter().sum::<Duration>() / durations.len() as u32
    }
}

fn ms(d: Duration) -> String {
    format!("{:.3}ms", d.as_secs_f64() * 1e3)
}

/// Aggregated timings of one engine over a query batch.
struct SweepPoint {
    total: Duration,
    filtering: Duration,
    verification: Duration,
    results: usize,
}

/// Runs every engine over the same query batch and reports mean timings.
fn run_engines(
    dataset: &Dataset,
    queries: &[Vec<Point>],
    k: usize,
) -> Vec<(&'static str, SweepPoint)> {
    let fr = FilterRefineEngine::new(&dataset.routes, &dataset.transitions);
    let vo = VoronoiEngine::new(&dataset.routes, &dataset.transitions);
    let dc = DivideConquerEngine::new(&dataset.routes, &dataset.transitions);
    let engines: Vec<(&'static str, &dyn RknnTEngine)> = vec![
        ("Filter-Refine", &fr),
        ("Voronoi", &vo),
        ("Divide-Conquer", &dc),
    ];
    engines
        .into_iter()
        .map(|(name, engine)| {
            let mut filtering = Vec::new();
            let mut verification = Vec::new();
            let mut results = 0usize;
            for q in queries {
                let out = engine.execute(&RknntQuery::exists(q.clone(), k));
                filtering.push(out.timings.filtering);
                verification.push(out.timings.verification);
                results += out.len();
            }
            let point = SweepPoint {
                total: mean(&filtering) + mean(&verification),
                filtering: mean(&filtering),
                verification: mean(&verification),
                results,
            };
            (name, point)
        })
        .collect()
}

fn default_queries(
    ctx: &ExperimentContext,
    dataset: &Dataset,
    len: usize,
    interval: f64,
) -> Vec<Vec<Point>> {
    workload::rknnt_queries(
        &dataset.city,
        ctx.scale.queries_per_point,
        len,
        interval,
        ctx.scale.seed,
    )
}

// ---------------------------------------------------------------------------
// Dataset characterisation: Tables 2 & 3, Figures 6, 8, 17
// ---------------------------------------------------------------------------

/// Tables 2 and 3: dataset statistics.
pub fn datasets(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Tables 2 & 3 — dataset statistics");
    report.line(ctx.la.summary());
    report.line(ctx.nyc.summary());
    let synthetic = Dataset::build(DatasetKind::NycSynthetic, &ctx.scale);
    report.line(synthetic.summary());
    report.line("(paper: LA 1,208 routes / 109,036 transitions; NYC 2,022 routes / 195,833 transitions; synthetic 10M transitions)".to_string());
    report
}

/// Figure 6: histogram of the detour ratio τ/ψ over all generated routes.
pub fn fig6(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 6 — detour ratio histogram (travel / straight-line)");
    for dataset in [&ctx.la, &ctx.nyc] {
        let s = stats::route_stats(&dataset.city);
        let hist = stats::Histogram::build(&s.detour_ratios, 0.8, 0.2);
        report.line(format!("{}:", dataset.kind.name()));
        for (lower, count) in hist.rows() {
            if count > 0 {
                report.row(&[
                    ("ratio>=", format!("{lower:.1}")),
                    ("#routes", count.to_string()),
                ]);
            }
        }
    }
    report
}

/// Figure 8: coarse density grids of route points and transition endpoints.
pub fn fig8(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 8 — density grids (routes vs transitions)");
    for dataset in [&ctx.la, &ctx.nyc] {
        let area = dataset.city.config.area();
        let route_points: Vec<Point> = dataset.city.routes.iter().flatten().copied().collect();
        let transition_points: Vec<Point> = dataset
            .transitions
            .transitions()
            .flat_map(|t| [t.origin, t.destination])
            .collect();
        for (label, points) in [
            ("routes", &route_points),
            ("transitions", &transition_points),
        ] {
            let grid = stats::density_grid(points, &area, 10, 6);
            report.line(format!("{} — {label}:", dataset.kind.name()));
            for row in grid.iter().rev() {
                let cells: Vec<String> = row.iter().map(|c| format!("{c:>6}")).collect();
                report.line(cells.join(" "));
            }
        }
    }
    report
}

/// Figure 17: histograms of ψ(se), mean interval and #stops per route.
pub fn fig17(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 17 — route span / interval / stop-count histograms");
    for dataset in [&ctx.la, &ctx.nyc] {
        let s = stats::route_stats(&dataset.city);
        report.line(format!("{}:", dataset.kind.name()));
        let spans = stats::Histogram::build(&s.spans, 0.0, 2_000.0);
        for (lower, count) in spans.rows() {
            if count > 0 {
                report.row(&[
                    ("span>=m", format!("{lower:.0}")),
                    ("#routes", count.to_string()),
                ]);
            }
        }
        let intervals = stats::Histogram::build(&s.intervals, 0.0, 100.0);
        for (lower, count) in intervals.rows() {
            if count > 0 {
                report.row(&[
                    ("interval>=m", format!("{lower:.0}")),
                    ("#routes", count.to_string()),
                ]);
            }
        }
        let stop_counts: Vec<f64> = s.stop_counts.iter().map(|c| *c as f64).collect();
        let stops = stats::Histogram::build(&stop_counts, 0.0, 10.0);
        for (lower, count) in stops.rows() {
            if count > 0 {
                report.row(&[
                    ("#stops>=", format!("{lower:.0}")),
                    ("#routes", count.to_string()),
                ]);
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// RkNNT experiments: Figures 9–16
// ---------------------------------------------------------------------------

/// Figure 9: RkNNT running time vs k on the LA-like and NYC-like datasets.
pub fn fig9(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 9 — RkNNT running time vs k");
    for dataset in [&ctx.la, &ctx.nyc] {
        let queries = default_queries(
            ctx,
            dataset,
            ctx.default_query_len(),
            ctx.default_interval(),
        );
        for k in ctx.k_values() {
            for (name, point) in run_engines(dataset, &queries, k) {
                report.row(&[
                    ("dataset", dataset.kind.name().to_string()),
                    ("k", k.to_string()),
                    ("method", name.to_string()),
                    ("cpu", ms(point.total)),
                    ("results", point.results.to_string()),
                ]);
            }
        }
    }
    report
}

/// Figure 10: filtering vs verification breakdown vs k (LA-like).
pub fn fig10(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 10 — phase breakdown vs k (LA-like)");
    let queries = default_queries(
        ctx,
        &ctx.la,
        ctx.default_query_len(),
        ctx.default_interval(),
    );
    for k in ctx.k_values() {
        for (name, point) in run_engines(&ctx.la, &queries, k) {
            report.row(&[
                ("k", k.to_string()),
                ("method", name.to_string()),
                ("filtering", ms(point.filtering)),
                ("verification", ms(point.verification)),
            ]);
        }
    }
    report
}

/// Figure 11: running time vs query length |Q|.
pub fn fig11(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 11 — RkNNT running time vs |Q|");
    for dataset in [&ctx.la, &ctx.nyc] {
        for len in ctx.query_len_values() {
            let queries = default_queries(ctx, dataset, len, ctx.default_interval());
            for (name, point) in run_engines(dataset, &queries, ctx.default_k()) {
                report.row(&[
                    ("dataset", dataset.kind.name().to_string()),
                    ("|Q|", len.to_string()),
                    ("method", name.to_string()),
                    ("cpu", ms(point.total)),
                ]);
            }
        }
    }
    report
}

/// Figure 12: phase breakdown vs |Q| (LA-like).
pub fn fig12(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 12 — phase breakdown vs |Q| (LA-like)");
    for len in ctx.query_len_values() {
        let queries = default_queries(ctx, &ctx.la, len, ctx.default_interval());
        for (name, point) in run_engines(&ctx.la, &queries, ctx.default_k()) {
            report.row(&[
                ("|Q|", len.to_string()),
                ("method", name.to_string()),
                ("filtering", ms(point.filtering)),
                ("verification", ms(point.verification)),
            ]);
        }
    }
    report
}

/// Figure 13: effect of k and |Q| on the large synthetic transition set.
pub fn fig13(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 13 — synthetic dataset, effect of k and |Q|");
    let synthetic = Dataset::build(DatasetKind::NycSynthetic, &ctx.scale);
    let queries = default_queries(
        ctx,
        &synthetic,
        ctx.default_query_len(),
        ctx.default_interval(),
    );
    for k in ctx.k_values() {
        for (name, point) in run_engines(&synthetic, &queries, k) {
            report.row(&[
                ("sweep", "k".to_string()),
                ("k", k.to_string()),
                ("method", name.to_string()),
                ("cpu", ms(point.total)),
            ]);
        }
    }
    for len in ctx.query_len_values() {
        let queries = default_queries(ctx, &synthetic, len, ctx.default_interval());
        for (name, point) in run_engines(&synthetic, &queries, ctx.default_k()) {
            report.row(&[
                ("sweep", "|Q|".to_string()),
                ("|Q|", len.to_string()),
                ("method", name.to_string()),
                ("cpu", ms(point.total)),
            ]);
        }
    }
    report
}

/// Figure 14: running time vs the interval I between adjacent query points.
pub fn fig14(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 14 — RkNNT running time vs interval I");
    for dataset in [&ctx.la, &ctx.nyc] {
        for interval in ctx.interval_values() {
            let queries = default_queries(ctx, dataset, ctx.default_query_len(), interval);
            for (name, point) in run_engines(dataset, &queries, ctx.default_k()) {
                report.row(&[
                    ("dataset", dataset.kind.name().to_string()),
                    ("I_km", format!("{:.0}", interval / 1_000.0)),
                    ("method", name.to_string()),
                    ("cpu", ms(point.total)),
                ]);
            }
        }
    }
    report
}

/// Figure 15: phase breakdown vs interval I (LA-like).
pub fn fig15(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 15 — phase breakdown vs interval I (LA-like)");
    for interval in ctx.interval_values() {
        let queries = default_queries(ctx, &ctx.la, ctx.default_query_len(), interval);
        for (name, point) in run_engines(&ctx.la, &queries, ctx.default_k()) {
            report.row(&[
                ("I_km", format!("{:.0}", interval / 1_000.0)),
                ("method", name.to_string()),
                ("filtering", ms(point.filtering)),
                ("verification", ms(point.verification)),
            ]);
        }
    }
    report
}

/// Figure 16: per-query time distribution when every existing route is used
/// as a query (Divide-Conquer, k = 10); the query route is removed from the
/// RR-tree before being queried, as in the paper.
pub fn fig16(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 16 — real-route queries (Divide-Conquer, k = 10)");
    for dataset in [&ctx.la, &ctx.nyc] {
        let max_queries = (ctx.scale.queries_per_point * 3).max(6);
        let queries = workload::real_route_queries(&dataset.city, max_queries);
        let mut times = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            // Rebuild the store without this route (the paper removes the
            // route's points from the RR-tree before querying).
            let remaining: Vec<Vec<Point>> = dataset
                .city
                .routes
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, r)| r.clone())
                .collect();
            let (store, _) = RouteStore::bulk_build(Default::default(), remaining);
            let engine = DivideConquerEngine::new(&store, &dataset.transitions);
            let out = engine.execute(&RknntQuery::exists(q.clone(), ctx.default_k()));
            times.push(out.timings.total());
        }
        let secs: Vec<f64> = times.iter().map(|d| d.as_secs_f64()).collect();
        let hist = stats::Histogram::build(&secs, 0.0, 0.05);
        report.line(format!(
            "{} ({} queries, mean {}):",
            dataset.kind.name(),
            times.len(),
            ms(mean(&times))
        ));
        for (lower, count) in hist.rows() {
            if count > 0 {
                report.row(&[
                    ("time>=s", format!("{lower:.2}")),
                    ("#queries", count.to_string()),
                ]);
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Route planning experiments: Table 5, Figures 18–21
// ---------------------------------------------------------------------------

/// Table 5: pre-computation time (per-vertex RkNNT + all-pairs shortest
/// distance) for k = 1, 5, 10.
pub fn table5(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Table 5 — pre-computation time");
    for dataset in [&ctx.la, &ctx.nyc] {
        for k in [1usize, 5, 10] {
            let pre =
                Precomputation::build(&dataset.graph, &dataset.routes, &dataset.transitions, k);
            report.row(&[
                ("dataset", dataset.kind.name().to_string()),
                ("k", k.to_string()),
                ("rknnt", format!("{:.2}s", pre.rknnt_time().as_secs_f64())),
                (
                    "shortest",
                    format!("{:.2}s", pre.shortest_time().as_secs_f64()),
                ),
            ]);
        }
    }
    report
}

/// Runs the four planners on a batch of (start, end, τ) queries and reports
/// mean search times plus the optimal passenger count.
fn run_planners(
    dataset: &Dataset,
    pre: &Precomputation,
    queries: &[(PlanQuery, ())],
    config: PlannerConfig,
    report: &mut Report,
    label: &str,
) {
    let brute = BruteForcePlanner::new(
        &dataset.graph,
        &dataset.routes,
        &dataset.transitions,
        config,
    );
    let pre_planner = PrePlanner::new(&dataset.graph, pre, config);
    let pruning = PruningPlanner::new(&dataset.graph, pre);
    let mut rows: Vec<(&str, Vec<Duration>)> = vec![
        ("Bruteforce", Vec::new()),
        ("Pre", Vec::new()),
        ("Pre-Max", Vec::new()),
        ("Pre-Min", Vec::new()),
    ];
    for (query, _) in queries {
        rows[0]
            .1
            .push(brute.plan(query, Objective::Maximize).elapsed);
        rows[1]
            .1
            .push(pre_planner.plan(query, Objective::Maximize).elapsed);
        rows[2]
            .1
            .push(pruning.plan(query, Objective::Maximize).elapsed);
        rows[3]
            .1
            .push(pruning.plan(query, Objective::Minimize).elapsed);
    }
    for (name, times) in rows {
        report.row(&[
            ("point", label.to_string()),
            ("method", name.to_string()),
            ("cpu", ms(mean(&times))),
        ]);
    }
}

/// Figure 18: MaxRkNNT running time as the origin–destination span ψ(se)
/// grows.
pub fn fig18(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 18 — MaxRkNNT running time vs ψ(se)");
    let config = PlannerConfig {
        k: ctx.default_k(),
        max_candidate_paths: 512,
    };
    for dataset in [&ctx.la, &ctx.nyc] {
        let pre = Precomputation::build(
            &dataset.graph,
            &dataset.routes,
            &dataset.transitions,
            config.k,
        );
        for span in ctx.span_values(dataset) {
            let pairs = workload::plan_queries(
                &dataset.graph,
                (ctx.scale.queries_per_point / 3).max(2),
                span,
                span * 0.4,
                ctx.scale.seed,
            );
            let queries: Vec<(PlanQuery, ())> = pairs
                .into_iter()
                .map(|(start, end)| {
                    let shortest = pre.matrix().distance(start, end);
                    (
                        PlanQuery {
                            start,
                            end,
                            tau: shortest * 1.4,
                        },
                        (),
                    )
                })
                .filter(|(q, _)| q.tau.is_finite())
                .collect();
            let label = format!("{} span={:.0}m", dataset.kind.name(), span);
            run_planners(dataset, &pre, &queries, config, &mut report, &label);
        }
    }
    report
}

/// Figure 19: running time as the threshold ratio τ/ψ(se) grows.
pub fn fig19(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 19 — MaxRkNNT running time vs τ/ψ(se)");
    let config = PlannerConfig {
        k: ctx.default_k(),
        max_candidate_paths: 512,
    };
    for dataset in [&ctx.la, &ctx.nyc] {
        let pre = Precomputation::build(
            &dataset.graph,
            &dataset.routes,
            &dataset.transitions,
            config.k,
        );
        let span = ctx.span_values(dataset)[1];
        let pairs = workload::plan_queries(
            &dataset.graph,
            (ctx.scale.queries_per_point / 3).max(2),
            span,
            span * 0.4,
            ctx.scale.seed ^ 7,
        );
        for ratio in ctx.tau_ratio_values() {
            let queries: Vec<(PlanQuery, ())> = pairs
                .iter()
                .map(|(start, end)| {
                    let shortest = pre.matrix().distance(*start, *end);
                    (
                        PlanQuery {
                            start: *start,
                            end: *end,
                            tau: shortest * ratio,
                        },
                        (),
                    )
                })
                .filter(|(q, _)| q.tau.is_finite())
                .collect();
            let label = format!("{} tau/psi={ratio:.1}", dataset.kind.name());
            run_planners(dataset, &pre, &queries, config, &mut report, &label);
        }
    }
    report
}

/// Figure 20: distribution of MaxRkNNT running time over "real" route
/// queries (each existing route's endpoints and travel distance as the
/// query).
pub fn fig20(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 20 — MaxRkNNT on real route queries");
    let config = PlannerConfig {
        k: ctx.default_k(),
        max_candidate_paths: 512,
    };
    for dataset in [&ctx.la, &ctx.nyc] {
        let pre = Precomputation::build(
            &dataset.graph,
            &dataset.routes,
            &dataset.transitions,
            config.k,
        );
        let pruning = PruningPlanner::new(&dataset.graph, &pre);
        let max_queries = (ctx.scale.queries_per_point * 2).max(6);
        let mut times = Vec::new();
        for route in dataset.city.routes.iter().take(max_queries) {
            let start = dataset
                .graph
                .nearest_vertex(route.first().expect("route"))
                .expect("vertex");
            let end = dataset
                .graph
                .nearest_vertex(route.last().expect("route"))
                .expect("vertex");
            if start == end {
                continue;
            }
            let tau = rknnt_geo::travel_distance(route).max(pre.matrix().distance(start, end));
            if !tau.is_finite() {
                continue;
            }
            let out = pruning.plan(&PlanQuery { start, end, tau }, Objective::Maximize);
            times.push(out.elapsed);
        }
        let secs: Vec<f64> = times.iter().map(|d| d.as_secs_f64()).collect();
        let hist = stats::Histogram::build(&secs, 0.0, 0.05);
        report.line(format!(
            "{} ({} queries, mean {}):",
            dataset.kind.name(),
            times.len(),
            ms(mean(&times))
        ));
        for (lower, count) in hist.rows() {
            if count > 0 {
                report.row(&[
                    ("time>=s", format!("{lower:.2}")),
                    ("#queries", count.to_string()),
                ]);
            }
        }
    }
    report
}

/// Figure 21: case study comparing the original route, the shortest route,
/// the MaxRkNNT route and the MinRkNNT route for one origin/destination
/// pair.
pub fn fig21(ctx: &ExperimentContext) -> Report {
    let mut report = Report::new("Figure 21 — case study: original vs shortest vs Max/MinRkNNT");
    let dataset = &ctx.nyc;
    let config = PlannerConfig {
        k: ctx.default_k(),
        max_candidate_paths: 512,
    };
    let pre = Precomputation::build(
        &dataset.graph,
        &dataset.routes,
        &dataset.transitions,
        config.k,
    );
    // Pick the generated route with the most stops as the "original" line.
    let original = dataset
        .city
        .routes
        .iter()
        .max_by_key(|r| r.len())
        .expect("at least one route")
        .clone();
    let start = dataset
        .graph
        .nearest_vertex(original.first().expect("route"))
        .expect("vertex");
    let end = dataset
        .graph
        .nearest_vertex(original.last().expect("route"))
        .expect("vertex");
    let original_tau = rknnt_geo::travel_distance(&original);
    let engine = DivideConquerEngine::new(&dataset.routes, &dataset.transitions);
    let original_passengers = engine
        .execute(&RknntQuery::exists(original.clone(), config.k))
        .len();
    report.row(&[
        ("route", "Original".to_string()),
        ("search", "n/a".to_string()),
        ("passengers", original_passengers.to_string()),
        ("distance_m", format!("{original_tau:.0}")),
        ("stops", original.len().to_string()),
    ]);

    let shortest = dataset.graph.shortest_path(start, end);
    if let Some(path) = &shortest {
        let positions: Vec<Point> = path
            .vertices
            .iter()
            .map(|v| dataset.graph.position(*v))
            .collect();
        let started = std::time::Instant::now();
        let passengers = engine
            .execute(&RknntQuery::exists(positions, config.k))
            .len();
        report.row(&[
            ("route", "Shortest".to_string()),
            ("search", ms(started.elapsed())),
            ("passengers", passengers.to_string()),
            ("distance_m", format!("{:.0}", path.length)),
            ("stops", path.len().to_string()),
        ]);
    }

    let pruning = PruningPlanner::new(&dataset.graph, &pre);
    let tau = original_tau.max(pre.matrix().distance(start, end));
    for (label, objective) in [
        ("MaxRkNNT", Objective::Maximize),
        ("MinRkNNT", Objective::Minimize),
    ] {
        let out = pruning.plan(&PlanQuery { start, end, tau }, objective);
        report.row(&[
            ("route", label.to_string()),
            ("search", ms(out.elapsed)),
            ("passengers", out.passenger_count().to_string()),
            ("distance_m", format!("{:.0}", out.travel_distance())),
            (
                "stops",
                out.route.as_ref().map(|r| r.len()).unwrap_or(0).to_string(),
            ),
        ]);
    }
    report
}

// ---------------------------------------------------------------------------
// Serving-layer experiments (beyond the paper)
// ---------------------------------------------------------------------------

/// Workload for the service experiment: `total` queries cycling a pool of
/// generated routes, so the stream contains the exact repetition (popular
/// routes queried again and again) a production service sees.
fn service_workload(
    ctx: &ExperimentContext,
    dataset: &Dataset,
    semantics: Semantics,
    total: usize,
) -> Vec<RknntQuery> {
    let pool = workload::rknnt_queries(
        &dataset.city,
        (ctx.scale.queries_per_point * 8).max(24),
        ctx.default_query_len(),
        1_000.0,
        ctx.scale.seed ^ 0xbee,
    );
    (0..total)
        .map(|i| RknntQuery {
            route: pool[i % pool.len()].clone(),
            k: ctx.default_k(),
            semantics,
        })
        .collect()
}

/// Service throughput: sequential per-query execution vs batched execution
/// vs batched execution with the result cache, at batch sizes 1/16/256 and
/// worker counts 1/4/8 (QPS = queries / wall-clock).
pub fn service_throughput(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    semantics: Semantics,
) -> Report {
    let mut report = Report::new("Service throughput — sequential vs batched vs batched+cache");
    let dataset = Dataset::build(kind, &ctx.scale);
    let total = (ctx.scale.queries_per_point * 64).clamp(64, 1024);
    let queries = service_workload(ctx, &dataset, semantics, total);
    report.line(format!(
        "{} — {} queries (pool cycling), k = {}, {} semantics",
        dataset.kind.name(),
        queries.len(),
        ctx.default_k(),
        semantics,
    ));

    let qps = |n: usize, elapsed: Duration| -> String {
        if elapsed.is_zero() {
            "inf".to_string()
        } else {
            format!("{:.0}", n as f64 / elapsed.as_secs_f64())
        }
    };

    // Sequential baseline: the pre-service world, one engine, one thread.
    let engine = EngineKind::Voronoi.build(&dataset.routes, &dataset.transitions);
    let started = std::time::Instant::now();
    let mut checksum = 0usize;
    for q in &queries {
        checksum += engine.execute(q).len();
    }
    let sequential = started.elapsed();
    report.row(&[
        ("mode", "sequential".to_string()),
        ("batch", "1".to_string()),
        ("workers", "1".to_string()),
        ("qps", qps(queries.len(), sequential)),
        ("results", checksum.to_string()),
    ]);

    for (mode, cache_capacity) in [("batched", 0usize), ("batched+cache", 4_096)] {
        for workers in [1usize, 4, 8] {
            for batch in [1usize, 16, 256] {
                let service = QueryService::new(
                    dataset.routes.clone(),
                    dataset.transitions.clone(),
                    ServiceConfig::default()
                        .with_workers(workers)
                        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi))
                        .with_cache_capacity(cache_capacity),
                );
                let started = std::time::Instant::now();
                let mut results = 0usize;
                let mut groups = 0usize;
                let mut saved = 0usize;
                let mut hits = 0usize;
                for chunk in queries.chunks(batch) {
                    let (outs, stats) = service.execute_batch(chunk);
                    results += outs.iter().map(|r| r.len()).sum::<usize>();
                    groups += stats.groups;
                    saved += stats.filters_saved + stats.duplicates_coalesced;
                    hits += stats.cache_hits;
                }
                let elapsed = started.elapsed();
                assert_eq!(
                    results, checksum,
                    "batched answers diverged from sequential"
                );
                report.row(&[
                    ("mode", mode.to_string()),
                    ("batch", batch.to_string()),
                    ("workers", workers.to_string()),
                    ("qps", qps(queries.len(), elapsed)),
                    ("groups", groups.to_string()),
                    ("saved", saved.to_string()),
                    ("cache_hits", hits.to_string()),
                ]);
            }
        }
    }
    report
}

/// One mode × update-ratio measurement of the churn experiment.
struct ChurnPoint {
    ratio: f64,
    mode: &'static str,
    queries: usize,
    qps: f64,
    hit_rate: f64,
    evicted: usize,
    checksum: usize,
}

/// Id a store assigned while applying an update (`NoId` for removals,
/// which consume rather than create).
enum AssignedId {
    Transition(rknnt_index::TransitionId),
    Route(rknnt_index::RouteId),
    NoId,
}

/// Applies one concrete update to a raw store pair, returning the id the
/// store assigned, or `None` when the store rejected the update. The event
/// resolver and the full-drop baseline (which routes every update through
/// `update_stores`) share this single mutation path, so the ids they see
/// can never drift apart.
fn apply_to_stores(
    routes: &mut rknnt_index::RouteStore,
    transitions: &mut rknnt_index::TransitionStore,
    update: &StoreUpdate,
) -> Option<AssignedId> {
    match update {
        StoreUpdate::InsertTransition {
            origin,
            destination,
        } => transitions
            .insert(*origin, *destination)
            .map(AssignedId::Transition),
        StoreUpdate::ExpireTransition(id) => transitions.remove(*id).then_some(AssignedId::NoId),
        StoreUpdate::InsertRoute(points) => {
            routes.insert_route(points.clone()).map(AssignedId::Route)
        }
        StoreUpdate::RemoveRoute(id) => routes.remove_route(*id).then_some(AssignedId::NoId),
    }
}

/// Resolves a churn stream's random draws into concrete queries and
/// [`StoreUpdate`]s by replaying the updates against a scratch store pair —
/// every consumer then applies byte-identical operations and assigns the
/// same ids.
enum ChurnStep {
    Query(RknntQuery),
    Update(StoreUpdate),
}

fn resolve_churn(
    dataset: &Dataset,
    stream: Vec<workload::ChurnEvent>,
    k: usize,
    semantics: Semantics,
) -> Vec<ChurnStep> {
    let mut routes = dataset.routes.clone();
    let mut transitions = dataset.transitions.clone();
    let mut live_transitions = transitions.transition_ids();
    let mut live_routes = routes.route_ids();
    let mut steps = Vec::with_capacity(stream.len());
    for event in stream {
        let update = match event {
            workload::ChurnEvent::Query(route) => {
                steps.push(ChurnStep::Query(RknntQuery {
                    route,
                    k,
                    semantics,
                }));
                continue;
            }
            workload::ChurnEvent::InsertTransition(origin, destination) => {
                StoreUpdate::InsertTransition {
                    origin,
                    destination,
                }
            }
            workload::ChurnEvent::ExpireTransition(draw) => {
                if live_transitions.is_empty() {
                    continue;
                }
                let victim = draw as usize % live_transitions.len();
                StoreUpdate::ExpireTransition(live_transitions.swap_remove(victim))
            }
            workload::ChurnEvent::InsertRoute(points) => StoreUpdate::InsertRoute(points),
            workload::ChurnEvent::RemoveRoute(draw) => {
                if live_routes.len() <= 4 {
                    continue;
                }
                let victim = draw as usize % live_routes.len();
                StoreUpdate::RemoveRoute(live_routes.swap_remove(victim))
            }
        };
        match apply_to_stores(&mut routes, &mut transitions, &update) {
            None => continue, // rejected at the store boundary: not a step
            Some(AssignedId::Transition(id)) => live_transitions.push(id),
            Some(AssignedId::Route(id)) => live_routes.push(id),
            Some(AssignedId::NoId) => {}
        }
        steps.push(ChurnStep::Update(update));
    }
    steps
}

/// Replays resolved churn steps through one service configuration.
///
/// `region_scoped` selects the incremental [`QueryService::apply_updates`]
/// path; the baseline routes every update through
/// [`QueryService::update_stores`], which drops the whole cache.
fn run_churn_mode(
    dataset: &Dataset,
    steps: &[ChurnStep],
    ratio: f64,
    region_scoped: bool,
) -> ChurnPoint {
    let mut service = QueryService::new(
        dataset.routes.clone(),
        dataset.transitions.clone(),
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi)),
    );
    let mut queries = 0usize;
    let mut checksum = 0usize;
    let mut evicted = 0usize;
    let started = std::time::Instant::now();
    for step in steps {
        match step {
            ChurnStep::Query(query) => {
                queries += 1;
                checksum += service.execute(query).len();
            }
            ChurnStep::Update(update) => {
                if region_scoped {
                    let stats = service.apply_updates(vec![update.clone()]);
                    evicted += stats.evicted_entries;
                } else {
                    evicted += service.cache_len();
                    service.update_stores(|routes, transitions| {
                        let _ = apply_to_stores(routes, transitions, update);
                    });
                }
            }
        }
    }
    let elapsed = started.elapsed();
    let stats = service.cache_stats();
    ChurnPoint {
        ratio,
        mode: if region_scoped {
            "region-scoped"
        } else {
            "full-drop"
        },
        queries,
        qps: if elapsed.is_zero() {
            f64::INFINITY
        } else {
            queries as f64 / elapsed.as_secs_f64()
        },
        hit_rate: if stats.hits + stats.misses == 0 {
            0.0
        } else {
            stats.hits as f64 / (stats.hits + stats.misses) as f64
        },
        evicted,
        checksum,
    }
}

fn churn_points(
    ctx: &ExperimentContext,
    dataset: &Dataset,
    semantics: Semantics,
    ratio: f64,
) -> (ChurnPoint, ChurnPoint) {
    let events = (ctx.scale.queries_per_point * 60).clamp(120, 1_200);
    let mut config = rknnt_data::ChurnConfig::new(events, ratio, ctx.scale.seed ^ 0xc4a2);
    config.query_pool = 8;
    config.query_len = ctx.default_query_len();
    let stream = workload::churn_stream(&dataset.city, &config);
    let steps = resolve_churn(dataset, stream, ctx.default_k(), semantics);
    let region = run_churn_mode(dataset, &steps, ratio, true);
    let full = run_churn_mode(dataset, &steps, ratio, false);
    assert_eq!(
        region.checksum, full.checksum,
        "region-scoped answers diverged from the full-drop baseline"
    );
    (region, full)
}

/// Replays the 10 % churn stream once more through a storage-attached
/// service with periodic checkpoints and appends the resulting metrics
/// snapshot to the report, so every churn run archives the per-stage
/// latency histograms (cache lookup, grouping, execution, finalize, the
/// engine-reported filter/verify split, WAL fsync, checkpoint) and the
/// `checkpoint_stall_ns` high-water gauge alongside the throughput rows.
fn churn_metrics_snapshot(
    ctx: &ExperimentContext,
    dataset: &Dataset,
    semantics: Semantics,
    report: &mut Report,
) {
    let events = (ctx.scale.queries_per_point * 60).clamp(120, 1_200);
    let mut config = rknnt_data::ChurnConfig::new(events, 0.10, ctx.scale.seed ^ 0xc4a2);
    config.query_pool = 8;
    config.query_len = ctx.default_query_len();
    let stream = workload::churn_stream(&dataset.city, &config);
    let steps = resolve_churn(dataset, stream, ctx.default_k(), semantics);
    let dir = std::env::temp_dir().join(format!("rknnt-churn-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut service = QueryService::new(
        dataset.routes.clone(),
        dataset.transitions.clone(),
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi)),
    );
    service
        .attach_storage(&dir, rknnt_service::StorageConfig::default())
        .expect("attach churn metrics storage");
    let mut updates = 0usize;
    for step in &steps {
        match step {
            ChurnStep::Query(query) => {
                let _ = service.execute(query);
            }
            ChurnStep::Update(update) => {
                service.apply_updates(vec![update.clone()]);
                updates += 1;
                if updates.is_multiple_of(32) {
                    service.checkpoint().expect("mid-stream checkpoint");
                }
            }
        }
    }
    service.checkpoint().expect("final checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    report.line(format!(
        "metrics snapshot (durable region-scoped pass, update_ratio=0.10, {updates} updates, checkpoint every 32):"
    ));
    for line in service.metrics_text().lines() {
        report.line(line.to_string());
    }
}

/// Churn throughput: interleaved query/update streams at 1/10/50% update
/// ratios; region-scoped invalidation ([`QueryService::apply_updates`]) vs
/// the full-drop baseline (`update_stores`), reporting retained hit-rate and
/// QPS. Both modes must answer identically — asserted inline. A final
/// durable pass appends the full metrics snapshot (stage latency
/// histograms, WAL fsync, checkpoint stall) to the archived report.
pub fn churn_throughput(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    semantics: Semantics,
) -> Report {
    let mut report = Report::new("Churn throughput — region-scoped invalidation vs full drop");
    let dataset = Dataset::build(kind, &ctx.scale);
    report.line(format!(
        "{} — k = {}, {} semantics, Voronoi engine, 1 worker",
        dataset.kind.name(),
        ctx.default_k(),
        semantics,
    ));
    for ratio in [0.01, 0.10, 0.50] {
        let (region, full) = churn_points(ctx, &dataset, semantics, ratio);
        for point in [region, full] {
            report.row(&[
                ("update_ratio", format!("{:.2}", point.ratio)),
                ("mode", point.mode.to_string()),
                ("queries", point.queries.to_string()),
                ("qps", format!("{:.0}", point.qps)),
                ("hit_rate", format!("{:.3}", point.hit_rate)),
                ("evicted", point.evicted.to_string()),
            ]);
        }
    }
    churn_metrics_snapshot(ctx, &dataset, semantics, &mut report);
    report
}

/// One mode × update-ratio measurement of the continuous-monitoring
/// experiment.
struct MonitorPoint {
    ratio: f64,
    mode: &'static str,
    subs: usize,
    updates: usize,
    /// Subscription re-executions per (update × live subscription) — the
    /// naive re-run-all baseline is exactly 1.0 by construction.
    reexec_rate: f64,
    /// Mean wall-clock to bring every standing result current after one
    /// update (includes delta emission for the monitored mode, re-running
    /// every query for the naive mode).
    mean_update: Duration,
    deltas: usize,
    /// Final standing results, for the cross-mode identity assertion.
    final_results: Vec<Vec<rknnt_index::TransitionId>>,
}

/// Replays resolved churn steps against `subs` standing queries.
///
/// `monitored` keeps them current through the subscription subsystem
/// ([`QueryService::subscribe`] + [`QueryService::apply_updates`] deltas);
/// the baseline re-executes every standing query after every update — the
/// re-poll strategy the monitor replaces. The baseline runs with the result
/// cache *disabled*: with it on, most "re-runs" would be LRU hits and the
/// reported cost and re-execution rate would be bookkeeping, not
/// measurement. The monitored mode keeps the default cache for its one-shot
/// steps — its standing results never touch the LRU anyway (subscription
/// re-execution bypasses it) — and one-shot query time is not part of any
/// reported metric in either mode.
fn run_monitor_mode(
    dataset: &Dataset,
    steps: &[ChurnStep],
    standing: &[RknntQuery],
    ratio: f64,
    monitored: bool,
) -> MonitorPoint {
    let mut service = QueryService::new(
        dataset.routes.clone(),
        dataset.transitions.clone(),
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi))
            .with_cache_capacity(if monitored { 4_096 } else { 0 }),
    );
    let mut naive_results: Vec<Vec<rknnt_index::TransitionId>> = Vec::new();
    let mut sub_ids = Vec::new();
    if monitored {
        for query in standing {
            sub_ids.push(service.subscribe(query.clone()));
        }
    } else {
        let (results, _) = service.execute_batch(standing);
        naive_results = results.into_iter().map(|r| r.transitions).collect();
    }
    let mut updates = 0usize;
    let mut reexecutions = 0usize;
    let mut deltas = 0usize;
    let mut update_time = Duration::ZERO;
    for step in steps {
        match step {
            ChurnStep::Query(query) => {
                let _ = service.execute(query);
            }
            ChurnStep::Update(update) => {
                updates += 1;
                let started = std::time::Instant::now();
                let stats = service.apply_updates(vec![update.clone()]);
                if monitored {
                    reexecutions += stats.subs_reexecuted;
                    deltas += stats.deltas.len();
                } else {
                    let (results, _) = service.execute_batch(standing);
                    naive_results = results.into_iter().map(|r| r.transitions).collect();
                    reexecutions += standing.len();
                }
                update_time += started.elapsed();
            }
        }
    }
    let final_results = if monitored {
        sub_ids
            .iter()
            .map(|id| service.subscription_result(*id).unwrap().to_vec())
            .collect()
    } else {
        naive_results
    };
    let denominator = (updates * standing.len()).max(1);
    MonitorPoint {
        ratio,
        mode: if monitored { "monitored" } else { "naive" },
        subs: standing.len(),
        updates,
        reexec_rate: reexecutions as f64 / denominator as f64,
        mean_update: if updates == 0 {
            Duration::ZERO
        } else {
            update_time / updates as u32
        },
        deltas,
        final_results,
    }
}

fn monitor_points(
    ctx: &ExperimentContext,
    dataset: &Dataset,
    semantics: Semantics,
    ratio: f64,
) -> (MonitorPoint, MonitorPoint) {
    let events = (ctx.scale.queries_per_point * 60).clamp(120, 1_200);
    let mut config = rknnt_data::ChurnConfig::new(events, ratio, ctx.scale.seed ^ 0x90a1);
    config.query_pool = 8;
    config.query_len = ctx.default_query_len();
    let stream = workload::churn_stream(&dataset.city, &config);
    let steps = resolve_churn(dataset, stream, ctx.default_k(), semantics);
    // Standing queries cycle a pool so some subscriptions share a
    // (route, k) pair — dirty re-execution then shares filter work too.
    let subs = (ctx.scale.queries_per_point * 4).clamp(8, 64);
    let pool = workload::rknnt_queries(
        &dataset.city,
        (subs / 2).max(1),
        ctx.default_query_len(),
        1_000.0,
        ctx.scale.seed ^ 0x5e1,
    );
    let standing: Vec<RknntQuery> = (0..subs)
        .map(|i| RknntQuery {
            route: pool[i % pool.len()].clone(),
            k: ctx.default_k(),
            semantics,
        })
        .collect();
    let monitored = run_monitor_mode(dataset, &steps, &standing, ratio, true);
    let naive = run_monitor_mode(dataset, &steps, &standing, ratio, false);
    assert_eq!(
        monitored.final_results, naive.final_results,
        "monitored standing results diverged from naive re-run-all"
    );
    (monitored, naive)
}

/// Continuous monitoring: N standing queries kept current under interleaved
/// query/update churn at 1/10/50 % update ratios. The subscription monitor
/// (classify + selective re-execution, per-batch deltas) vs the naive
/// baseline that re-runs every standing query after every update. Both must
/// hold identical standing results at the end — asserted inline.
pub fn continuous_monitoring(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    semantics: Semantics,
) -> Report {
    let mut report = Report::new("Continuous monitoring — subscriptions vs naive re-run-all");
    let dataset = Dataset::build(kind, &ctx.scale);
    report.line(format!(
        "{} — k = {}, {} semantics, Voronoi engine, 1 worker",
        dataset.kind.name(),
        ctx.default_k(),
        semantics,
    ));
    for ratio in [0.01, 0.10, 0.50] {
        let (monitored, naive) = monitor_points(ctx, &dataset, semantics, ratio);
        for point in [monitored, naive] {
            report.row(&[
                ("update_ratio", format!("{:.2}", point.ratio)),
                ("mode", point.mode.to_string()),
                ("subs", point.subs.to_string()),
                ("updates", point.updates.to_string()),
                ("reexec_rate", format!("{:.3}", point.reexec_rate)),
                ("mean_update_ms", ms(point.mean_update)),
                ("deltas", point.deltas.to_string()),
            ]);
        }
    }
    report
}

/// Cold start: opening a service from a durable snapshot
/// ([`QueryService::open`]) vs rebuilding it from raw generation (the
/// restart path before the storage engine existed), plus WAL replay
/// throughput for a recovery that arrives mid-stream.
///
/// Three timed paths, best-of-3 each (the machine-independent *ratio*
/// `rebuild / open` is what the CI gate holds):
///
/// * **rebuild** — [`Dataset::build`]: generate the city and transitions,
///   bulk-build the RR-/TR-trees and the graph;
/// * **open** — load the checksummed snapshot and reconstruct the stores;
/// * **recover** — open a directory whose snapshot is stale by a churn
///   stream's worth of WAL records, replaying them through
///   `apply_updates`.
///
/// Opened and recovered services must answer byte-identically to their
/// freshly built references — asserted inline.
pub fn cold_start(ctx: &ExperimentContext, kind: DatasetKind, semantics: Semantics) -> Report {
    let mut report = Report::new("Cold start — open-from-snapshot vs rebuild-from-raw");
    let service_config = ServiceConfig::default()
        .with_workers(1)
        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));
    // No fsync: this experiment measures codec + rebuild cost, not disk
    // flush latency (the recovery suites cover durability semantics).
    let storage_config = rknnt_service::StorageConfig::default().with_fsync(false);
    let dir = std::env::temp_dir().join(format!("rknnt-cold-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Rebuild-from-raw, best of 3.
    let mut rebuild_ms = f64::INFINITY;
    let mut built = None;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let dataset = Dataset::build(kind, &ctx.scale);
        let service = QueryService::new(
            dataset.routes.clone(),
            dataset.transitions.clone(),
            service_config,
        );
        rebuild_ms = rebuild_ms.min(started.elapsed().as_secs_f64() * 1e3);
        drop(service);
        built = Some(dataset);
    }
    let dataset = built.expect("three rebuilds ran");
    report.line(format!(
        "{} — {} semantics (rebuild includes generation + index/graph builds)",
        dataset.kind.name(),
        semantics,
    ));

    // Seed the storage directory with a checkpoint of the built state.
    let mut seeded = QueryService::new(
        dataset.routes.clone(),
        dataset.transitions.clone(),
        service_config,
    );
    seeded
        .attach_storage(&dir, storage_config)
        .expect("attach cold-start storage");
    let snapshot_bytes = seeded
        .storage_stats()
        .expect("storage attached")
        .snapshot_bytes;
    drop(seeded);

    // Open-from-snapshot, best of 3, answers verified against a fresh build.
    let mut open_ms = f64::INFINITY;
    let mut opened = None;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let (service, stats) = QueryService::open(&dir, service_config, storage_config)
            .expect("open cold-start storage");
        open_ms = open_ms.min(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(stats.replayed_records, 0, "checkpoint left no tail");
        opened = Some(service);
    }
    let opened = opened.expect("three opens ran");
    let fresh = QueryService::new(
        dataset.routes.clone(),
        dataset.transitions.clone(),
        service_config,
    );
    let probes: Vec<RknntQuery> = workload::rknnt_queries(
        &dataset.city,
        4,
        ctx.default_query_len(),
        1_000.0,
        ctx.scale.seed,
    )
    .into_iter()
    .map(|route| RknntQuery {
        route,
        k: ctx.default_k(),
        semantics,
    })
    .collect();
    let (fresh_answers, _) = fresh.execute_batch(&probes);
    let (opened_answers, _) = opened.execute_batch(&probes);
    for (a, b) in fresh_answers.iter().zip(&opened_answers) {
        assert_eq!(
            a.transitions, b.transitions,
            "opened-from-snapshot answers diverged from rebuild"
        );
    }
    drop(opened);

    // Recovery replay: leave a churn stream in the WAL behind the snapshot.
    let events = (ctx.scale.queries_per_point * 60).clamp(120, 600);
    let mut churn_config = rknnt_data::ChurnConfig::new(events, 1.0, ctx.scale.seed ^ 0xc01d);
    churn_config.query_len = ctx.default_query_len();
    let stream = workload::churn_stream(&dataset.city, &churn_config);
    let updates: Vec<StoreUpdate> = resolve_churn(&dataset, stream, ctx.default_k(), semantics)
        .into_iter()
        .filter_map(|step| match step {
            ChurnStep::Update(update) => Some(update),
            ChurnStep::Query(_) => None,
        })
        .collect();
    let (mut behind, _) =
        QueryService::open(&dir, service_config, storage_config).expect("reopen for churn");
    let mut reference = QueryService::new(
        dataset.routes.clone(),
        dataset.transitions.clone(),
        service_config,
    );
    for chunk in updates.chunks(16) {
        behind.apply_updates(chunk.to_vec());
        reference.apply_updates(chunk.to_vec());
    }
    drop(behind); // crash: snapshot + WAL tail on disk

    let started = std::time::Instant::now();
    let (recovered, stats) =
        QueryService::open(&dir, service_config, storage_config).expect("recover cold-start");
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(stats.replayed_records as usize, updates.len());
    let (ref_answers, _) = reference.execute_batch(&probes);
    let (rec_answers, _) = recovered.execute_batch(&probes);
    for (a, b) in ref_answers.iter().zip(&rec_answers) {
        assert_eq!(
            a.transitions, b.transitions,
            "recovered answers diverged from the uninterrupted reference"
        );
    }
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // Plain numeric ms fields (no unit suffix): the bench gate parses them.
    report.row(&[
        ("mode", "rebuild".to_string()),
        ("ms", format!("{rebuild_ms:.3}")),
    ]);
    report.row(&[
        ("mode", "open".to_string()),
        ("ms", format!("{open_ms:.3}")),
        ("snapshot_bytes", snapshot_bytes.to_string()),
    ]);
    report.row(&[
        ("metric", "open_speedup".to_string()),
        ("ratio", format!("{:.3}", rebuild_ms / open_ms.max(1e-6))),
    ]);
    report.row(&[
        ("mode", "recover".to_string()),
        ("ms", format!("{recover_ms:.3}")),
        ("replayed", updates.len().to_string()),
        (
            "records_per_sec",
            format!("{:.0}", updates.len() as f64 / (recover_ms / 1e3).max(1e-9)),
        ),
    ]);
    report
}

/// Verify hot path: candidates/sec through `count_closer_routes_sq` — the
/// per-candidate kernel of the verification phase — on the scratch path
/// (epoch-stamped route marks + reused traversal stack + CSR NList slices)
/// vs the legacy allocating path (fresh `HashSet<RouteId>` + per-node
/// `Vec<NodeRef>` children) over the same store, same candidates, same
/// thresholds.
///
/// Every candidate's count is asserted byte-identical between the two paths
/// before anything is timed; the machine-independent *ratio*
/// (`scratch_speedup`) is what the CI gate holds, via
/// `verify_hot_path.min_scratch_speedup` in `results/ci_gates.toml`.
pub fn verify_hot_path(ctx: &ExperimentContext, kind: DatasetKind) -> Report {
    use rknnt_geo::point_route_distance_sq;

    // Title note: the experiments binary derives the report filename from
    // the first two title words, so "Verify hot_path" lands the report at
    // `<out>/verify_hot_path.txt`, where the bench gate expects it.
    let mut report = Report::new("Verify hot_path — scratch vs allocating count_closer_routes_sq");
    let dataset = Dataset::build(kind, &ctx.scale);
    let nlist = rknnt_index::NList::build(&dataset.routes);
    let k = ctx.default_k();
    let query = workload::rknnt_queries(
        &dataset.city,
        1,
        ctx.default_query_len(),
        1_000.0,
        ctx.scale.seed ^ 0x40f,
    )
    .pop()
    .expect("one query requested");
    // The candidate set the real pipeline would verify in the worst case:
    // every transition endpoint, each with its exact squared threshold
    // (vertex distance to the query route).
    let candidates: Vec<Point> = dataset
        .transitions
        .transitions()
        .flat_map(|t| [t.origin, t.destination])
        .collect();
    let thresholds: Vec<f64> = candidates
        .iter()
        .map(|c| point_route_distance_sq(c, &query))
        .collect();
    report.line(format!(
        "{} — k = {k}, {} candidate endpoints, {} routes",
        dataset.kind.name(),
        candidates.len(),
        dataset.routes.num_routes(),
    ));

    let legacy_pass = || -> Vec<usize> {
        candidates
            .iter()
            .zip(&thresholds)
            .map(|(c, sq)| rknnt_core::count_closer_routes_sq(&dataset.routes, &nlist, c, *sq, k))
            .collect()
    };
    let mut scratch = rknnt_core::QueryScratch::new();
    let mut scratch_pass = || -> Vec<usize> {
        candidates
            .iter()
            .zip(&thresholds)
            .map(|(c, sq)| scratch.count_closer_routes_sq(&dataset.routes, &nlist, c, *sq, k))
            .collect()
    };

    // Correctness first: byte-identical counts on every candidate (also
    // warms the scratch buffers before anything is timed).
    let legacy_counts = legacy_pass();
    let scratch_counts = scratch_pass();
    assert_eq!(
        scratch_counts, legacy_counts,
        "scratch and legacy verification counts diverged"
    );

    // Throughput, best of 3 timed passes each.
    let time_best = |pass: &mut dyn FnMut() -> Vec<usize>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = std::time::Instant::now();
            let counts = pass();
            let secs = started.elapsed().as_secs_f64();
            assert_eq!(counts.len(), candidates.len());
            best = best.min(secs);
        }
        candidates.len() as f64 / best.max(1e-9)
    };
    let mut legacy_fn = legacy_pass;
    let legacy_cps = time_best(&mut legacy_fn);
    let scratch_cps = time_best(&mut scratch_pass);
    let ratio = scratch_cps / legacy_cps.max(1e-9);

    report.row(&[
        ("mode", "legacy".to_string()),
        ("candidates", candidates.len().to_string()),
        ("cands_per_sec", format!("{legacy_cps:.0}")),
    ]);
    report.row(&[
        ("mode", "scratch".to_string()),
        ("candidates", candidates.len().to_string()),
        ("cands_per_sec", format!("{scratch_cps:.0}")),
    ]);
    report.row(&[
        ("metric", "scratch_speedup".to_string()),
        ("ratio", format!("{ratio:.3}")),
    ]);
    report
}

/// Obs overhead: the telemetry layer's hot-path cost, measured as the same
/// service binary running the identical workload with metrics enabled vs
/// [`QueryService::set_metrics_enabled`]`(false)`, best-of-3 wall-clock
/// each. Like `cold_start` and `verify_hot_path` the gated number is a
/// same-run ratio — `throughput_cost = 1 − instrumented_qps / off_qps` —
/// held to `obs_overhead.max_throughput_cost` (≤ 5 %) by the CI gate. Both
/// modes must answer identically — asserted inline — and the instrumented
/// pass's full metrics snapshot is appended to the archived report.
pub fn obs_overhead(ctx: &ExperimentContext, kind: DatasetKind, semantics: Semantics) -> Report {
    let mut report = Report::new("Obs overhead — instrumented vs metrics-off service throughput");
    let dataset = Dataset::build(kind, &ctx.scale);
    let total = (ctx.scale.queries_per_point * 64).clamp(64, 1_024);
    let queries = service_workload(ctx, &dataset, semantics, total);
    report.line(format!(
        "{} — {} queries (pool cycling), batch 16, k = {}, {} semantics, Voronoi engine, 1 worker",
        dataset.kind.name(),
        queries.len(),
        ctx.default_k(),
        semantics,
    ));

    // Best-of-3 timed passes per mode, each on a fresh service so both
    // modes start from the identical cold cache. Counters stay live with
    // metrics off (the per-call stats depend on them); what the toggle
    // removes is clock reads, histogram recording and recorder events —
    // exactly the instrumentation whose cost this experiment bounds.
    let run_mode = |instrumented: bool| -> (f64, usize, String) {
        let mut best_secs = f64::INFINITY;
        let mut checksum = 0usize;
        let mut metrics_text = String::new();
        for _ in 0..3 {
            let service = QueryService::new(
                dataset.routes.clone(),
                dataset.transitions.clone(),
                ServiceConfig::default()
                    .with_workers(1)
                    .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi)),
            );
            service.set_metrics_enabled(instrumented);
            let started = std::time::Instant::now();
            let mut results = 0usize;
            for chunk in queries.chunks(16) {
                let (outs, _) = service.execute_batch(chunk);
                results += outs.iter().map(|r| r.len()).sum::<usize>();
            }
            best_secs = best_secs.min(started.elapsed().as_secs_f64());
            checksum = results;
            metrics_text = service.metrics_text();
        }
        (
            queries.len() as f64 / best_secs.max(1e-9),
            checksum,
            metrics_text,
        )
    };
    let (on_qps, on_checksum, on_text) = run_mode(true);
    let (off_qps, off_checksum, _) = run_mode(false);
    assert_eq!(
        on_checksum, off_checksum,
        "instrumented answers diverged from metrics-off"
    );
    let cost = 1.0 - on_qps / off_qps.max(1e-9);
    report.row(&[
        ("mode", "instrumented".to_string()),
        ("qps", format!("{on_qps:.0}")),
        ("results", on_checksum.to_string()),
    ]);
    report.row(&[
        ("mode", "metrics-off".to_string()),
        ("qps", format!("{off_qps:.0}")),
        ("results", off_checksum.to_string()),
    ]);
    report.row(&[
        ("metric", "throughput_cost".to_string()),
        ("ratio", format!("{cost:.4}")),
    ]);
    report.line("instrumented metrics snapshot (last timed pass):".to_string());
    for line in on_text.lines() {
        report.line(line.to_string());
    }
    report
}

/// Trace overhead — the PR 9 gate twin of [`obs_overhead`]: the same
/// workload shape, but bounding the cost of *per-request span trees*
/// rather than metrics instrumentation. Four modes run the identical
/// batches: an untraced baseline, then head sampling at 0.0, 0.01 and 1.0
/// (each sampled chunk gets a `request` root span and a cursor threaded
/// through `execute_batch_traced`, exactly the server's shape). Answers
/// are asserted byte-identical across all modes before anything is
/// reported.
///
/// Gated ratios (machine-independent):
/// * `throughput_cost` — `1 − qps(sample=1.0) / qps(baseline)`, the cost
///   of tracing *every* request; held at ≤ 5 %.
/// * `slow_log_mismatch` — worst `|promoted − over_threshold|` across the
///   sampled modes. The slow log runs with threshold 0, so every completed
///   trace is over threshold and must be captured: the ring may evict old
///   entries but must never *miss* a promotion. Held at exactly 0.
///
/// Every mode also records per-chunk latency into an
/// [`rknnt_obs::Histogram`] and reports its text exposition, exercising
/// the `p999` column end to end.
pub fn trace_overhead(ctx: &ExperimentContext, kind: DatasetKind, semantics: Semantics) -> Report {
    let mut report =
        Report::new("Trace overhead — sampled request tracing vs untraced service throughput");
    let dataset = Dataset::build(kind, &ctx.scale);
    let total = (ctx.scale.queries_per_point * 64).clamp(64, 1_024);
    let queries = service_workload(ctx, &dataset, semantics, total);
    report.line(format!(
        "{} — {} queries (pool cycling), batch 16, k = {}, {} semantics, Voronoi engine, 1 worker",
        dataset.kind.name(),
        queries.len(),
        ctx.default_k(),
        semantics,
    ));

    // One timed pass per mode, best of 3, each on a fresh service (cold
    // cache) and a fresh slow-query log. `sample: None` is the untraced
    // baseline (the plain `execute_batch` entry point); `Some(p)` stamps
    // each chunk with a sequential trace id and lets the deterministic
    // head sampler decide, mirroring the serving edge.
    struct ModeOutcome {
        qps: f64,
        checksum: usize,
        completed: u64,
        over_threshold: u64,
        promoted: u64,
        histogram_text: String,
    }
    let run_mode = |sample: Option<f64>| -> ModeOutcome {
        let mut best_secs = f64::INFINITY;
        let mut checksum = 0usize;
        let mut completed = 0u64;
        let mut over_threshold = 0u64;
        let mut promoted = 0u64;
        let mut histogram_text = String::new();
        for _ in 0..3 {
            let service = QueryService::new(
                dataset.routes.clone(),
                dataset.transitions.clone(),
                ServiceConfig::default()
                    .with_workers(1)
                    .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi)),
            );
            let slow_log = SlowQueryLog::new(0, 8);
            let telemetry = Telemetry::monotonic();
            let mut registry = MetricsRegistry::new();
            let batch_ns = registry.histogram("trace.batch_ns");
            let started = std::time::Instant::now();
            let mut results = 0usize;
            let mut seq = 0u64;
            for chunk in queries.chunks(16) {
                seq += 1;
                let chunk_started = std::time::Instant::now();
                let outs = match sample {
                    None => service.execute_batch(chunk).0,
                    Some(p) => {
                        let id = TraceId::from_raw(seq);
                        if id.sampled(p) {
                            let trace = TraceContext::begin(id, telemetry.clone());
                            let root = trace.begin_span("request", SpanId::NONE);
                            let cursor = TraceCursor::new(&trace, root);
                            let outs = service.execute_batch_traced(chunk, Some(&cursor)).0;
                            trace.end_span(root);
                            slow_log.observe(trace.finish(), None);
                            outs
                        } else {
                            service.execute_batch_traced(chunk, None).0
                        }
                    }
                };
                batch_ns
                    .record(u64::try_from(chunk_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                results += outs.iter().map(|r| r.len()).sum::<usize>();
            }
            best_secs = best_secs.min(started.elapsed().as_secs_f64());
            checksum = results;
            completed = slow_log.completed();
            over_threshold = slow_log.over_threshold();
            promoted = slow_log.promoted();
            histogram_text = registry.render_text();
        }
        ModeOutcome {
            qps: queries.len() as f64 / best_secs.max(1e-9),
            checksum,
            completed,
            over_threshold,
            promoted,
            histogram_text,
        }
    };

    let baseline = run_mode(None);
    let modes: Vec<(f64, ModeOutcome)> = [0.0, 0.01, 1.0]
        .into_iter()
        .map(|p| (p, run_mode(Some(p))))
        .collect();
    let mut mismatch = 0u64;
    for (p, outcome) in &modes {
        assert_eq!(
            outcome.checksum, baseline.checksum,
            "traced answers (sample={p}) diverged from the untraced baseline"
        );
        mismatch = mismatch.max(outcome.promoted.abs_diff(outcome.over_threshold));
    }
    report.row(&[
        ("mode", "baseline".to_string()),
        ("qps", format!("{:.0}", baseline.qps)),
        ("results", baseline.checksum.to_string()),
    ]);
    for (p, outcome) in &modes {
        report.row(&[
            ("mode", format!("sample={p}")),
            ("qps", format!("{:.0}", outcome.qps)),
            ("results", outcome.checksum.to_string()),
            ("traces", outcome.completed.to_string()),
            ("promoted", outcome.promoted.to_string()),
        ]);
    }
    let full = &modes.last().expect("three modes").1;
    let cost = 1.0 - full.qps / baseline.qps.max(1e-9);
    report.row(&[
        ("metric", "throughput_cost".to_string()),
        ("ratio", format!("{cost:.4}")),
    ]);
    report.row(&[
        ("metric", "slow_log_mismatch".to_string()),
        ("ratio", format!("{:.1}", mismatch as f64)),
    ]);
    report.line("per-chunk latency, untraced baseline:".to_string());
    for line in baseline.histogram_text.lines() {
        report.line(line.to_string());
    }
    report.line("per-chunk latency, sample=1.0:".to_string());
    for line in full.histogram_text.lines() {
        report.line(line.to_string());
    }
    report
}

/// Shard scale-out: the same churn workload (interleaved queries and
/// updates, 1 % and 10 % update ratios) replayed through a
/// [`ShardedService`] at 1, 2, 4 and 8 shards, with an unsharded
/// [`QueryService`] as the reference. Every sharded answer is asserted
/// byte-identical to the reference inline before anything is reported.
///
/// The report carries QPS per shard count plus the router's fan-out
/// counters: `mean_fanout` is shards consulted per fresh (uncached)
/// execution, and `fanout_fraction` divides that by the fleet size. The
/// gated ratio is the *worst* fan-out fraction at 8 shards across both
/// update ratios — the footprint certificate has to keep the router out of
/// most shards for sharding to buy anything, and that property is
/// machine-independent.
/// Caps a trip at `max_len` metres by pulling the destination toward the
/// origin along the trip direction. The scale-out experiment runs on
/// local-trip demand: shards are partitioned by *origin* cell, and a
/// hub-to-hub trip pins its far-away destination into the origin's shard,
/// inflating that shard's TR-tree root MBR to city size — after which the
/// router's root-MBR certificate can never write the shard off. Local
/// trips keep shard MBRs tight, which is the regime sharding is for.
fn localize_trip(origin: Point, destination: Point, max_len: f64) -> Point {
    let dx = destination.x - origin.x;
    let dy = destination.y - origin.y;
    let len = (dx * dx + dy * dy).sqrt();
    if len <= max_len || len == 0.0 {
        destination
    } else {
        let scale = max_len / len;
        Point::new(origin.x + dx * scale, origin.y + dy * scale)
    }
}

pub fn shard_scaleout(ctx: &ExperimentContext, kind: DatasetKind, semantics: Semantics) -> Report {
    let mut report = Report::new("Shard scaleout — router fan-out and QPS vs shard count");
    // Trips longer than this are shortened toward their origin; ~2 stop
    // spacings keeps every transition inside its origin's neighbourhood.
    const TRIP_CAP_METRES: f64 = 600.0;
    let generated = Dataset::build(kind, &ctx.scale);
    // The raw material the sharded build partitions: the generated route
    // polylines and the (localized) transition endpoint pairs, in store id
    // order — the router's global ids then coincide with the unsharded
    // store's ids, so answers can be compared verbatim.
    let raw_routes: Vec<Vec<Point>> = generated.city.routes.clone();
    let raw_pairs: Vec<(Point, Point)> = generated
        .transitions
        .transitions()
        .map(|t| {
            (
                t.origin,
                localize_trip(t.origin, t.destination, TRIP_CAP_METRES),
            )
        })
        .collect();
    // The unsharded reference runs on the same localized pairs.
    let dataset = Dataset {
        kind: generated.kind,
        city: generated.city.clone(),
        routes: generated.routes.clone(),
        transitions: rknnt_index::TransitionStore::bulk_build(
            rknnt_rtree::RTreeConfig::default(),
            raw_pairs.clone(),
        ),
        graph: generated.city.graph(),
    };
    // Sharding earns its keep on *localized* queries — short routes with
    // small k, the per-neighbourhood demand probes a dispatch deployment
    // issues — where the filter certificate can write off remote shards.
    // Table 4's default k = 10 with a city-spanning route touches every
    // shard by construction and measures nothing about the router.
    let k = 1;
    report.line(format!(
        "{} — local trips (≤ {TRIP_CAP_METRES:.0} m), k = {k}, {} semantics, \
         Voronoi engine, 1 worker per shard",
        dataset.kind.name(),
        semantics,
    ));
    let base = || {
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi))
    };
    let mut gate_fraction = 0.0f64;
    for ratio in [0.01, 0.10] {
        let events = (ctx.scale.queries_per_point * 60).clamp(120, 1_200);
        let mut config = rknnt_data::ChurnConfig::new(events, ratio, ctx.scale.seed ^ 0x51a9);
        config.query_pool = 8;
        config.query_len = 3;
        config.query_interval = 400.0;
        // Churn inserts are localized the same way as the base pairs: one
        // hub-to-hub insert would permanently inflate its shard's MBR.
        let stream: Vec<workload::ChurnEvent> = workload::churn_stream(&dataset.city, &config)
            .into_iter()
            .map(|event| match event {
                workload::ChurnEvent::InsertTransition(origin, destination) => {
                    workload::ChurnEvent::InsertTransition(
                        origin,
                        localize_trip(origin, destination, TRIP_CAP_METRES),
                    )
                }
                other => other,
            })
            .collect();
        let steps = resolve_churn(&dataset, stream, k, semantics);
        // Unsharded reference pass: the answers every shard count must
        // reproduce byte for byte.
        let mut reference =
            QueryService::new(dataset.routes.clone(), dataset.transitions.clone(), base());
        let mut expected: Vec<Vec<rknnt_index::TransitionId>> = Vec::new();
        for step in &steps {
            match step {
                ChurnStep::Query(query) => expected.push(reference.execute(query).transitions),
                ChurnStep::Update(update) => {
                    reference.apply_updates(vec![update.clone()]);
                }
            }
        }
        for shards in [1usize, 2, 4, 8] {
            let mut service = ShardedService::bulk_build(
                ShardedConfig::default()
                    .with_shards(shards)
                    .with_base(base()),
                raw_routes.clone(),
                raw_pairs.clone(),
            );
            let mut answers: Vec<Vec<rknnt_index::TransitionId>> =
                Vec::with_capacity(expected.len());
            let started = std::time::Instant::now();
            for step in &steps {
                match step {
                    ChurnStep::Query(query) => answers.push(service.execute(query).transitions),
                    ChurnStep::Update(update) => {
                        service.apply_updates(vec![update.clone()]);
                    }
                }
            }
            let elapsed = started.elapsed();
            assert_eq!(
                answers, expected,
                "sharded answers diverged from the unsharded reference at {shards} shard(s)"
            );
            let stats = service.router_stats();
            assert!(
                stats.executions > 0,
                "the workload must route fresh executions for fan-out to mean anything"
            );
            let fraction = stats.mean_fanout() / shards as f64;
            if shards == 8 {
                gate_fraction = gate_fraction.max(fraction);
            }
            report.row(&[
                ("update_ratio", format!("{ratio:.2}")),
                ("shards", shards.to_string()),
                ("queries", expected.len().to_string()),
                (
                    "qps",
                    if elapsed.is_zero() {
                        "inf".to_string()
                    } else {
                        format!("{:.0}", expected.len() as f64 / elapsed.as_secs_f64())
                    },
                ),
                ("executions", stats.executions.to_string()),
                ("dispatches", stats.dispatches.to_string()),
                ("pruned", stats.shards_pruned.to_string()),
                ("mean_fanout", format!("{:.3}", stats.mean_fanout())),
                ("fanout_fraction", format!("{fraction:.4}")),
            ]);
        }
    }
    report.row(&[
        ("metric", "fanout_fraction".to_string()),
        ("ratio", format!("{gate_fraction:.4}")),
    ]);
    report
}

/// Shard failover: a four-shard distributed fleet serves a churn stream
/// while one shard is killed a third of the way in and restarted at two
/// thirds. The contract under test is partial-failure semantics, all of it
/// machine-independent counting: every query gets a typed result
/// (`unanswered = 0`), every degraded result is *exactly* the
/// healthy-shard subset of the unsharded reference answer (never a silent
/// wrong answer), and after the restart — log replay from the recovered
/// shard's watermark — answers are byte-identical to the reference again.
/// A never-failed twin fleet runs the same stream as the control.
pub fn shard_failover(ctx: &ExperimentContext, kind: DatasetKind, semantics: Semantics) -> Report {
    use rknnt_net::{FleetConfig, FleetRouter, RecordingSleeper, RemoteShardConfig};
    use rknnt_obs::MockClock;
    use std::sync::Arc;

    let mut report = Report::new("Shard failover — typed degradation and watermark resync");
    const TRIP_CAP_METRES: f64 = 600.0;
    let generated = Dataset::build(kind, &ctx.scale);
    let raw_routes: Vec<Vec<Point>> = generated.city.routes.clone();
    let raw_pairs: Vec<(Point, Point)> = generated
        .transitions
        .transitions()
        .map(|t| {
            (
                t.origin,
                localize_trip(t.origin, t.destination, TRIP_CAP_METRES),
            )
        })
        .collect();
    let dataset = Dataset {
        kind: generated.kind,
        city: generated.city.clone(),
        routes: generated.routes.clone(),
        transitions: rknnt_index::TransitionStore::bulk_build(
            rknnt_rtree::RTreeConfig::default(),
            raw_pairs.clone(),
        ),
        graph: generated.city.graph(),
    };
    let k = 1;
    let shards = 4usize;
    let victim = 1usize;
    let base = || {
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi))
    };
    let events = (ctx.scale.queries_per_point * 60).clamp(120, 600);
    let mut config = rknnt_data::ChurnConfig::new(events, 0.10, ctx.scale.seed ^ 0xFA11);
    config.query_pool = 8;
    config.query_len = 3;
    config.query_interval = 400.0;
    let stream: Vec<workload::ChurnEvent> = workload::churn_stream(&dataset.city, &config)
        .into_iter()
        .map(|event| match event {
            workload::ChurnEvent::InsertTransition(origin, destination) => {
                workload::ChurnEvent::InsertTransition(
                    origin,
                    localize_trip(origin, destination, TRIP_CAP_METRES),
                )
            }
            other => other,
        })
        .collect();
    let steps = resolve_churn(&dataset, stream, k, semantics);
    // Unsharded reference pass: the answers the fleet must degrade *from*
    // and recover *to*, byte for byte.
    let mut reference =
        QueryService::new(dataset.routes.clone(), dataset.transitions.clone(), base());
    let mut expected: Vec<Vec<rknnt_index::TransitionId>> = Vec::new();
    for step in &steps {
        match step {
            ChurnStep::Query(query) => expected.push(reference.execute(query).transitions),
            ChurnStep::Update(update) => {
                reference.apply_updates(vec![update.clone()]);
            }
        }
    }
    // Two fleets on the same build inputs: a control that never fails, and
    // the chaos fleet that loses a shard mid-stream. Recorded sleepers and
    // a mock breaker clock keep the run free of wall-clock dependence.
    let build_fleet = || {
        FleetRouter::bulk_build_with_parts(
            FleetConfig {
                shards,
                service: base(),
                remote: RemoteShardConfig {
                    failure_threshold: 2,
                    ..RemoteShardConfig::default()
                },
                ..FleetConfig::default()
            },
            raw_routes.clone(),
            raw_pairs.clone(),
            Arc::new(MockClock::new()),
            Some(Arc::new(RecordingSleeper::new()) as _),
        )
        .expect("fleet build")
    };
    let mut control = build_fleet();
    let mut chaos = build_fleet();
    let kill_at = steps.len() / 3;
    let recover_at = 2 * steps.len() / 3;
    let total_queries = expected.len();
    let mut answered = 0usize;
    let mut degraded_answers = 0usize;
    let mut degraded_mismatches = 0usize;
    let mut divergence = 0usize; // complete-but-wrong, any phase
    let mut control_divergence = 0usize;
    let mut deferred_peak = 0u64;
    let mut qi = 0usize;
    for (i, step) in steps.iter().enumerate() {
        if i == kill_at {
            chaos.kill_shard(victim, "experiment: mid-stream shard crash");
        }
        if i == recover_at {
            chaos.restart_shard(victim).expect("shard restart");
        }
        match step {
            ChurnStep::Query(query) => {
                let want = &expected[qi];
                qi += 1;
                let control_answer = control.execute(query);
                if !control_answer.is_complete() || &control_answer.transitions != want {
                    control_divergence += 1;
                }
                let answer = chaos.execute(query);
                answered += 1;
                if answer.is_complete() {
                    if &answer.transitions != want {
                        divergence += 1;
                    }
                } else {
                    degraded_answers += 1;
                    let healthy_subset: Vec<rknnt_index::TransitionId> = want
                        .iter()
                        .copied()
                        .filter(|id| {
                            !answer
                                .missing_shards
                                .iter()
                                .any(|&s| chaos.owner_of(*id) == Some(s))
                        })
                        .collect();
                    if answer.missing_shards != [victim] || answer.transitions != healthy_subset {
                        degraded_mismatches += 1;
                    }
                }
            }
            ChurnStep::Update(update) => {
                control.apply_updates(vec![update.clone()]);
                chaos.apply_updates(vec![update.clone()]);
                let (acked, total) = chaos.shard_progress(victim);
                deferred_peak = deferred_peak.max(total - acked);
            }
        }
    }
    let (acked, total) = chaos.shard_progress(victim);
    assert_eq!(acked, total, "recovery must drain the deferred log");
    let unanswered = total_queries - answered;
    report.line(format!(
        "{} — {} steps ({} queries), {shards} shards, shard {victim} killed at step \
         {kill_at}, restarted at step {recover_at}, k = {k}, {semantics} semantics",
        dataset.kind.name(),
        steps.len(),
        total_queries,
    ));
    report.row(&[
        ("queries", total_queries.to_string()),
        ("answered", answered.to_string()),
        ("degraded_answers", degraded_answers.to_string()),
        ("degraded_mismatches", degraded_mismatches.to_string()),
        ("complete_divergence", divergence.to_string()),
        ("control_divergence", control_divergence.to_string()),
        ("deferred_peak", deferred_peak.to_string()),
        (
            "victim_retries",
            chaos.shard_stats(victim).retries.to_string(),
        ),
        (
            "breaker_denials",
            chaos.shard_stats(victim).breaker_denials.to_string(),
        ),
    ]);
    assert_eq!(
        control_divergence, 0,
        "the never-failed control fleet must match the unsharded reference"
    );
    // Gate rows: all pure counts, fully machine-independent.
    report.row(&[
        ("metric", "unanswered".to_string()),
        ("ratio", format!("{unanswered}")),
    ]);
    report.row(&[
        ("metric", "degraded_mismatch".to_string()),
        ("ratio", format!("{degraded_mismatches}")),
    ]);
    report.row(&[
        ("metric", "post_recovery_divergence".to_string()),
        ("ratio", format!("{divergence}")),
    ]);
    report.row(&[
        ("metric", "degraded_answers".to_string()),
        ("ratio", format!("{degraded_answers}")),
    ]);
    control.shutdown();
    chaos.shutdown();
    report
}

/// One offered-load point of the open-loop sweep.
struct OpenLoopPoint {
    achieved_qps: f64,
    answered: usize,
    shed: usize,
    unanswered: usize,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

/// Drives `n` queries through a real client→TCP→server loop at `offered_qps`
/// (open loop: the sender paces on the wall clock and never waits for
/// replies), asserting every answered reply byte-identical to `expected`.
/// `offered_qps = 0` means closed-loop back-to-back (the overload burst).
fn open_loop_point(
    server: &rknnt_net::Server,
    pool: &[RknntQuery],
    expected: &[Vec<rknnt_index::TransitionId>],
    n: usize,
    offered_qps: f64,
) -> OpenLoopPoint {
    use rknnt_net::protocol::{read_frame, write_frame, Message};
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::time::Instant;

    let stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Guard against a silently dropped request hanging the experiment: a
    // reply gap of 60 s counts the remainder as unanswered (and fails the
    // gate) instead of wedging CI.
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut write_half = stream.try_clone().expect("clone stream");
    let mut read_half = stream;

    // id -> (send instant, pool index); written by the sender thread,
    // consumed by the receiver as replies come back (sheds reply out of
    // order relative to queued requests, so matching is by id).
    let inflight: Mutex<HashMap<u64, (Instant, usize)>> = Mutex::new(HashMap::new());
    let latencies = rknnt_obs::Histogram::new();
    let mut answered = 0usize;
    let mut shed = 0usize;
    let started = Instant::now();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let interval = if offered_qps > 0.0 {
                Duration::from_secs_f64(1.0 / offered_qps)
            } else {
                Duration::ZERO
            };
            let t0 = Instant::now();
            for i in 0..n {
                let due = t0 + interval.mul_f64(i as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let qi = i % pool.len();
                let id = (i + 1) as u64;
                inflight
                    .lock()
                    .expect("inflight poisoned")
                    .insert(id, (Instant::now(), qi));
                let frame = Message::Query {
                    id,
                    query: pool[qi].clone(),
                    trace: None,
                }
                .encode();
                if write_frame(&mut write_half, &frame).is_err() {
                    return; // server gone; the receiver accounts the loss
                }
            }
        });

        let mut buf = Vec::new();
        let mut received = 0usize;
        while received < n {
            match read_frame(&mut read_half, &mut buf) {
                Ok(Some(())) => {}
                Ok(None) | Err(_) => break,
            }
            match Message::decode(&buf).expect("server sent an undecodable frame") {
                Message::QueryOk { id, transitions } => {
                    let (sent_at, qi) = inflight
                        .lock()
                        .expect("inflight poisoned")
                        .remove(&id)
                        .expect("reply for an unknown request id");
                    latencies
                        .record(u64::try_from(sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    assert_eq!(
                        transitions, expected[qi],
                        "served answer diverged from in-process execution (pool index {qi})"
                    );
                    answered += 1;
                    received += 1;
                }
                Message::Overloaded { id, .. } => {
                    inflight
                        .lock()
                        .expect("inflight poisoned")
                        .remove(&id)
                        .expect("shed reply for an unknown request id");
                    shed += 1;
                    received += 1;
                }
                other => panic!("unexpected message kind on the reply stream: {other:?}"),
            }
        }
    });

    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    OpenLoopPoint {
        achieved_qps: (answered + shed) as f64 / elapsed,
        answered,
        shed,
        unanswered: n - answered - shed,
        p50_ms: latencies.percentile(50.0) as f64 / 1e6,
        p99_ms: latencies.percentile(99.0) as f64 / 1e6,
        p999_ms: latencies.percentile(99.9) as f64 / 1e6,
    }
}

/// Open-loop tail latency through the serving edge: a paced sender drives
/// the same pool-cycling workload as the other serving experiments through
/// a real client→TCP→server loop at offered rates from 0.25× to 4× the
/// measured closed-loop capacity, reporting p50/p99/p999 of answered
/// requests and the saturation knee (the highest rate the server absorbs
/// without shedding while achieving ≥ 90 % of the offered rate).
///
/// The second phase is the gate: a back-to-back burst against a deliberately
/// tiny admission queue. Under overload the server must *shed* (typed
/// `Overloaded` replies, counted by `net.shed`) rather than queue without
/// bound or drop silently — so `shed_fraction_under_overload` must clear a
/// floor while `unanswered_under_overload` stays exactly zero, and both are
/// machine-independent (a slower machine sheds *more*, never less). Every
/// answered reply in both phases is asserted byte-identical to in-process
/// execution inline.
pub fn open_loop_latency(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    semantics: Semantics,
) -> Report {
    use rknnt_net::{Backend, Server, ServerConfig};

    let mut report =
        Report::new("Open loop_latency — offered-load sweep through the TCP serving edge");
    let dataset = Dataset::build(kind, &ctx.scale);
    let pool = service_workload(ctx, &dataset, semantics, 32);
    // The serving service runs with the result cache off so cycling the
    // pool costs real execution work on every request — an LRU would turn
    // the overload phase into a cache-hit benchmark.
    let service_config = ServiceConfig::default()
        .with_workers(1)
        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi))
        .with_cache_capacity(0);
    let fresh_service = || {
        QueryService::new(
            dataset.routes.clone(),
            dataset.transitions.clone(),
            service_config,
        )
    };
    let twin = fresh_service();
    let expected: Vec<Vec<rknnt_index::TransitionId>> = pool
        .iter()
        .map(|q| {
            let (mut results, _) = twin.execute_batch(std::slice::from_ref(q));
            results.remove(0).transitions
        })
        .collect();
    report.line(format!(
        "{} — pool of {} queries, k = {}, {} semantics, Voronoi engine, 1 worker, cache off",
        dataset.kind.name(),
        pool.len(),
        ctx.default_k(),
        semantics,
    ));

    // Phase 1: closed-loop capacity calibration (serial request/response
    // round-trips through the full socket path).
    let n_cal = (ctx.scale.queries_per_point * 24).clamp(48, 192);
    let capacity_qps = {
        let server = Server::start(Backend::Single(fresh_service()), ServerConfig::default())
            .expect("start calibration server");
        let mut client = rknnt_net::Client::connect(server.local_addr()).expect("connect");
        let started = std::time::Instant::now();
        for i in 0..n_cal {
            let query = &pool[i % pool.len()];
            let reply = client.query(query).expect("calibration query");
            let transitions = reply
                .answered()
                .expect("a serial client must never be shed at default budgets");
            assert_eq!(transitions, expected[i % pool.len()]);
        }
        n_cal as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    report.row(&[
        ("phase", "calibration".to_string()),
        ("closed_loop_qps", format!("{capacity_qps:.0}")),
        ("requests", n_cal.to_string()),
    ]);

    // Phase 2: the offered-load sweep. Fresh server per point so queue
    // state and metrics start cold.
    let n_sweep = (ctx.scale.queries_per_point * 24).clamp(48, 192);
    let mut knee_x: Option<f64> = None;
    for offered_x in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let server = Server::start(Backend::Single(fresh_service()), ServerConfig::default())
            .expect("start sweep server");
        let offered_qps = capacity_qps * offered_x;
        let point = open_loop_point(&server, &pool, &expected, n_sweep, offered_qps);
        assert_eq!(
            point.unanswered, 0,
            "open-loop sweep at {offered_x}x: every request must be answered or shed"
        );
        if point.shed == 0 && point.achieved_qps >= 0.9 * offered_qps {
            knee_x = Some(offered_x);
        }
        report.row(&[
            ("offered_x", format!("{offered_x:.2}")),
            ("offered_qps", format!("{offered_qps:.0}")),
            ("achieved_qps", format!("{:.0}", point.achieved_qps)),
            ("answered", point.answered.to_string()),
            ("shed", point.shed.to_string()),
            ("p50_ms", format!("{:.3}", point.p50_ms)),
            ("p99_ms", format!("{:.3}", point.p99_ms)),
            ("p999_ms", format!("{:.3}", point.p999_ms)),
        ]);
    }
    report.row(&[
        ("metric", "saturation_knee_x".to_string()),
        ("ratio", format!("{:.2}", knee_x.unwrap_or(0.0))),
    ]);

    // Phase 3: the overload burst behind the CI gate. Expensive queries
    // (4× k) against an 8-slot queue, sent back-to-back: the reader admits
    // and sheds in microseconds while the executor needs milliseconds per
    // drain, so nearly everything past the queue must come back as a typed
    // `Overloaded` — and a slower machine sheds strictly more, making the
    // floor machine-independent.
    let burst_pool: Vec<RknntQuery> = pool
        .iter()
        .map(|q| RknntQuery {
            route: q.route.clone(),
            k: (q.k * 4).max(8),
            semantics: q.semantics,
        })
        .collect();
    let burst_twin = fresh_service();
    let burst_expected: Vec<Vec<rknnt_index::TransitionId>> = burst_pool
        .iter()
        .map(|q| {
            let (mut results, _) = burst_twin.execute_batch(std::slice::from_ref(q));
            results.remove(0).transitions
        })
        .collect();
    let n_burst = (ctx.scale.queries_per_point * 64).clamp(192, 512);
    let server = Server::start(
        Backend::Single(fresh_service()),
        ServerConfig::default()
            .with_queue_capacity(8)
            .with_per_conn_inflight(u64::MAX),
    )
    .expect("start burst server");
    let burst = open_loop_point(&server, &burst_pool, &burst_expected, n_burst, 0.0);
    let shed_fraction = burst.shed as f64 / n_burst as f64;
    let unanswered_fraction = burst.unanswered as f64 / n_burst as f64;
    assert_eq!(
        burst.answered + burst.shed + burst.unanswered,
        n_burst,
        "burst accounting must cover every request"
    );
    assert_eq!(
        server.admitted() + server.shed(),
        n_burst as u64,
        "every burst request must pass through the admission decision"
    );
    report.row(&[
        ("phase", "burst".to_string()),
        ("total", n_burst.to_string()),
        ("answered", burst.answered.to_string()),
        ("shed", burst.shed.to_string()),
        ("unanswered", burst.unanswered.to_string()),
        ("p99_ms", format!("{:.3}", burst.p99_ms)),
    ]);
    report.row(&[
        ("metric", "shed_fraction_under_overload".to_string()),
        ("ratio", format!("{shed_fraction:.4}")),
    ]);
    report.row(&[
        ("metric", "unanswered_under_overload".to_string()),
        ("ratio", format!("{unanswered_fraction:.4}")),
    ]);
    report.line("server metrics after the burst:".to_string());
    for line in server.metrics_text().lines() {
        report.line(line.to_string());
    }
    report
}

/// Options the CLI threads into experiments that take flags (today: the
/// service-throughput experiment's dataset and semantics).
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Dataset the service-throughput experiment runs on.
    pub service_dataset: DatasetKind,
    /// Query semantics for the service-throughput experiment.
    pub semantics: Semantics,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            service_dataset: DatasetKind::Small,
            semantics: Semantics::Exists,
        }
    }
}

/// Every experiment in paper order (plus the serving-layer experiments),
/// used by `--exp all`.
pub fn all(ctx: &ExperimentContext, options: &RunOptions) -> Vec<Report> {
    vec![
        datasets(ctx),
        fig6(ctx),
        fig8(ctx),
        fig9(ctx),
        fig10(ctx),
        fig11(ctx),
        fig12(ctx),
        fig13(ctx),
        fig14(ctx),
        fig15(ctx),
        fig16(ctx),
        fig17(ctx),
        table5(ctx),
        fig18(ctx),
        fig19(ctx),
        fig20(ctx),
        fig21(ctx),
        service_throughput(ctx, options.service_dataset, options.semantics),
        churn_throughput(ctx, options.service_dataset, options.semantics),
        continuous_monitoring(ctx, options.service_dataset, options.semantics),
        cold_start(ctx, options.service_dataset, options.semantics),
        verify_hot_path(ctx, options.service_dataset),
        obs_overhead(ctx, options.service_dataset, options.semantics),
        trace_overhead(ctx, options.service_dataset, options.semantics),
        shard_scaleout(ctx, options.service_dataset, options.semantics),
        shard_failover(ctx, options.service_dataset, options.semantics),
        open_loop_latency(ctx, options.service_dataset, options.semantics),
    ]
}

/// Dispatches one experiment by name; `None` for an unknown name.
pub fn run(ctx: &ExperimentContext, name: &str, options: &RunOptions) -> Option<Vec<Report>> {
    let single = |r: Report| Some(vec![r]);
    match name {
        "datasets" | "table2" | "table3" => single(datasets(ctx)),
        "fig6" => single(fig6(ctx)),
        "fig8" => single(fig8(ctx)),
        "fig9" => single(fig9(ctx)),
        "fig10" => single(fig10(ctx)),
        "fig11" => single(fig11(ctx)),
        "fig12" => single(fig12(ctx)),
        "fig13" => single(fig13(ctx)),
        "fig14" => single(fig14(ctx)),
        "fig15" => single(fig15(ctx)),
        "fig16" => single(fig16(ctx)),
        "fig17" => single(fig17(ctx)),
        "table5" => single(table5(ctx)),
        "fig18" => single(fig18(ctx)),
        "fig19" => single(fig19(ctx)),
        "fig20" => single(fig20(ctx)),
        "fig21" => single(fig21(ctx)),
        "service_throughput" | "service" => single(service_throughput(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "churn_throughput" | "churn" => single(churn_throughput(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "continuous_monitoring" | "monitor" => single(continuous_monitoring(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "cold_start" | "coldstart" => {
            single(cold_start(ctx, options.service_dataset, options.semantics))
        }
        "verify_hot_path" | "hotpath" => single(verify_hot_path(ctx, options.service_dataset)),
        "obs_overhead" | "obs" => single(obs_overhead(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "trace_overhead" | "trace" => single(trace_overhead(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "shard_scaleout" | "scaleout" => single(shard_scaleout(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "shard_failover" | "failover" => single(shard_failover(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "open_loop_latency" | "openloop" => single(open_loop_latency(
            ctx,
            options.service_dataset,
            options.semantics,
        )),
        "all" => Some(all(ctx, options)),
        _ => None,
    }
}

/// Names accepted by [`run`], for `--help` output.
pub fn experiment_names() -> &'static [&'static str] {
    &[
        "datasets",
        "fig6",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "table5",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "service_throughput",
        "churn_throughput",
        "continuous_monitoring",
        "cold_start",
        "verify_hot_path",
        "obs_overhead",
        "trace_overhead",
        "shard_scaleout",
        "shard_failover",
        "open_loop_latency",
        "all",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ScaleConfig;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::build(ScaleConfig::tiny())
    }

    #[test]
    fn dataset_and_shape_experiments_produce_rows() {
        let ctx = tiny_ctx();
        assert!(!datasets(&ctx).is_empty());
        assert!(!fig6(&ctx).is_empty());
        assert!(!fig17(&ctx).is_empty());
        assert!(!fig8(&ctx).is_empty());
    }

    #[test]
    fn rknnt_sweep_experiments_produce_rows() {
        let mut ctx = tiny_ctx();
        // Shrink the sweeps further for the unit test by reducing queries.
        ctx.scale.queries_per_point = 2;
        let r = fig9(&ctx);
        // 2 datasets × 6 k values × 3 methods rows.
        assert_eq!(r.len(), 2 * 6 * 3);
        let r10 = fig10(&ctx);
        assert_eq!(r10.len(), 6 * 3);
    }

    #[test]
    fn planning_experiments_produce_rows() {
        // Table 5 is exercised implicitly through fig21's pre-computation;
        // running the full k = {1, 5, 10} sweep here would dominate the
        // test-suite's runtime for no extra coverage.
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let report = fig21(&ctx);
        assert!(!report.is_empty());
        // Four rows: original, shortest, MaxRkNNT, MinRkNNT.
        assert_eq!(report.len(), 4);
    }

    #[test]
    fn run_dispatches_and_rejects_unknown() {
        let ctx = tiny_ctx();
        let options = RunOptions::default();
        assert!(run(&ctx, "datasets", &options).is_some());
        assert!(run(&ctx, "not-an-experiment", &options).is_none());
        assert!(experiment_names().contains(&"fig9"));
        assert!(experiment_names().contains(&"service_throughput"));
        assert!(experiment_names().contains(&"churn_throughput"));
    }

    #[test]
    fn churn_region_scoping_beats_full_drop_at_10_percent_updates() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let dataset = Dataset::build(DatasetKind::Small, &ctx.scale);
        let (region, full) = churn_points(&ctx, &dataset, Semantics::Exists, 0.10);
        // Identical answers is asserted inside churn_points; here the point
        // of the whole PR: the retained hit-rate must be strictly better
        // than dropping the cache on every update.
        assert!(
            region.hit_rate > full.hit_rate,
            "region-scoped hit rate {:.3} must beat full-drop {:.3}",
            region.hit_rate,
            full.hit_rate
        );
        assert!(region.queries > 0 && region.queries == full.queries);
        assert!(
            region.evicted <= full.evicted,
            "region scoping must evict no more entries than full drops"
        );
    }

    #[test]
    fn monitor_beats_naive_rerun_all_at_10_percent_updates() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let dataset = Dataset::build(DatasetKind::Small, &ctx.scale);
        let (monitored, naive) = monitor_points(&ctx, &dataset, Semantics::Exists, 0.10);
        // Identical standing results are asserted inside monitor_points;
        // here the point of the subsystem: most (update × subscription)
        // pairs must be classified away instead of re-executed.
        assert!(monitored.updates > 0);
        assert!(
            monitored.reexec_rate < 1.0,
            "monitored re-execution rate {:.3} must beat re-run-all",
            monitored.reexec_rate
        );
        assert!(
            (naive.reexec_rate - 1.0).abs() < 1e-9,
            "naive baseline re-executes everything by construction"
        );
        assert_eq!(monitored.subs, naive.subs);
        assert_eq!(monitored.updates, naive.updates);
    }

    #[test]
    fn continuous_monitoring_reports_both_modes_at_all_ratios() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let report = continuous_monitoring(&ctx, DatasetKind::Small, Semantics::Exists);
        // 1 header + 3 ratios × 2 modes.
        assert_eq!(report.len(), 1 + 3 * 2);
        let text = report.to_text();
        assert!(text.contains("mode=monitored"));
        assert!(text.contains("mode=naive"));
        assert!(text.contains("update_ratio=0.10"));
        assert!(text.contains("reexec_rate="));
    }

    #[test]
    fn churn_throughput_reports_both_modes_at_all_ratios() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let report = churn_throughput(&ctx, DatasetKind::Small, Semantics::Exists);
        // 1 header + 3 ratios × 2 modes, then the appended metrics snapshot.
        assert!(report.len() > 1 + 3 * 2);
        let text = report.to_text();
        assert!(text.contains("mode=region-scoped"));
        assert!(text.contains("mode=full-drop"));
        assert!(text.contains("update_ratio=0.10"));
        assert!(text.contains("update_ratio=0.50"));
        // The durable pass archives every stage histogram plus the
        // checkpoint-stall gauge (the acceptance bar for the obs layer).
        assert!(text.contains("histogram=service.stage.cache_lookup_ns"));
        assert!(text.contains("histogram=service.stage.filter_ns"));
        assert!(text.contains("histogram=service.stage.verify_ns"));
        assert!(text.contains("histogram=storage.wal.fsync_ns"));
        assert!(text.contains("gauge=storage.checkpoint_stall_ns"));
        assert!(text.contains("p50=") && text.contains("p99="));
    }

    #[test]
    fn obs_overhead_reports_both_modes_and_the_gated_cost() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 1;
        let report = obs_overhead(&ctx, DatasetKind::Small, Semantics::Exists);
        let text = report.to_text();
        // Identical answers are asserted inside the experiment itself.
        assert!(text.contains("mode=instrumented"));
        assert!(text.contains("mode=metrics-off"));
        assert!(text.contains("histogram=service.stage.cache_lookup_ns"));
        let rows = crate::gate::parse_report_rows(&text);
        let cost = crate::gate::find_row(&rows, &[("metric", "throughput_cost")])
            .unwrap()
            .number("ratio")
            .unwrap();
        // The cost is a fraction of throughput: strictly below 1, and not
        // absurdly negative (off-mode slower than instrumented by 2x would
        // mean the measurement itself is broken).
        assert!(cost < 1.0 && cost > -1.0, "implausible cost {cost}");
    }

    #[test]
    fn cold_start_reports_every_path_and_the_gated_ratio() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let report = cold_start(&ctx, DatasetKind::Small, Semantics::Exists);
        // 1 header + rebuild + open + speedup + recover rows; identical
        // answers are asserted inside the experiment.
        assert_eq!(report.len(), 1 + 4);
        let text = report.to_text();
        assert!(text.contains("mode=rebuild"));
        assert!(text.contains("mode=open"));
        assert!(text.contains("metric=open_speedup"));
        assert!(text.contains("mode=recover"));
        assert!(text.contains("records_per_sec="));
        // The gated ratio is parseable and positive.
        let rows = crate::gate::parse_report_rows(&text);
        let ratio = crate::gate::find_row(&rows, &[("metric", "open_speedup")])
            .unwrap()
            .number("ratio")
            .unwrap();
        assert!(ratio > 0.0);
    }

    #[test]
    fn verify_hot_path_reports_both_modes_and_the_gated_ratio() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let report = verify_hot_path(&ctx, DatasetKind::Small);
        // 1 header + legacy + scratch + speedup rows; byte-identical counts
        // are asserted inside the experiment itself.
        assert_eq!(report.len(), 1 + 3);
        let text = report.to_text();
        assert!(text.contains("mode=legacy"));
        assert!(text.contains("mode=scratch"));
        let rows = crate::gate::parse_report_rows(&text);
        let ratio = crate::gate::find_row(&rows, &[("metric", "scratch_speedup")])
            .unwrap()
            .number("ratio")
            .unwrap();
        assert!(ratio > 0.0);
    }

    #[test]
    fn shard_failover_holds_every_gate_at_tiny_scale() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let report = shard_failover(&ctx, DatasetKind::Small, Semantics::Exists);
        let text = report.to_text();
        let rows = crate::gate::parse_report_rows(&text);
        let metric = |name: &str| {
            crate::gate::find_row(&rows, &[("metric", name)])
                .unwrap()
                .number("ratio")
                .unwrap()
        };
        // The invariants the CI gate holds, asserted here at unit scale:
        // no hangs, no silent wrong answers, byte-identity after resync,
        // and a non-vacuous outage window.
        assert_eq!(metric("unanswered"), 0.0);
        assert_eq!(metric("degraded_mismatch"), 0.0);
        assert_eq!(metric("post_recovery_divergence"), 0.0);
        assert!(metric("degraded_answers") >= 1.0, "outage covered nothing");
        assert!(text.contains("victim_retries="));
    }

    #[test]
    fn shard_scaleout_reports_every_shard_count_and_the_gated_fraction() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 2;
        let report = shard_scaleout(&ctx, DatasetKind::Small, Semantics::Exists);
        // 1 header + 2 ratios × 4 shard counts + the gated ratio row.
        // Byte-identical answers are asserted inside the experiment.
        assert_eq!(report.len(), 1 + 2 * 4 + 1);
        let text = report.to_text();
        assert!(text.contains("shards=1"));
        assert!(text.contains("shards=8"));
        assert!(text.contains("update_ratio=0.01"));
        assert!(text.contains("update_ratio=0.10"));
        assert!(text.contains("mean_fanout="));
        let rows = crate::gate::parse_report_rows(&text);
        let fraction = crate::gate::find_row(&rows, &[("metric", "fanout_fraction")])
            .unwrap()
            .number("ratio")
            .unwrap();
        // The fraction is mean fan-out over fleet size at 8 shards: within
        // (0, 1], and the certificate should keep it well under 1.
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "implausible fan-out fraction {fraction}"
        );
    }

    #[test]
    fn service_throughput_reports_all_sweep_points() {
        let mut ctx = tiny_ctx();
        ctx.scale.queries_per_point = 1;
        let report = service_throughput(&ctx, DatasetKind::Small, Semantics::Exists);
        // 1 header + 1 sequential row + 2 modes × 3 worker counts × 3 batch
        // sizes.
        assert_eq!(report.len(), 2 + 2 * 3 * 3);
        let text = report.to_text();
        assert!(text.contains("mode=sequential"));
        assert!(text.contains("mode=batched"));
        assert!(text.contains("mode=batched+cache"));
        assert!(text.contains("Small-synthetic"));
    }
}
