//! Benchmark harness reproducing every table and figure of the RkNNT
//! evaluation (Section 7).
//!
//! The harness has two halves:
//!
//! * this library — dataset construction ([`Dataset`], [`ExperimentContext`])
//!   and one function per experiment (`experiments::*`), each of which prints
//!   the same rows/series the paper reports and returns them as structured
//!   values;
//! * the `experiments` binary — a small CLI that builds the datasets at a
//!   chosen scale and dispatches to the experiment functions (see
//!   `experiments --help`).
//!
//! Criterion micro-benchmarks for the same sweeps live under `benches/`.

pub mod dataset;
pub mod experiments;
pub mod gate;
pub mod report;

pub use dataset::{Dataset, DatasetKind, ExperimentContext, ScaleConfig};
pub use report::Report;
