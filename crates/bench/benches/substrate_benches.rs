//! Criterion micro-benchmarks for the substrates: R-tree maintenance and
//! queries (dynamic-update cost the paper's index design argues for) and the
//! graph algorithms behind the planners. These are the ablation benches
//! DESIGN.md calls out for the index-layer design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rknnt_geo::{Point, Rect};
use rknnt_graph::{yen_k_shortest_paths, DistanceMatrix, RouteGraph};
use rknnt_rtree::{RTree, RTreeConfig};
use std::hint::black_box;
use std::time::Duration;

fn scatter(n: usize) -> Vec<(Point, u32)> {
    (0..n)
        .map(|i| {
            let x = ((i * 2654435761) % 1_000_000) as f64 / 37.0;
            let y = ((i * 40503 + 17) % 1_000_000) as f64 / 53.0;
            (Point::new(x, y), i as u32)
        })
        .collect()
}

/// Bulk loading versus incremental insertion (why the stores bulk-load).
fn rtree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for n in [1_000usize, 10_000] {
        let items = scatter(n);
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &items, |b, items| {
            b.iter(|| black_box(RTree::bulk_load(RTreeConfig::default(), items.clone())))
        });
        group.bench_with_input(BenchmarkId::new("insert", n), &items, |b, items| {
            b.iter(|| {
                let mut tree = RTree::new(RTreeConfig::default());
                for (p, d) in items {
                    tree.insert(*p, *d);
                }
                black_box(tree)
            })
        });
    }
    group.finish();
}

/// Query primitives used by every RkNNT phase.
fn rtree_queries(c: &mut Criterion) {
    let items = scatter(20_000);
    let tree = RTree::bulk_load(RTreeConfig::default(), items);
    let mut group = c.benchmark_group("rtree_queries");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.bench_function("knn_10", |b| {
        b.iter(|| black_box(tree.knn(&Point::new(12_345.0, 6_789.0), 10)))
    });
    group.bench_function("range", |b| {
        let rect = Rect::new(Point::new(5_000.0, 5_000.0), Point::new(9_000.0, 9_000.0));
        b.iter(|| black_box(tree.range(&rect).len()))
    });
    group.bench_function("dynamic_update", |b| {
        let mut tree = tree.clone();
        let mut i = 0u32;
        b.iter(|| {
            let p = Point::new((i % 997) as f64 * 3.0, (i % 991) as f64 * 7.0);
            tree.insert(p, 1_000_000 + i);
            tree.remove(&p, &(1_000_000 + i));
            i += 1;
        })
    });
    group.finish();
}

fn grid_graph(side: usize) -> RouteGraph {
    let mut g = RouteGraph::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(g.add_vertex(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                g.add_edge_euclidean(ids[i], ids[i + 1]);
            }
            if y + 1 < side {
                g.add_edge_euclidean(ids[i], ids[i + side]);
            }
        }
    }
    g
}

/// Graph machinery behind the planners: Dijkstra, all-pairs, Yen's kSP.
fn graph_algorithms(c: &mut Criterion) {
    let graph = grid_graph(20);
    let s = rknnt_graph::VertexId(0);
    let t = rknnt_graph::VertexId((graph.num_vertices() - 1) as u32);
    let mut group = c.benchmark_group("graph_algorithms");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.bench_function("dijkstra", |b| b.iter(|| black_box(graph.dijkstra(s))));
    group.bench_function("all_pairs_dijkstra", |b| {
        b.iter(|| black_box(DistanceMatrix::from_dijkstra(&graph)))
    });
    group.bench_function("yen_k8", |b| {
        b.iter(|| black_box(yen_k_shortest_paths(&graph, s, t, 8)))
    });
    group.finish();
}

criterion_group!(benches, rtree_build, rtree_queries, graph_algorithms);
criterion_main!(benches);
