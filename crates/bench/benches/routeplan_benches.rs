//! Criterion micro-benchmarks for the MaxRkNNT / MinRkNNT planners: the
//! sweeps behind Figures 18 and 19 (running time vs ψ(se) and vs τ/ψ(se))
//! and the pre-computation cost of Table 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rknnt_bench::{Dataset, DatasetKind, ScaleConfig};
use rknnt_data::workload;
use rknnt_routeplan::{
    BruteForcePlanner, Objective, PlanQuery, PlannerConfig, PrePlanner, Precomputation,
    PruningPlanner, RoutePlanner,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_scale() -> ScaleConfig {
    ScaleConfig {
        city_scale: 0.03,
        transitions: 5_000,
        synthetic_transitions: 5_000,
        queries_per_point: 3,
        seed: 7,
    }
}

fn planner_queries(
    dataset: &Dataset,
    pre: &Precomputation,
    span: f64,
    ratio: f64,
) -> Vec<PlanQuery> {
    workload::plan_queries(&dataset.graph, 3, span, span * 0.5, 11)
        .into_iter()
        .filter_map(|(start, end)| {
            let shortest = pre.matrix().distance(start, end);
            shortest.is_finite().then_some(PlanQuery {
                start,
                end,
                tau: shortest * ratio,
            })
        })
        .collect()
}

/// Figure 18 / 19: the four planners at a representative span and τ ratio.
fn maxrknnt_planners(c: &mut Criterion) {
    let dataset = Dataset::build(DatasetKind::LaLike, &bench_scale());
    let config = PlannerConfig {
        k: 5,
        max_candidate_paths: 256,
    };
    let pre = Precomputation::build(
        &dataset.graph,
        &dataset.routes,
        &dataset.transitions,
        config.k,
    );
    let diag = dataset
        .city
        .config
        .area()
        .min
        .distance(&dataset.city.config.area().max);
    let queries = planner_queries(&dataset, &pre, diag * 0.15, 1.4);
    let brute = BruteForcePlanner::new(
        &dataset.graph,
        &dataset.routes,
        &dataset.transitions,
        config,
    );
    let pre_planner = PrePlanner::new(&dataset.graph, &pre, config);
    let pruning = PruningPlanner::new(&dataset.graph, &pre);

    let mut group = c.benchmark_group("maxrknnt_planners");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.bench_function("bruteforce_max", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(brute.plan(q, Objective::Maximize));
            }
        })
    });
    group.bench_function("pre_max", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(pre_planner.plan(q, Objective::Maximize));
            }
        })
    });
    group.bench_function("pruning_max", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(pruning.plan(q, Objective::Maximize));
            }
        })
    });
    group.bench_function("pruning_min", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(pruning.plan(q, Objective::Minimize));
            }
        })
    });
    group.finish();
}

/// Figure 19: the pruning planner as τ/ψ(se) grows.
fn maxrknnt_vs_tau(c: &mut Criterion) {
    let dataset = Dataset::build(DatasetKind::NycLike, &bench_scale());
    let pre = Precomputation::build(&dataset.graph, &dataset.routes, &dataset.transitions, 5);
    let diag = dataset
        .city
        .config
        .area()
        .min
        .distance(&dataset.city.config.area().max);
    let pruning = PruningPlanner::new(&dataset.graph, &pre);
    let mut group = c.benchmark_group("maxrknnt_vs_tau");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for ratio in [1.0f64, 1.4, 2.0] {
        let queries = planner_queries(&dataset, &pre, diag * 0.12, ratio);
        group.bench_with_input(
            BenchmarkId::new("pruning_max", format!("{ratio:.1}")),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        black_box(pruning.plan(q, Objective::Maximize));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Table 5: pre-computation cost as k grows.
fn precomputation(c: &mut Criterion) {
    let dataset = Dataset::build(DatasetKind::LaLike, &bench_scale());
    let mut group = c.benchmark_group("precomputation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for k in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::new("build", k), &k, |b, &k| {
            b.iter(|| {
                black_box(Precomputation::build(
                    &dataset.graph,
                    &dataset.routes,
                    &dataset.transitions,
                    k,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, maxrknnt_planners, maxrknnt_vs_tau, precomputation);
criterion_main!(benches);
