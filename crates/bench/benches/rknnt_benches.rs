//! Criterion micro-benchmarks for the RkNNT engines: the sweeps behind
//! Figures 9, 11 and 14 (running time vs k, |Q| and interval I) plus the
//! Figure 10/12 phase-relevant engine comparison at the defaults.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rknnt_bench::{Dataset, DatasetKind, ScaleConfig};
use rknnt_core::{DivideConquerEngine, FilterRefineEngine, RknnTEngine, RknntQuery, VoronoiEngine};
use rknnt_data::workload;
use std::hint::black_box;
use std::time::Duration;

fn bench_scale() -> ScaleConfig {
    ScaleConfig {
        city_scale: 0.04,
        transitions: 8_000,
        synthetic_transitions: 8_000,
        queries_per_point: 4,
        seed: 42,
    }
}

/// Figure 9: running time vs k for the three engines (LA-like dataset).
fn rknnt_vs_k(c: &mut Criterion) {
    let dataset = Dataset::build(DatasetKind::LaLike, &bench_scale());
    let queries = workload::rknnt_queries(&dataset.city, 4, 5, 3_000.0, 1);
    let fr = FilterRefineEngine::new(&dataset.routes, &dataset.transitions);
    let vo = VoronoiEngine::new(&dataset.routes, &dataset.transitions);
    let dc = DivideConquerEngine::new(&dataset.routes, &dataset.transitions);
    let engines: Vec<(&str, &dyn RknnTEngine)> = vec![
        ("filter-refine", &fr),
        ("voronoi", &vo),
        ("divide-conquer", &dc),
    ];
    let mut group = c.benchmark_group("rknnt_vs_k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for k in [1usize, 10, 25] {
        for (name, engine) in &engines {
            group.bench_with_input(BenchmarkId::new(*name, k), &k, |b, &k| {
                b.iter(|| {
                    for q in &queries {
                        black_box(engine.execute(&RknntQuery::exists(q.clone(), k)));
                    }
                })
            });
        }
    }
    group.finish();
}

/// Figure 11: running time vs query length |Q| (LA-like dataset, k = 10).
fn rknnt_vs_qlen(c: &mut Criterion) {
    let dataset = Dataset::build(DatasetKind::LaLike, &bench_scale());
    let fr = FilterRefineEngine::new(&dataset.routes, &dataset.transitions);
    let dc = DivideConquerEngine::new(&dataset.routes, &dataset.transitions);
    let mut group = c.benchmark_group("rknnt_vs_qlen");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for len in [3usize, 5, 10] {
        let queries = workload::rknnt_queries(&dataset.city, 4, len, 3_000.0, 2);
        for (name, engine) in [
            ("filter-refine", &fr as &dyn RknnTEngine),
            ("divide-conquer", &dc),
        ] {
            group.bench_with_input(BenchmarkId::new(name, len), &queries, |b, queries| {
                b.iter(|| {
                    for q in queries {
                        black_box(engine.execute(&RknntQuery::exists(q.clone(), 10)));
                    }
                })
            });
        }
    }
    group.finish();
}

/// Figure 14: running time vs the interval I between query points.
fn rknnt_vs_interval(c: &mut Criterion) {
    let dataset = Dataset::build(DatasetKind::NycLike, &bench_scale());
    let vo = VoronoiEngine::new(&dataset.routes, &dataset.transitions);
    let mut group = c.benchmark_group("rknnt_vs_interval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for interval in [1_000.0f64, 3_000.0, 6_000.0] {
        let queries = workload::rknnt_queries(&dataset.city, 4, 5, interval, 3);
        group.bench_with_input(
            BenchmarkId::new("voronoi", interval as u64),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        black_box(vo.execute(&RknntQuery::exists(q.clone(), 10)));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, rknnt_vs_k, rknnt_vs_qlen, rknnt_vs_interval);
criterion_main!(benches);
