//! The pruning planners `Pre-Max` / `Pre-Min` (Algorithm 6).
//!
//! Partial routes are expanded best-first (shortest travel distance first)
//! from the start vertex. Two pruning rules bound the search:
//!
//! * **Reachability** (`checkReachability`): a neighbour `v_j` is only
//!   considered when the pre-computed shortest distance `Mψ[v_j][end]` fits
//!   into the remaining budget `τ − ψ(R*)`.
//! * **Dominance** (`checkDominance`, Lemma 4): a partial route ending at a
//!   vertex is discarded when another partial route ending at the same vertex
//!   is no longer *and* already attracts a superset (Max) / subset (Min) of
//!   its passengers. The paper compares cardinalities of the ∀ and ∃ sets; we
//!   use the set-inclusion form, which is likewise sound (any completion of
//!   the dominating route is feasible whenever the dominated one's is, and is
//!   at least as good) and keeps the search exact — see DESIGN.md §5.
//!
//! `Pre-Min` additionally applies the `checkBounds` rule: once a complete
//! route with `c` passengers is known, a partial route already attracting
//! more than `c` passengers can never improve the minimum (ω only grows along
//! extensions) and is discarded.

use crate::precompute::Precomputation;
use crate::types::{Objective, PlanQuery, PlanResult, RoutePlanner};
use rknnt_graph::{Path, RouteGraph, VertexId};
use rknnt_index::TransitionId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

/// Best-first MaxRkNNT / MinRkNNT search with reachability and dominance
/// pruning over pre-computed per-vertex RkNNT sets.
pub struct PruningPlanner<'a> {
    graph: &'a RouteGraph,
    precomputation: &'a Precomputation,
}

/// A partial route in the search frontier.
#[derive(Debug, Clone)]
struct Partial {
    vertices: Vec<VertexId>,
    psi: f64,
    omega: Vec<TransitionId>,
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.psi == other.psi
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on travel distance.
        other.psi.total_cmp(&self.psi)
    }
}

/// `a ⊆ b` for sorted, de-duplicated id vectors.
fn is_subset(a: &[TransitionId], b: &[TransitionId]) -> bool {
    let mut bi = 0;
    for x in a {
        loop {
            if bi >= b.len() {
                return false;
            }
            match b[bi].cmp(x) {
                Ordering::Less => bi += 1,
                Ordering::Equal => {
                    bi += 1;
                    break;
                }
                Ordering::Greater => return false,
            }
        }
    }
    true
}

/// Sorted union of two sorted, de-duplicated id vectors.
fn union_sorted(a: &[TransitionId], b: &[TransitionId]) -> Vec<TransitionId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl<'a> PruningPlanner<'a> {
    /// Creates the pruning planner over a pre-computation.
    pub fn new(graph: &'a RouteGraph, precomputation: &'a Precomputation) -> Self {
        PruningPlanner {
            graph,
            precomputation,
        }
    }

    /// Does `(psi_a, omega_a)` dominate `(psi_b, omega_b)` at the same end
    /// vertex under the given objective?
    fn dominates(
        objective: Objective,
        psi_a: f64,
        omega_a: &[TransitionId],
        psi_b: f64,
        omega_b: &[TransitionId],
    ) -> bool {
        if psi_a > psi_b + 1e-12 {
            return false;
        }
        match objective {
            Objective::Maximize => is_subset(omega_b, omega_a),
            Objective::Minimize => is_subset(omega_a, omega_b),
        }
    }
}

impl RoutePlanner for PruningPlanner<'_> {
    fn name(&self) -> &'static str {
        // The objective is chosen per call; benchmarks label the two usages
        // "Pre-Max" and "Pre-Min" themselves.
        "Pruning"
    }

    fn plan(&self, query: &PlanQuery, objective: Objective) -> PlanResult {
        let started = Instant::now();
        let matrix = self.precomputation.matrix();
        let mut result = PlanResult::default();

        // Global reachability check (line 1 of Algorithm 6).
        if !matrix.reachable(query.start, query.end)
            || matrix.distance(query.start, query.end) > query.tau + 1e-9
        {
            result.elapsed = started.elapsed();
            return result;
        }

        let mut best: Option<(Path, Vec<TransitionId>)> = None;
        let mut dominance: HashMap<VertexId, Vec<(f64, Vec<TransitionId>)>> = HashMap::new();
        let mut heap: BinaryHeap<Partial> = BinaryHeap::new();
        let initial = Partial {
            vertices: vec![query.start],
            psi: 0.0,
            omega: self.precomputation.rknnt_of(query.start).to_vec(),
        };
        dominance
            .entry(query.start)
            .or_default()
            .push((0.0, initial.omega.clone()));
        heap.push(initial);
        let mut expanded = 0usize;

        while let Some(partial) = heap.pop() {
            expanded += 1;
            let last = *partial.vertices.last().expect("partials are non-empty");

            if last == query.end {
                // Complete route: update the incumbent. Extensions past the
                // destination can never end at it again (routes are
                // loopless), so the partial is not expanded further.
                let candidate_better = match &best {
                    None => true,
                    Some((best_path, best_omega)) => {
                        let cmp = partial.omega.len().cmp(&best_omega.len());
                        let improves = match objective {
                            Objective::Maximize => cmp.is_gt(),
                            Objective::Minimize => cmp.is_lt(),
                        };
                        improves || (cmp.is_eq() && partial.psi < best_path.length - 1e-12)
                    }
                };
                if candidate_better {
                    best = Some((
                        Path {
                            vertices: partial.vertices.clone(),
                            length: partial.psi,
                        },
                        partial.omega.clone(),
                    ));
                }
                continue;
            }

            for (next, weight) in self.graph.neighbors(last) {
                if partial.vertices.contains(next) {
                    continue; // loopless routes only
                }
                let psi = partial.psi + weight;
                // checkReachability: the remaining budget must cover the
                // shortest way from `next` to the destination.
                if psi + matrix.distance(*next, query.end) > query.tau + 1e-9 {
                    continue;
                }
                let omega = union_sorted(&partial.omega, self.precomputation.rknnt_of(*next));
                // checkBounds (MinRkNNT only): a partial already attracting
                // strictly more passengers than the incumbent can never
                // improve the minimum.
                if objective == Objective::Minimize {
                    if let Some((_, best_omega)) = &best {
                        if omega.len() > best_omega.len() {
                            continue;
                        }
                    }
                }
                // checkDominance against the table entries for `next`.
                let entries = dominance.entry(*next).or_default();
                if entries.iter().any(|(e_psi, e_omega)| {
                    Self::dominates(objective, *e_psi, e_omega, psi, &omega)
                }) {
                    continue;
                }
                // The new partial survives: evict entries it dominates and
                // register it.
                entries.retain(|(e_psi, e_omega)| {
                    !Self::dominates(objective, psi, &omega, *e_psi, e_omega)
                });
                entries.push((psi, omega.clone()));

                let mut vertices = partial.vertices.clone();
                vertices.push(*next);
                heap.push(Partial {
                    vertices,
                    psi,
                    omega,
                });
            }
        }

        if let Some((path, passengers)) = best {
            result.route = Some(path);
            result.passengers = passengers;
        }
        result.candidates_examined = expanded;
        result.elapsed = started.elapsed();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planners::{BruteForcePlanner, PrePlanner};
    use crate::types::PlannerConfig;
    use rknnt_geo::Point;
    use rknnt_index::{RouteStore, TransitionStore};
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn grid_world() -> (RouteGraph, RouteStore, TransitionStore) {
        let mut route_points: Vec<Vec<Point>> = Vec::new();
        for y in 0..4 {
            route_points.push(
                (0..4)
                    .map(|x| p(x as f64 * 10.0, y as f64 * 10.0))
                    .collect(),
            );
        }
        for x in 0..4 {
            route_points.push(
                (0..4)
                    .map(|y| p(x as f64 * 10.0, y as f64 * 10.0))
                    .collect(),
            );
        }
        let graph = RouteGraph::from_routes(route_points.iter().map(|r| r.as_slice()));
        let (routes, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), route_points);
        let mut transitions = TransitionStore::default();
        for i in 0..25u32 {
            let x = (i as f64 * 1.3) % 30.0;
            transitions
                .insert(
                    p(x, 28.0 + (i % 5) as f64),
                    p(30.0 - x, 29.0 + (i % 3) as f64),
                )
                .unwrap();
        }
        for i in 0..5u32 {
            transitions
                .insert(p(i as f64 * 6.0, 1.0), p(30.0 - i as f64 * 6.0, 2.0))
                .unwrap();
        }
        (graph, routes, transitions)
    }

    #[test]
    fn pruning_matches_enumeration_planners() {
        let (graph, routes, transitions) = grid_world();
        let config = PlannerConfig {
            k: 2,
            max_candidate_paths: 4000,
        };
        let pre = Precomputation::build(&graph, &routes, &transitions, config.k);
        let bf = BruteForcePlanner::new(&graph, &routes, &transitions, config);
        let pp = PrePlanner::new(&graph, &pre, config);
        let pruning = PruningPlanner::new(&graph, &pre);
        let start = graph.nearest_vertex(&p(0.0, 0.0)).unwrap();
        let end = graph.nearest_vertex(&p(30.0, 30.0)).unwrap();
        for tau in [60.0, 70.0, 90.0] {
            let query = PlanQuery { start, end, tau };
            for objective in [Objective::Maximize, Objective::Minimize] {
                let a = bf.plan(&query, objective);
                let b = pp.plan(&query, objective);
                let c = pruning.plan(&query, objective);
                assert_eq!(
                    a.passenger_count(),
                    c.passenger_count(),
                    "bruteforce vs pruning, tau={tau}, {objective:?}"
                );
                assert_eq!(
                    b.passenger_count(),
                    c.passenger_count(),
                    "pre vs pruning, tau={tau}, {objective:?}"
                );
                assert!(c.travel_distance() <= tau + 1e-9);
                assert!(c.route.is_some());
                // The returned route must really start and end where asked.
                let route = c.route.as_ref().unwrap();
                assert_eq!(route.vertices.first(), Some(&start));
                assert_eq!(route.vertices.last(), Some(&end));
            }
        }
    }

    #[test]
    fn unreachable_or_over_budget_returns_empty() {
        let (graph, routes, transitions) = grid_world();
        let pre = Precomputation::build(&graph, &routes, &transitions, 2);
        let planner = PruningPlanner::new(&graph, &pre);
        let start = graph.nearest_vertex(&p(0.0, 0.0)).unwrap();
        let end = graph.nearest_vertex(&p(30.0, 30.0)).unwrap();
        let result = planner.plan(
            &PlanQuery {
                start,
                end,
                tau: 10.0,
            },
            Objective::Maximize,
        );
        assert!(result.route.is_none());
        assert_eq!(result.candidates_examined, 0);
    }

    #[test]
    fn dominance_and_subset_helpers() {
        let a = vec![TransitionId(1), TransitionId(3)];
        let b = vec![TransitionId(1), TransitionId(2), TransitionId(3)];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&[], &a));
        assert_eq!(union_sorted(&a, &b), b);
        assert_eq!(
            union_sorted(&[TransitionId(5)], &[TransitionId(2)]),
            vec![TransitionId(2), TransitionId(5)]
        );
        // Max: the bigger set dominates when not longer.
        assert!(PruningPlanner::dominates(
            Objective::Maximize,
            5.0,
            &b,
            6.0,
            &a
        ));
        assert!(!PruningPlanner::dominates(
            Objective::Maximize,
            7.0,
            &b,
            6.0,
            &a
        ));
        // Min: the smaller set dominates when not longer.
        assert!(PruningPlanner::dominates(
            Objective::Minimize,
            5.0,
            &a,
            6.0,
            &b
        ));
    }

    #[test]
    fn pruning_examines_fewer_partials_with_tighter_tau() {
        let (graph, routes, transitions) = grid_world();
        let pre = Precomputation::build(&graph, &routes, &transitions, 2);
        let planner = PruningPlanner::new(&graph, &pre);
        let start = graph.nearest_vertex(&p(0.0, 0.0)).unwrap();
        let end = graph.nearest_vertex(&p(30.0, 30.0)).unwrap();
        let tight = planner.plan(
            &PlanQuery {
                start,
                end,
                tau: 60.0,
            },
            Objective::Maximize,
        );
        let loose = planner.plan(
            &PlanQuery {
                start,
                end,
                tau: 120.0,
            },
            Objective::Maximize,
        );
        assert!(tight.candidates_examined <= loose.candidates_examined);
    }
}
