//! Optimal route planning with RkNNT: MaxRkNNT and MinRkNNT (Section 6).
//!
//! Given a bus network graph, a start vertex, an end vertex and a travel
//! distance threshold τ, MaxRkNNT returns the route between the two vertices
//! whose RkNNT set (its "passengers") is largest among all routes with travel
//! distance at most τ; MinRkNNT returns the smallest (Definition 10). Four
//! planners are provided behind the [`RoutePlanner`] trait:
//!
//! | Planner | Paper name | Idea |
//! |---|---|---|
//! | [`BruteForcePlanner`] | BruteForce | enumerate all candidate paths within τ (Yen's kSP), run an on-the-fly RkNNT query for each, pick the best |
//! | [`PrePlanner`] | Pre | same enumeration, but the RkNNT set of each candidate is the union of pre-computed per-vertex RkNNT sets (Lemma 3) |
//! | [`PruningPlanner`] with [`Objective::Maximize`] | Pre-Max | Algorithm 6: best-first expansion of partial routes with reachability and dominance pruning |
//! | [`PruningPlanner`] with [`Objective::Minimize`] | Pre-Min | same search with the Min objective and its extra bound check |
//!
//! All planners return the same optimal passenger count (asserted by the
//! test-suite); they differ only in running time, which is what Figures 18–20
//! of the evaluation measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod planners;
mod precompute;
mod pruning;
mod types;

pub use planners::{BruteForcePlanner, PrePlanner};
pub use precompute::Precomputation;
pub use pruning::PruningPlanner;
pub use types::{Objective, PlanQuery, PlanResult, PlannerConfig, RoutePlanner};
