//! Enumeration-based planners: `BruteForce` (on-the-fly RkNNT per candidate)
//! and `Pre` (pre-computed vertex RkNNT sets).

use crate::precompute::Precomputation;
use crate::types::{Objective, PlanQuery, PlanResult, PlannerConfig, RoutePlanner};
use rknnt_core::{DivideConquerEngine, RknnTEngine, RknntQuery};
use rknnt_graph::{paths_within, Path, RouteGraph};
use rknnt_index::{RouteStore, TransitionId, TransitionStore};
use std::time::Instant;

/// Picks the better of two candidate (path, passenger-set) pairs under the
/// objective; ties are broken towards the shorter path so all planners agree
/// on a canonical optimum.
fn better(
    objective: Objective,
    current: &Option<(Path, Vec<TransitionId>)>,
    candidate: (Path, Vec<TransitionId>),
) -> bool {
    let Some((cur_path, cur_pass)) = current else {
        return true;
    };
    let (cand_path, cand_pass) = &candidate;
    let cmp = cand_pass.len().cmp(&cur_pass.len());
    let improves = match objective {
        Objective::Maximize => cmp.is_gt(),
        Objective::Minimize => cmp.is_lt(),
    };
    improves || (cmp.is_eq() && cand_path.length < cur_path.length - 1e-12)
}

/// The `BruteForce` planner of Section 6.1: enumerate every path within τ
/// with Yen's k-shortest-paths loop, then run a full RkNNT query for each
/// candidate and keep the best.
pub struct BruteForcePlanner<'a> {
    graph: &'a RouteGraph,
    routes: &'a RouteStore,
    transitions: &'a TransitionStore,
    config: PlannerConfig,
}

impl<'a> BruteForcePlanner<'a> {
    /// Creates the brute-force planner.
    pub fn new(
        graph: &'a RouteGraph,
        routes: &'a RouteStore,
        transitions: &'a TransitionStore,
        config: PlannerConfig,
    ) -> Self {
        BruteForcePlanner {
            graph,
            routes,
            transitions,
            config,
        }
    }
}

impl RoutePlanner for BruteForcePlanner<'_> {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn plan(&self, query: &PlanQuery, objective: Objective) -> PlanResult {
        let started = Instant::now();
        let engine = DivideConquerEngine::new(self.routes, self.transitions);
        let (candidates, _truncated) = paths_within(
            self.graph,
            query.start,
            query.end,
            query.tau,
            self.config.max_candidate_paths,
        );
        let mut best: Option<(Path, Vec<TransitionId>)> = None;
        let examined = candidates.len();
        for path in candidates {
            let positions = path
                .vertices
                .iter()
                .map(|v| self.graph.position(*v))
                .collect();
            let passengers = engine
                .execute(&RknntQuery::exists(positions, self.config.k))
                .transitions;
            if better(objective, &best, (path.clone(), passengers.clone())) {
                best = Some((path, passengers));
            }
        }
        let (route, passengers) = match best {
            Some((p, t)) => (Some(p), t),
            None => (None, Vec::new()),
        };
        PlanResult {
            route,
            passengers,
            elapsed: started.elapsed(),
            candidates_examined: examined,
        }
    }
}

/// The `Pre` planner: the same candidate enumeration as `BruteForce`, but the
/// passenger set of each candidate is the union of the pre-computed
/// per-vertex RkNNT sets (Lemma 3), avoiding any on-the-fly RkNNT query.
pub struct PrePlanner<'a> {
    graph: &'a RouteGraph,
    precomputation: &'a Precomputation,
    config: PlannerConfig,
}

impl<'a> PrePlanner<'a> {
    /// Creates the pre-computation based enumeration planner.
    pub fn new(
        graph: &'a RouteGraph,
        precomputation: &'a Precomputation,
        config: PlannerConfig,
    ) -> Self {
        PrePlanner {
            graph,
            precomputation,
            config,
        }
    }
}

impl RoutePlanner for PrePlanner<'_> {
    fn name(&self) -> &'static str {
        "Pre"
    }

    fn plan(&self, query: &PlanQuery, objective: Objective) -> PlanResult {
        let started = Instant::now();
        let (candidates, _truncated) = paths_within(
            self.graph,
            query.start,
            query.end,
            query.tau,
            self.config.max_candidate_paths,
        );
        let mut best: Option<(Path, Vec<TransitionId>)> = None;
        let examined = candidates.len();
        for path in candidates {
            let passengers = self.precomputation.union_along(&path.vertices);
            if better(objective, &best, (path.clone(), passengers.clone())) {
                best = Some((path, passengers));
            }
        }
        let (route, passengers) = match best {
            Some((p, t)) => (Some(p), t),
            None => (None, Vec::new()),
        };
        PlanResult {
            route,
            passengers,
            elapsed: started.elapsed(),
            candidates_examined: examined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;
    use rknnt_graph::VertexId;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    pub(crate) fn grid_world() -> (RouteGraph, RouteStore, TransitionStore) {
        // A 4x4 grid of stops with horizontal and vertical routes, plus
        // transitions clustered near the top rows so Max and Min differ.
        let mut route_points: Vec<Vec<Point>> = Vec::new();
        for y in 0..4 {
            route_points.push(
                (0..4)
                    .map(|x| p(x as f64 * 10.0, y as f64 * 10.0))
                    .collect(),
            );
        }
        for x in 0..4 {
            route_points.push(
                (0..4)
                    .map(|y| p(x as f64 * 10.0, y as f64 * 10.0))
                    .collect(),
            );
        }
        let graph = RouteGraph::from_routes(route_points.iter().map(|r| r.as_slice()));
        let (routes, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), route_points);
        let mut transitions = TransitionStore::default();
        // Passengers concentrated along the y = 30 corridor.
        for i in 0..25u32 {
            let x = (i as f64 * 1.3) % 30.0;
            transitions
                .insert(
                    p(x, 28.0 + (i % 5) as f64),
                    p(30.0 - x, 29.0 + (i % 3) as f64),
                )
                .unwrap();
        }
        // A few scattered near the bottom.
        for i in 0..5u32 {
            transitions
                .insert(p(i as f64 * 6.0, 1.0), p(30.0 - i as f64 * 6.0, 2.0))
                .unwrap();
        }
        (graph, routes, transitions)
    }

    fn corners(graph: &RouteGraph) -> (VertexId, VertexId) {
        (
            graph.nearest_vertex(&p(0.0, 0.0)).unwrap(),
            graph.nearest_vertex(&p(30.0, 30.0)).unwrap(),
        )
    }

    #[test]
    fn brute_force_and_pre_agree() {
        let (graph, routes, transitions) = grid_world();
        let config = PlannerConfig {
            k: 2,
            max_candidate_paths: 2000,
        };
        let pre = Precomputation::build(&graph, &routes, &transitions, config.k);
        let bf = BruteForcePlanner::new(&graph, &routes, &transitions, config);
        let pp = PrePlanner::new(&graph, &pre, config);
        let (start, end) = corners(&graph);
        let query = PlanQuery {
            start,
            end,
            tau: 80.0,
        };
        for objective in [Objective::Maximize, Objective::Minimize] {
            let a = bf.plan(&query, objective);
            let b = pp.plan(&query, objective);
            assert_eq!(
                a.passenger_count(),
                b.passenger_count(),
                "{objective:?}: {} vs {}",
                a.passenger_count(),
                b.passenger_count()
            );
            assert!(a.route.is_some() && b.route.is_some());
            assert!(a.travel_distance() <= query.tau + 1e-9);
            assert!(b.travel_distance() <= query.tau + 1e-9);
        }
        assert_eq!(bf.name(), "BruteForce");
        assert_eq!(pp.name(), "Pre");
    }

    #[test]
    fn max_attracts_at_least_as_many_as_min() {
        let (graph, routes, transitions) = grid_world();
        let config = PlannerConfig {
            k: 2,
            max_candidate_paths: 2000,
        };
        let pre = Precomputation::build(&graph, &routes, &transitions, config.k);
        let pp = PrePlanner::new(&graph, &pre, config);
        let (start, end) = corners(&graph);
        let query = PlanQuery {
            start,
            end,
            tau: 90.0,
        };
        let max = pp.plan(&query, Objective::Maximize);
        let min = pp.plan(&query, Objective::Minimize);
        assert!(max.passenger_count() >= min.passenger_count());
        // With passengers clustered near y = 30, the max route should pass
        // through that corridor and strictly beat the min route.
        assert!(max.passenger_count() > min.passenger_count());
    }

    #[test]
    fn no_route_within_tau_returns_none() {
        let (graph, routes, transitions) = grid_world();
        let config = PlannerConfig {
            k: 1,
            max_candidate_paths: 100,
        };
        let bf = BruteForcePlanner::new(&graph, &routes, &transitions, config);
        let (start, end) = corners(&graph);
        // Shortest possible distance between opposite corners is 60; τ = 10
        // admits nothing.
        let result = bf.plan(
            &PlanQuery {
                start,
                end,
                tau: 10.0,
            },
            Objective::Maximize,
        );
        assert!(result.route.is_none());
        assert_eq!(result.passenger_count(), 0);
        assert_eq!(result.candidates_examined, 0);
    }

    #[test]
    fn tighter_tau_never_increases_max_passengers() {
        let (graph, routes, transitions) = grid_world();
        let config = PlannerConfig {
            k: 2,
            max_candidate_paths: 2000,
        };
        let pre = Precomputation::build(&graph, &routes, &transitions, config.k);
        let pp = PrePlanner::new(&graph, &pre, config);
        let (start, end) = corners(&graph);
        let loose = pp.plan(
            &PlanQuery {
                start,
                end,
                tau: 100.0,
            },
            Objective::Maximize,
        );
        let tight = pp.plan(
            &PlanQuery {
                start,
                end,
                tau: 60.0,
            },
            Objective::Maximize,
        );
        assert!(loose.passenger_count() >= tight.passenger_count());
    }
}
