//! Pre-computation (Algorithm 5): the RkNNT set of every graph vertex and
//! the all-pairs shortest-distance matrix `Mψ`.

use rknnt_core::{FilterRefineEngine, RknnTEngine, RknntQuery};
use rknnt_graph::{DistanceMatrix, RouteGraph, VertexId};
use rknnt_index::{RouteStore, TransitionId, TransitionStore};
use std::time::{Duration, Instant};

/// The pre-computed state the `Pre`, `Pre-Max` and `Pre-Min` planners share.
///
/// `k` is fixed at build time, exactly as in the paper ("multiple datasets of
/// representative k can be generated in advance to meet different
/// requirements").
#[derive(Debug, Clone)]
pub struct Precomputation {
    k: usize,
    vertex_rknnt: Vec<Vec<TransitionId>>,
    matrix: DistanceMatrix,
    rknnt_time: Duration,
    shortest_time: Duration,
}

impl Precomputation {
    /// Runs Algorithm 5: one single-point RkNNT query per graph vertex plus
    /// the all-pairs shortest-distance computation.
    pub fn build(
        graph: &RouteGraph,
        routes: &RouteStore,
        transitions: &TransitionStore,
        k: usize,
    ) -> Self {
        let engine = FilterRefineEngine::with_voronoi(routes, transitions);

        let rknnt_started = Instant::now();
        let vertex_rknnt: Vec<Vec<TransitionId>> = graph
            .vertices()
            .map(|v| {
                let query = RknntQuery::exists(vec![graph.position(v)], k);
                engine.execute(&query).transitions
            })
            .collect();
        let rknnt_time = rknnt_started.elapsed();

        let shortest_started = Instant::now();
        let matrix = DistanceMatrix::from_dijkstra(graph);
        let shortest_time = shortest_started.elapsed();

        Precomputation {
            k,
            vertex_rknnt,
            matrix,
            rknnt_time,
            shortest_time,
        }
    }

    /// The k the vertex RkNNT sets were computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pre-computed RkNNT set of a vertex (sorted by transition id).
    pub fn rknnt_of(&self, v: VertexId) -> &[TransitionId] {
        &self.vertex_rknnt[v.index()]
    }

    /// The all-pairs shortest-distance matrix `Mψ`.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }

    /// ω(R) of a vertex sequence: the union of the per-vertex RkNNT sets
    /// (Lemma 3), sorted and de-duplicated.
    pub fn union_along(&self, vertices: &[VertexId]) -> Vec<TransitionId> {
        let mut out: Vec<TransitionId> = vertices
            .iter()
            .flat_map(|v| self.rknnt_of(*v).iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Time spent on the per-vertex RkNNT queries (first row of Table 5).
    pub fn rknnt_time(&self) -> Duration {
        self.rknnt_time
    }

    /// Time spent on all-pairs shortest distances (second row of Table 5).
    pub fn shortest_time(&self) -> Duration {
        self.shortest_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_core::BruteForceEngine;
    use rknnt_geo::Point;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn small_world() -> (RouteGraph, RouteStore, TransitionStore) {
        let route_points: Vec<Vec<Point>> = vec![
            vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)],
            vec![p(0.0, 20.0), p(10.0, 20.0), p(20.0, 20.0)],
            vec![p(10.0, 0.0), p(10.0, 20.0)],
        ];
        let graph = RouteGraph::from_routes(route_points.iter().map(|r| r.as_slice()));
        let (routes, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), route_points);
        let mut transitions = TransitionStore::default();
        for i in 0..40u32 {
            let ox = (i as f64 * 3.7) % 20.0;
            let oy = (i as f64 * 7.1) % 20.0;
            transitions
                .insert(p(ox, oy), p(20.0 - ox, 20.0 - oy))
                .unwrap();
        }
        (graph, routes, transitions)
    }

    #[test]
    fn vertex_sets_match_single_point_queries() {
        let (graph, routes, transitions) = small_world();
        let pre = Precomputation::build(&graph, &routes, &transitions, 2);
        let oracle = BruteForceEngine::new(&routes, &transitions);
        for v in graph.vertices() {
            let expected = oracle
                .execute(&RknntQuery::exists(vec![graph.position(v)], 2))
                .transitions;
            assert_eq!(pre.rknnt_of(v), expected.as_slice(), "vertex {v}");
        }
        assert_eq!(pre.k(), 2);
        assert!(pre.rknnt_time() > Duration::ZERO);
    }

    #[test]
    fn union_along_equals_multi_point_query() {
        // Lemma 3 in action: the union of vertex sets along a path equals the
        // RkNNT of the path taken as a multi-point query.
        let (graph, routes, transitions) = small_world();
        let pre = Precomputation::build(&graph, &routes, &transitions, 2);
        let oracle = BruteForceEngine::new(&routes, &transitions);
        let path: Vec<VertexId> = graph.vertices().take(4).collect();
        let positions: Vec<Point> = path.iter().map(|v| graph.position(*v)).collect();
        let expected = oracle
            .execute(&RknntQuery::exists(positions, 2))
            .transitions;
        assert_eq!(pre.union_along(&path), expected);
    }

    #[test]
    fn matrix_is_consistent_with_graph_dijkstra() {
        let (graph, routes, transitions) = small_world();
        let pre = Precomputation::build(&graph, &routes, &transitions, 1);
        let a = graph.nearest_vertex(&p(0.0, 0.0)).unwrap();
        let b = graph.nearest_vertex(&p(20.0, 20.0)).unwrap();
        let direct = graph.shortest_path(a, b).unwrap();
        assert!((pre.matrix().distance(a, b) - direct.length).abs() < 1e-9);
    }
}
