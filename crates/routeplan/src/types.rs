//! Query, configuration and result types shared by the planners.

use rknnt_graph::{Path, VertexId};
use rknnt_index::TransitionId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Whether to maximise or minimise the number of attracted passengers
/// (MaxRkNNT vs MinRkNNT, Definition 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// MaxRkNNT: the route attracting the most passengers.
    #[default]
    Maximize,
    /// MinRkNNT: the route attracting the fewest passengers.
    Minimize,
}

/// Configuration shared by the planners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// The k of the underlying RkNNT queries (fixed at pre-computation time,
    /// as in Algorithm 5).
    pub k: usize,
    /// Safety cap on the number of candidate paths the enumeration-based
    /// planners may generate; prevents a pathological τ from exploding the
    /// baseline. The pruning planner does not need it.
    pub max_candidate_paths: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            k: 10,
            max_candidate_paths: 4096,
        }
    }
}

/// A route-planning query: start and end vertices plus the travel-distance
/// threshold τ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanQuery {
    /// Start vertex (the paper's `v_s` / origin O).
    pub start: VertexId,
    /// End vertex (the paper's `v_e` / destination D).
    pub end: VertexId,
    /// Travel distance threshold τ; only routes with ψ(R) ≤ τ qualify.
    pub tau: f64,
}

/// Result of a planning query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlanResult {
    /// The optimal route, or `None` when no route within τ exists.
    pub route: Option<Path>,
    /// The passengers (RkNNT set) of the optimal route, sorted.
    pub passengers: Vec<TransitionId>,
    /// Wall-clock search time (excludes pre-computation).
    pub elapsed: Duration,
    /// Number of candidate routes evaluated (full candidates for the
    /// enumeration planners, expanded partial routes for the pruning
    /// planner).
    pub candidates_examined: usize,
}

impl PlanResult {
    /// Number of passengers attracted by the returned route.
    pub fn passenger_count(&self) -> usize {
        self.passengers.len()
    }

    /// Travel distance of the returned route (0 when no route was found).
    pub fn travel_distance(&self) -> f64 {
        self.route.as_ref().map(|r| r.length).unwrap_or(0.0)
    }
}

/// A MaxRkNNT / MinRkNNT planner.
pub trait RoutePlanner {
    /// Planner name used in benchmark output ("BruteForce", "Pre",
    /// "Pre-Max", "Pre-Min").
    fn name(&self) -> &'static str;

    /// Answers a planning query under the given objective.
    fn plan(&self, query: &PlanQuery, objective: Objective) -> PlanResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = PlannerConfig::default();
        assert_eq!(c.k, 10);
        assert!(c.max_candidate_paths > 0);
        assert_eq!(Objective::default(), Objective::Maximize);
    }

    #[test]
    fn plan_result_accessors() {
        let r = PlanResult {
            route: Some(Path {
                vertices: vec![VertexId(0), VertexId(1)],
                length: 12.5,
            }),
            passengers: vec![TransitionId(3), TransitionId(7)],
            elapsed: Duration::from_millis(1),
            candidates_examined: 4,
        };
        assert_eq!(r.passenger_count(), 2);
        assert_eq!(r.travel_distance(), 12.5);
        let empty = PlanResult::default();
        assert_eq!(empty.passenger_count(), 0);
        assert_eq!(empty.travel_distance(), 0.0);
    }
}
