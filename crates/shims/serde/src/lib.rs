//! Offline stand-in for `serde`.
//!
//! See `serde_derive`'s crate docs for why this exists. The trait names
//! mirror the real crate so `use serde::{Deserialize, Serialize};` resolves
//! for both the derive macros (macro namespace) and the traits (type
//! namespace); the derives emit no impls and nothing in the workspace
//! requires the trait bounds yet.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker mirroring `serde::Serialize`. No-op in the offline shim.
pub trait Serialize {}

/// Marker mirroring `serde::Deserialize`. No-op in the offline shim.
pub trait Deserialize<'de>: Sized {}
