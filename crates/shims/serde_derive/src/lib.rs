//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds in a hermetic environment with no access to
//! crates.io, so the real `serde` cannot be vendored. Nothing in the
//! workspace actually serialises data yet — the `#[derive(Serialize,
//! Deserialize)]` attributes mark types as wire-ready for a future
//! transport layer — so the derives here accept the attribute and emit
//! nothing. Swapping the `serde` path dependencies for the real crates
//! requires no source changes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
