//! Offline stand-in for the subset of `proptest` used by the workspace's
//! property-test suites.
//!
//! The hermetic build environment has no access to crates.io, so this crate
//! reimplements the strategy combinators the suites consume — range
//! strategies, tuples, `prop_map`, `prop_oneof!`, `prop::collection::vec`,
//! `any`, `prop::sample::Index` — plus the `proptest!` macro itself. Two
//! deliberate simplifications relative to the real crate:
//!
//! * **No shrinking.** A failing case reports the values via the panic
//!   message of the underlying `assert!`, but is not minimised.
//! * **Derived determinism.** Each generated test seeds its RNG from the
//!   test's name, so runs are reproducible without a persisted regression
//!   file.
//!
//! The API mirrors `proptest` closely enough that swapping the path
//! dependency for the real crate requires no source changes in the suites.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator backing the strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary label (the test name).
    pub fn from_label(label: &str) -> Self {
        let mut state = 0xcbf29ce484222325u64;
        for b in label.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100000001b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform double in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; the bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test-case values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so alternatives can be stored together.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe internal form of [`Strategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backing type).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one branch");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32, i16, i8, u16, u8, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Always yields a clone of the given value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite doubles over a wide symmetric range; NaN/inf would make
        // the geometric property tests vacuous rather than stronger.
        (rng.next_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for crate::prop::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::prop::sample::Index::new(rng.next_u64())
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// prop:: module tree
// ---------------------------------------------------------------------------

/// Mirrors the `proptest::prop` module tree (`prop::collection`,
/// `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `len` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        /// An index into a collection of as-yet-unknown size (mirrors
        /// `proptest::sample::Index`).
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            pub(crate) fn new(raw: u64) -> Self {
                Index(raw)
            }

            /// Resolves the index against a collection of length `len`.
            /// Panics on `len == 0`, like the real crate.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on an empty collection");
                (self.0 % len as u64) as usize
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-`proptest!` configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the hermetic suites fast while
        // still exercising a spread of layouts per property.
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            // The `#[test]` attribute is written by the caller (inside the
            // macro invocation, as in the real proptest) and passes through
            // with the other metas.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two values are not equal for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue`, so it is only valid directly inside a `proptest!`
/// body (which is a loop body) — the same constraint the real macro has.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_label() {
        let s = (0.0f64..1.0, 0usize..10).prop_map(|(x, n)| (x, n));
        let mut a = TestRng::from_label("t");
        let mut b = TestRng::from_label("t");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0i32..100, 1..17)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 17);
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn oneof_draws_from_both_branches(x in prop_oneof![0i32..10, 100i32..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
        }

        #[test]
        fn assume_skips_cases(x in 0i32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn index_resolves_in_bounds(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }
    }
}
