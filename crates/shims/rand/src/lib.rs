//! Offline stand-in for the subset of `rand` 0.8 used by the workspace.
//!
//! The hermetic build environment has no access to crates.io, so this crate
//! provides the exact API surface the data generators consume —
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen` and
//! `Rng::gen_range` over integer and float ranges — backed by the public
//! domain splitmix64/xoshiro256++ generators. The streams differ from the
//! real `rand` crate (which is fine: the generators only promise a
//! *deterministic* synthetic city for a given seed, not any particular one),
//! but determinism per seed holds, which is what the test-suite and the
//! experiment harness rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed an RNG from a bare `u64` (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A random value of `T` from `T`'s canonical distribution
    /// (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `range`. Panics on an empty range, like the real
    /// crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Distribution used by [`Rng::gen`] (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-free) sampling of `[0, bound)` via Lemire's
/// method, shared by the integer range impls.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let raw = rng.next_u64();
        let hi = ((raw as u128 * bound as u128) >> 64) as u64;
        let lo = raw.wrapping_mul(bound);
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = rng.gen();
        let v = self.start + u * (self.end - self.start);
        // `u < 1` does not guarantee `v < end` after rounding; keep the
        // half-open contract of the real crate.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let u: f64 = rng.gen();
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64, matching the reference initialisation procedure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&z));
            let w: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn all_buckets_hit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|b| *b));
    }
}
