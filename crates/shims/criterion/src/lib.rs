//! Offline stand-in for the subset of `criterion` used by the bench targets.
//!
//! The hermetic build environment has no access to crates.io, so this crate
//! provides the group/bench/iter API shape the `benches/` files consume and
//! a simple measurement loop: warm-up iterations followed by timed
//! iterations, reporting the mean per-iteration wall-clock time. There is no
//! statistical analysis, outlier rejection or HTML report — swap the path
//! dependency for the real crate to get those back without source changes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's warm-up is fixed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: two warm-up runs, then `iters` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = if bencher.elapsed.is_zero() {
        Duration::ZERO
    } else {
        bencher.elapsed / sample_size as u32
    };
    println!(
        "  {label}: {:.3} ms/iter ({sample_size} iters)",
        mean.as_secs_f64() * 1e3
    );
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).warm_up_time(Duration::ZERO);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // 2 warm-up + 3 timed.
        assert_eq!(runs, 5);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
