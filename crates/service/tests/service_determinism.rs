//! The service's central contract: batched / parallel / cached execution
//! returns byte-identical transition sets to sequential per-query
//! [`RknnTEngine::execute`], for all four engines and both semantics — and
//! the cache never serves results across a store mutation.

use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_data::{workload, CityConfig, CityGenerator, TransitionConfig, TransitionGenerator};
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionStore};
use rknnt_service::{EnginePolicy, QueryService, ServiceConfig};

fn build_world(seed: u64, transitions: usize) -> (Vec<Vec<Point>>, RouteStore, TransitionStore) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let routes = city.route_store();
    let store = TransitionGenerator::new(TransitionConfig::checkin_like(transitions, seed ^ 0x77))
        .generate_store(&city);
    let queries = workload::rknnt_queries(&city, 6, 4, 1_200.0, seed ^ 0x3);
    (queries, routes, store)
}

/// A mixed batch: spatially spread queries, exact duplicates, and the same
/// route under both semantics and several k values — the shapes the
/// shared-filter and coalescing paths must handle.
fn mixed_batch(query_routes: &[Vec<Point>]) -> Vec<RknntQuery> {
    let mut batch = Vec::new();
    for (i, route) in query_routes.iter().enumerate() {
        let k = 1 + (i % 3) * 4;
        batch.push(RknntQuery::exists(route.clone(), k));
        batch.push(RknntQuery::for_all(route.clone(), k));
        // Same (route, k) twice -> filter reuse; identical query -> coalesce.
        batch.push(RknntQuery::exists(route.clone(), k));
    }
    // A couple of degenerate queries must flow through unharmed.
    batch.push(RknntQuery::exists(Vec::new(), 3));
    batch.push(RknntQuery::exists(query_routes[0].clone(), 0));
    batch
}

#[test]
fn batched_parallel_results_match_sequential_for_all_engines() {
    let (query_routes, routes, transitions) = build_world(23, 2_500);
    let batch = mixed_batch(&query_routes);

    for kind in EngineKind::ALL {
        // Sequential ground truth with a fresh single-threaded engine.
        let engine = kind.build(&routes, &transitions);
        let expected: Vec<Vec<u32>> = batch
            .iter()
            .map(|q| {
                engine
                    .execute(q)
                    .transitions
                    .iter()
                    .map(|t| t.raw())
                    .collect()
            })
            .collect();

        // Batched over 4 workers, with the cache enabled; run the batch
        // twice so the second pass exercises the all-hits path too.
        let service = QueryService::new(
            routes.clone(),
            transitions.clone(),
            ServiceConfig::default()
                .with_workers(4)
                .with_policy(EnginePolicy::Fixed(kind)),
        );
        for pass in 0..2 {
            let (results, stats) = service.execute_batch(&batch);
            let got: Vec<Vec<u32>> = results
                .iter()
                .map(|r| r.transitions.iter().map(|t| t.raw()).collect())
                .collect();
            assert_eq!(got, expected, "engine {kind} pass {pass}");
            assert_eq!(stats.queries, batch.len());
            if pass == 1 {
                assert_eq!(
                    stats.cache_hits,
                    batch.len(),
                    "second pass must be answered entirely from the cache"
                );
            }
        }
    }
}

#[test]
fn shared_filters_and_coalescing_actually_trigger() {
    let (query_routes, routes, transitions) = build_world(31, 1_500);
    let batch = mixed_batch(&query_routes);
    let service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(4)
            .with_cache_capacity(0) // isolate the grouping counters
            .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi)),
    );
    let (_, stats) = service.execute_batch(&batch);
    assert!(stats.groups > 0);
    assert!(stats.workers_used >= 2, "batch must actually fan out");
    assert!(
        stats.duplicates_coalesced > 0,
        "identical queries in the batch must be coalesced"
    );
    assert!(
        stats.filters_saved > 0,
        "same (route, k) under both semantics must share a filter construction"
    );
    assert!(stats.filter_constructions > 0);
    assert_eq!(stats.cache_hits, 0);
}

#[test]
fn auto_policy_matches_an_oracle() {
    let (query_routes, routes, transitions) = build_world(47, 1_200);
    let oracle = EngineKind::BruteForce.build(&routes, &transitions);
    let mut batch = Vec::new();
    for route in &query_routes {
        batch.push(RknntQuery::exists(route.clone(), 2));
        batch.push(RknntQuery::exists(route.clone(), 15)); // large-k branch
        batch.push(RknntQuery::exists(vec![route[0]], 2)); // single-point branch
    }
    let expected: Vec<Vec<u32>> = batch
        .iter()
        .map(|q| {
            oracle
                .execute(q)
                .transitions
                .iter()
                .map(|t| t.raw())
                .collect()
        })
        .collect();
    let service = QueryService::new(
        routes.clone(),
        transitions.clone(),
        ServiceConfig::default().with_workers(4),
    );
    let (results, _) = service.execute_batch(&batch);
    let got: Vec<Vec<u32>> = results
        .iter()
        .map(|r| r.transitions.iter().map(|t| t.raw()).collect())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn cache_is_invalidated_by_store_updates() {
    let (query_routes, routes, transitions) = build_world(59, 800);
    let watched = query_routes[0].clone();
    let query = RknntQuery::exists(watched.clone(), 2);
    let mut service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(2)
            .with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine)),
    );

    let before = service.execute(&query);
    assert_eq!(service.generation(), 0);
    // Warm hit.
    let hit = service.execute(&query);
    assert_eq!(hit.transitions, before.transitions);
    assert!(service.cache_stats().hits >= 1);

    // Mutate the stores: drop a transition right on top of the watched
    // route so the correct answer must change.
    let origin = Point::new(watched[0].x + 2.0, watched[0].y + 2.0);
    let destination = Point::new(watched[1].x - 2.0, watched[1].y - 2.0);
    let mut inserted = None;
    service.update_stores(|_, transitions| {
        inserted = transitions.insert(origin, destination);
    });
    let inserted = inserted.expect("update ran");
    assert_eq!(service.generation(), 1);
    assert_eq!(service.cache_len(), 0, "update must drop the cache");

    let after = service.execute(&query);
    assert!(
        after.contains(inserted),
        "post-update query must see the new transition, not the cached answer"
    );

    // Sequential ground truth against the mutated stores.
    {
        let engine = EngineKind::FilterRefine.build(service.routes(), service.transitions());
        assert_eq!(after.transitions, engine.execute(&query).transitions);
    }

    // And a full store replacement behaves the same.
    service.replace_stores(RouteStore::default(), TransitionStore::default());
    assert_eq!(service.generation(), 2);
    assert!(service.execute(&query).is_empty());
}

#[test]
fn explicit_invalidate_all_keeps_answers_and_drops_entries() {
    let (query_routes, routes, transitions) = build_world(71, 600);
    let query = RknntQuery::exists(query_routes[1].clone(), 3);
    let service = QueryService::new(routes, transitions, ServiceConfig::default());
    let first = service.execute(&query);
    assert!(service.cache_len() > 0);
    service.invalidate_all();
    assert_eq!(service.cache_len(), 0);
    let second = service.execute(&query);
    assert_eq!(first.transitions, second.transitions);
    assert_eq!(service.cache_stats().invalidations, 1);
}

#[test]
fn concurrent_batches_share_one_service() {
    let (query_routes, routes, transitions) = build_world(83, 1_000);
    let service = QueryService::new(
        routes.clone(),
        transitions.clone(),
        ServiceConfig::default().with_workers(2),
    );
    let oracle = EngineKind::BruteForce.build(&routes, &transitions);
    std::thread::scope(|scope| {
        for chunk in query_routes.chunks(2) {
            let service = &service;
            let oracle = &oracle;
            scope.spawn(move || {
                let batch: Vec<RknntQuery> = chunk
                    .iter()
                    .map(|r| RknntQuery::exists(r.clone(), 4))
                    .collect();
                let (results, _) = service.execute_batch(&batch);
                for (query, result) in batch.iter().zip(&results) {
                    assert_eq!(result.transitions, oracle.execute(query).transitions);
                }
            });
        }
    });
}

#[test]
fn both_semantics_agree_between_service_and_engines() {
    let (query_routes, routes, transitions) = build_world(97, 900);
    let service = QueryService::new(
        routes.clone(),
        transitions.clone(),
        ServiceConfig::default().with_workers(3),
    );
    for semantics in [Semantics::Exists, Semantics::ForAll] {
        for kind in EngineKind::ALL {
            let engine = kind.build(&routes, &transitions);
            let query = RknntQuery {
                route: query_routes[2].clone(),
                k: 3,
                semantics,
            };
            assert_eq!(
                service.execute(&query).transitions,
                engine.execute(&query).transitions,
                "{kind} {semantics}"
            );
        }
    }
}
