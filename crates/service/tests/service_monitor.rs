//! Continuous-subscription determinism: applying a random churn stream to a
//! service with live subscriptions must yield, after replaying the emitted
//! deltas, result sets byte-identical to re-executing every subscription
//! against a freshly built post-churn service — for all four engines and
//! both semantics. Nothing the monitor skips, certifies or maintains in
//! place may ever diverge from brute re-execution.

use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_data::{
    workload, CityConfig, CityGenerator, SubscriptionEvent, SubscriptionStreamConfig,
    TransitionConfig, TransitionGenerator,
};
use rknnt_geo::Point;
use rknnt_index::{TransitionId, TransitionStore};
use rknnt_service::{
    DeltaReason, EnginePolicy, QueryService, ServiceConfig, StoreUpdate, SubscriptionId,
};
use std::collections::BTreeMap;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Replays a subscription stream through a monitored service while keeping
/// a shadow store pair and per-subscription delta-replayed results; checks
/// after every update batch that replayed results match fresh engines over
/// the shadow state.
fn run_monitored_churn(kind: EngineKind, semantics: Semantics, seed: u64) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let routes = city.route_store();
    let transitions = TransitionGenerator::new(TransitionConfig::checkin_like(700, seed ^ 0x5e))
        .generate_store(&city);

    let mut shadow_routes = routes.clone();
    let mut shadow_transitions = transitions.clone();
    let mut live_transitions = transitions.transition_ids();
    let mut live_routes = routes.route_ids();

    let mut service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(2)
            .with_policy(EnginePolicy::Fixed(kind)),
    );

    // Replayed results: what a client that only consumes deltas believes.
    let mut replayed: BTreeMap<SubscriptionId, Vec<TransitionId>> = BTreeMap::new();
    let mut live_subs: Vec<SubscriptionId> = Vec::new();

    let config = SubscriptionStreamConfig::new(160, 0.5, seed ^ 0xfeed);
    let stream = workload::subscription_stream(&city, &config);
    assert!(!stream.is_empty());

    let mut k_counter = 0usize;
    let mut checked = 0usize;

    let check_all = |service: &QueryService,
                     replayed: &BTreeMap<SubscriptionId, Vec<TransitionId>>,
                     shadow_routes: &rknnt_index::RouteStore,
                     shadow_transitions: &TransitionStore,
                     checked: &mut usize| {
        let fresh = kind.build(shadow_routes, shadow_transitions);
        for (id, replayed_result) in replayed {
            let query = service
                .subscription_query(*id)
                .expect("live subscription has a query");
            let expected = fresh.execute(query).transitions;
            assert_eq!(
                service.subscription_result(*id).unwrap(),
                expected.as_slice(),
                "maintained result diverged from fresh post-churn state \
                 ({kind} {semantics:?})"
            );
            assert_eq!(
                replayed_result, &expected,
                "delta-replayed result diverged from fresh post-churn state \
                 ({kind} {semantics:?})"
            );
            *checked += 1;
        }
    };

    for event in stream {
        match event {
            SubscriptionEvent::Subscribe(route) => {
                let k = 1 + k_counter % 4;
                k_counter += 1;
                let query = RknntQuery {
                    route,
                    k,
                    semantics,
                };
                let id = service.subscribe(query);
                // The client snapshots the initial result, then follows
                // deltas only.
                replayed.insert(id, service.subscription_result(id).unwrap().to_vec());
                live_subs.push(id);
            }
            SubscriptionEvent::Unsubscribe(draw) => {
                if live_subs.is_empty() {
                    continue;
                }
                let victim = live_subs.swap_remove(draw as usize % live_subs.len());
                assert!(service.unsubscribe(victim));
                assert!(!service.unsubscribe(victim));
                replayed.remove(&victim);
            }
            SubscriptionEvent::Update(update_event) => {
                let update = match update_event {
                    workload::ChurnEvent::InsertTransition(origin, destination) => {
                        StoreUpdate::InsertTransition {
                            origin,
                            destination,
                        }
                    }
                    workload::ChurnEvent::ExpireTransition(draw) => {
                        if live_transitions.is_empty() {
                            continue;
                        }
                        let victim = draw as usize % live_transitions.len();
                        StoreUpdate::ExpireTransition(live_transitions.swap_remove(victim))
                    }
                    workload::ChurnEvent::InsertRoute(points) => StoreUpdate::InsertRoute(points),
                    workload::ChurnEvent::RemoveRoute(draw) => {
                        if live_routes.len() <= 4 {
                            continue;
                        }
                        let victim = draw as usize % live_routes.len();
                        StoreUpdate::RemoveRoute(live_routes.swap_remove(victim))
                    }
                    workload::ChurnEvent::Query(_) => {
                        unreachable!("subscription_stream updates never contain queries")
                    }
                };
                // Mirror into the shadow stores.
                match &update {
                    StoreUpdate::InsertTransition {
                        origin,
                        destination,
                    } => {
                        let id = shadow_transitions.insert(*origin, *destination);
                        assert!(id.is_some());
                    }
                    StoreUpdate::ExpireTransition(id) => {
                        assert!(shadow_transitions.remove(*id));
                    }
                    StoreUpdate::InsertRoute(points) => {
                        assert!(shadow_routes.insert_route(points.clone()).is_some());
                    }
                    StoreUpdate::RemoveRoute(id) => {
                        assert!(shadow_routes.remove_route(*id));
                    }
                }
                let stats = service.apply_updates(vec![update]);
                assert_eq!(stats.applied, 1);
                live_transitions.extend(stats.inserted_transitions.iter().copied());
                live_routes.extend(stats.inserted_routes.iter().copied());
                // A subscription is marked dirty at most once per call.
                assert_eq!(stats.subs_dirty, stats.subs_reexecuted);
                // One update, every live sub classified exactly once.
                assert_eq!(
                    stats.subs_unaffected + stats.subs_stable + stats.subs_dirty,
                    service.subscriptions(),
                    "three-way classification must cover every subscription"
                );
                // The client replays the deltas.
                for delta in &stats.deltas {
                    assert!(
                        delta.entered.iter().all(|t| !delta.left.contains(t)),
                        "entered and left must be disjoint"
                    );
                    if let Some(result) = replayed.get_mut(&delta.subscription) {
                        delta.apply(result);
                    }
                    if delta.reason == DeltaReason::TransitionExpired {
                        assert!(delta.entered.is_empty());
                        assert_eq!(delta.left.len(), 1);
                    }
                }
                check_all(
                    &service,
                    &replayed,
                    &shadow_routes,
                    &shadow_transitions,
                    &mut checked,
                );
            }
        }
    }
    check_all(
        &service,
        &replayed,
        &shadow_routes,
        &shadow_transitions,
        &mut checked,
    );
    assert!(checked > 50, "stream must actually exercise subscriptions");
}

#[test]
fn monitored_churn_matches_fresh_state_filter_refine() {
    run_monitored_churn(EngineKind::FilterRefine, Semantics::Exists, 21);
    run_monitored_churn(EngineKind::FilterRefine, Semantics::ForAll, 22);
}

#[test]
fn monitored_churn_matches_fresh_state_voronoi() {
    run_monitored_churn(EngineKind::Voronoi, Semantics::Exists, 23);
    run_monitored_churn(EngineKind::Voronoi, Semantics::ForAll, 24);
}

#[test]
fn monitored_churn_matches_fresh_state_divide_conquer() {
    run_monitored_churn(EngineKind::DivideConquer, Semantics::Exists, 25);
    run_monitored_churn(EngineKind::DivideConquer, Semantics::ForAll, 26);
}

#[test]
fn monitored_churn_matches_fresh_state_brute_force() {
    run_monitored_churn(EngineKind::BruteForce, Semantics::Exists, 27);
    run_monitored_churn(EngineKind::BruteForce, Semantics::ForAll, 28);
}

/// A hand-built world where every classification outcome is observable:
/// unaffected skips, certified-stable keeps, in-place expiry deltas, and
/// dirty re-execution.
#[test]
fn classification_outcomes_and_delta_reasons() {
    let mut routes = rknnt_index::RouteStore::default();
    for i in 0..8 {
        let y = i as f64 * 10.0;
        routes
            .insert_route((0..8).map(|j| p(j as f64 * 10.0, y)).collect())
            .unwrap();
    }
    let mut transitions = TransitionStore::default();
    let near = transitions.insert(p(34.0, 36.0), p(36.0, 34.0)).unwrap();
    let far = transitions.insert(p(35.0, 300.0), p(40.0, 300.0)).unwrap();
    let mut service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine)),
    );

    let query = RknntQuery::exists(vec![p(5.0, 35.0), p(35.0, 35.0), p(65.0, 35.0)], 2);
    let sub = service.subscribe(query.clone());
    assert_eq!(service.subscriptions(), 1);
    assert_eq!(service.subscription_query(sub), Some(&query));
    let initial = service.subscription_result(sub).unwrap().to_vec();
    assert!(initial.contains(&near));
    assert!(!initial.contains(&far));

    // 1. Far transition insert: certified stable, no delta.
    let stats = service.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(33.0, 299.0),
        destination: p(37.0, 301.0),
    }]);
    assert_eq!(stats.subs_stable, 1);
    assert_eq!(stats.subs_reexecuted, 0);
    assert!(stats.deltas.is_empty());
    assert_eq!(service.subscription_result(sub).unwrap(), &initial[..]);

    // 2. Near transition insert: dirty -> re-executed, delta enters the id.
    let stats = service.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(34.5, 35.5),
        destination: p(35.5, 34.5),
    }]);
    let new_id = stats.inserted_transitions[0];
    assert_eq!(stats.subs_dirty, 1);
    assert_eq!(stats.subs_reexecuted, 1);
    assert_eq!(stats.deltas.len(), 1);
    assert_eq!(stats.deltas[0].subscription, sub);
    assert_eq!(stats.deltas[0].reason, DeltaReason::Reexecuted);
    assert_eq!(stats.deltas[0].entered, vec![new_id]);
    assert!(stats.deltas[0].left.is_empty());
    assert!(service.subscription_result(sub).unwrap().contains(&new_id));

    // 3. Expiring a non-member: unaffected, no delta.
    let stats = service.apply_updates(vec![StoreUpdate::ExpireTransition(far)]);
    assert_eq!(stats.subs_unaffected, 1);
    assert!(stats.deltas.is_empty());

    // 4. Expiring a member: in-place maintenance, TransitionExpired delta.
    let stats = service.apply_updates(vec![StoreUpdate::ExpireTransition(near)]);
    assert_eq!(stats.subs_stable, 1);
    assert_eq!(stats.subs_reexecuted, 0, "member expiry never re-executes");
    assert_eq!(stats.deltas.len(), 1);
    assert_eq!(stats.deltas[0].reason, DeltaReason::TransitionExpired);
    assert_eq!(stats.deltas[0].left, vec![near]);
    assert!(!service.subscription_result(sub).unwrap().contains(&near));

    // 5. A far route insert: certified stable.
    let stats = service.apply_updates(vec![StoreUpdate::InsertRoute(
        (0..4).map(|i| p(300.0 + i as f64 * 10.0, 300.0)).collect(),
    )]);
    assert_eq!(stats.subs_stable, 1);
    assert!(stats.deltas.is_empty());

    // 6. Removing the far ladder rung: certified stable (no endpoint has it
    //    strictly closer than the query).
    let stats = service.apply_updates(vec![StoreUpdate::RemoveRoute(rknnt_index::RouteId(7))]);
    assert_eq!(stats.subs_stable, 1);
    assert_eq!(stats.subs_reexecuted, 0);

    // 7. Wholesale store mutation: every subscription refreshed, deltas
    //    buffered and drained by the next call (or explicitly).
    let before = service.subscription_result(sub).unwrap().to_vec();
    service.update_stores(|_, transitions| {
        let mut t = TransitionStore::default();
        std::mem::swap(transitions, &mut t);
    });
    assert_eq!(service.subscription_result(sub).unwrap(), &[] as &[_]);
    let deltas = service.take_subscription_deltas();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].reason, DeltaReason::Reexecuted);
    assert_eq!(deltas[0].left, before);

    // 8. Degenerate subscriptions are permanently unaffected.
    let degenerate = service.subscribe(RknntQuery::exists(vec![], 3));
    assert_eq!(
        service.subscription_result(degenerate).unwrap(),
        &[] as &[_]
    );
    let stats = service.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(1.0, 1.0),
        destination: p(2.0, 2.0),
    }]);
    assert!(stats.subs_unaffected >= 1);

    // Unsubscribing stops maintenance.
    assert!(service.unsubscribe(sub));
    assert_eq!(service.subscriptions(), 1);
    assert!(service.subscription_result(sub).is_none());
    assert!(service.subscription_query(sub).is_none());
}
