//! Churn determinism: after any sequence of incremental updates
//! ([`QueryService::apply_updates`]) interleaved with query batches, every
//! answer must be byte-identical to a service freshly built from the
//! post-churn store state — i.e. region-scoped invalidation never serves a
//! stale cached result — for all four engines and both semantics.

use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_data::{
    workload, ChurnConfig, ChurnEvent, CityConfig, CityGenerator, TransitionConfig,
    TransitionGenerator,
};
use rknnt_geo::Point;
use rknnt_index::{RouteId, RouteStore, TransitionId, TransitionStore};
use rknnt_service::{EnginePolicy, QueryService, ServiceConfig, StoreUpdate};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Replays a churn stream through a service (batched, cached) and through a
/// shadow store pair mutated by the same operations, asserting each query
/// answer matches a fresh engine over the shadow state.
fn run_churn(kind: EngineKind, semantics: Semantics, seed: u64) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let routes = city.route_store();
    let transitions = TransitionGenerator::new(TransitionConfig::checkin_like(900, seed ^ 0x77))
        .generate_store(&city);

    // The shadow world: the "freshly built from the post-churn state"
    // reference. It receives exactly the same operations in the same order,
    // so ids line up; queries against it go through a brand-new engine each
    // time — no cache, no batching, nothing to go stale.
    let mut shadow_routes = routes.clone();
    let mut shadow_transitions = transitions.clone();

    let mut live_transitions = transitions.transition_ids();
    let mut live_routes = routes.route_ids();
    let mut service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(2)
            .with_policy(EnginePolicy::Fixed(kind)),
    );

    // If any churn assertion fires, dump the flight recorder's recent
    // pipeline events (batches, evictions, reclassifications) so the
    // failure comes with the service's side of the story.
    let _dump = rknnt_obs::DumpOnPanic::new(service.flight_recorder(), 32);

    let stream = workload::churn_stream(&city, &ChurnConfig::new(140, 0.3, seed ^ 0xc4a2));
    let mut pending: Vec<RknntQuery> = Vec::new();
    let mut query_counter = 0usize;
    let mut checked = 0usize;

    let flush = |service: &QueryService,
                 pending: &mut Vec<RknntQuery>,
                 shadow_routes: &RouteStore,
                 shadow_transitions: &TransitionStore,
                 checked: &mut usize| {
        if pending.is_empty() {
            return;
        }
        let (results, _) = service.execute_batch(pending);
        let fresh = kind.build(shadow_routes, shadow_transitions);
        for (query, result) in pending.iter().zip(&results) {
            assert_eq!(
                result.transitions,
                fresh.execute(query).transitions,
                "stale or wrong answer under churn ({kind} {semantics:?} k={})",
                query.k
            );
            *checked += 1;
        }
        pending.clear();
    };

    for event in stream {
        match event {
            ChurnEvent::Query(route) => {
                let k = 1 + query_counter % 4;
                query_counter += 1;
                pending.push(RknntQuery {
                    route,
                    k,
                    semantics,
                });
                if pending.len() == 4 {
                    flush(
                        &service,
                        &mut pending,
                        &shadow_routes,
                        &shadow_transitions,
                        &mut checked,
                    );
                }
            }
            update_event => {
                // Updates see a consistent view: flush queued queries first.
                flush(
                    &service,
                    &mut pending,
                    &shadow_routes,
                    &shadow_transitions,
                    &mut checked,
                );
                let update = match update_event {
                    ChurnEvent::InsertTransition(origin, destination) => {
                        StoreUpdate::InsertTransition {
                            origin,
                            destination,
                        }
                    }
                    ChurnEvent::ExpireTransition(draw) => {
                        if live_transitions.is_empty() {
                            continue;
                        }
                        let victim = draw as usize % live_transitions.len();
                        StoreUpdate::ExpireTransition(live_transitions.swap_remove(victim))
                    }
                    ChurnEvent::InsertRoute(points) => StoreUpdate::InsertRoute(points),
                    ChurnEvent::RemoveRoute(draw) => {
                        if live_routes.len() <= 4 {
                            continue; // keep the world non-trivial
                        }
                        let victim = draw as usize % live_routes.len();
                        StoreUpdate::RemoveRoute(live_routes.swap_remove(victim))
                    }
                    ChurnEvent::Query(_) => unreachable!(),
                };
                // Mirror into the shadow stores and check the id assignment
                // agrees, then apply through the service.
                match &update {
                    StoreUpdate::InsertTransition {
                        origin,
                        destination,
                    } => {
                        let shadow_id = shadow_transitions.insert(*origin, *destination);
                        let stats = service.apply_updates(vec![update.clone()]);
                        assert_eq!(
                            stats.inserted_transitions,
                            shadow_id.into_iter().collect::<Vec<_>>()
                        );
                        live_transitions.extend(stats.inserted_transitions);
                    }
                    StoreUpdate::ExpireTransition(id) => {
                        assert!(shadow_transitions.remove(*id));
                        let stats = service.apply_updates(vec![update.clone()]);
                        assert_eq!(stats.applied, 1);
                    }
                    StoreUpdate::InsertRoute(points) => {
                        let shadow_id = shadow_routes.insert_route(points.clone());
                        let stats = service.apply_updates(vec![update.clone()]);
                        assert_eq!(
                            stats.inserted_routes,
                            shadow_id.into_iter().collect::<Vec<_>>()
                        );
                        live_routes.extend(stats.inserted_routes);
                    }
                    StoreUpdate::RemoveRoute(id) => {
                        assert!(shadow_routes.remove_route(*id));
                        let stats = service.apply_updates(vec![update.clone()]);
                        assert_eq!(stats.applied, 1);
                        assert_eq!(
                            stats.full_drops + stats.targeted_route_removals,
                            1,
                            "every applied removal is either targeted or a full drop"
                        );
                    }
                }
            }
        }
    }
    flush(
        &service,
        &mut pending,
        &shadow_routes,
        &shadow_transitions,
        &mut checked,
    );
    assert!(checked > 40, "stream must actually exercise queries");
    assert!(
        service.cache_stats().hits > 0,
        "the pool cycles queries; some must be served from a cache that \
         survived updates"
    );
}

#[test]
fn churned_service_matches_fresh_state_filter_refine() {
    run_churn(EngineKind::FilterRefine, Semantics::Exists, 11);
    run_churn(EngineKind::FilterRefine, Semantics::ForAll, 12);
}

#[test]
fn churned_service_matches_fresh_state_voronoi() {
    run_churn(EngineKind::Voronoi, Semantics::Exists, 13);
    run_churn(EngineKind::Voronoi, Semantics::ForAll, 14);
}

#[test]
fn churned_service_matches_fresh_state_divide_conquer() {
    run_churn(EngineKind::DivideConquer, Semantics::Exists, 15);
    run_churn(EngineKind::DivideConquer, Semantics::ForAll, 16);
}

#[test]
fn churned_service_matches_fresh_state_brute_force() {
    run_churn(EngineKind::BruteForce, Semantics::Exists, 17);
    run_churn(EngineKind::BruteForce, Semantics::ForAll, 18);
}

/// A hand-built world where each update kind's retention rule is observable:
/// far-away churn keeps the cached entry warm, nearby churn evicts it, and
/// route removal falls back to the full drop.
#[test]
fn region_scoped_invalidation_retains_unaffected_entries() {
    // A ladder of 8 horizontal routes; the query runs along y = 35.
    let mut routes = RouteStore::default();
    for i in 0..8 {
        let y = i as f64 * 10.0;
        routes
            .insert_route((0..8).map(|j| p(j as f64 * 10.0, y)).collect())
            .unwrap();
    }
    let mut transitions = TransitionStore::default();
    let near = transitions.insert(p(34.0, 36.0), p(36.0, 34.0)).unwrap();
    let far = transitions.insert(p(35.0, 300.0), p(40.0, 300.0)).unwrap();
    let mut service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine)),
    );
    let query = RknntQuery::exists(vec![p(5.0, 35.0), p(35.0, 35.0), p(65.0, 35.0)], 2);

    let check_fresh = |service: &QueryService, label: &str| {
        let fresh = EngineKind::FilterRefine.build(service.routes(), service.transitions());
        assert_eq!(
            service.execute(&query).transitions,
            fresh.execute(&query).transitions,
            "{label}"
        );
    };

    let baseline = service.execute(&query);
    assert!(baseline.contains(near), "near transition must qualify");
    assert!(!baseline.contains(far), "far transition must not qualify");
    let hits = |s: &QueryService| s.cache_stats().hits;
    let h0 = hits(&service);
    assert_eq!(service.execute(&query).transitions, baseline.transitions);
    assert_eq!(hits(&service), h0 + 1, "warm cache must hit");

    // 1. Far transition insert: certified covered -> entry retained.
    let stats = service.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(33.0, 299.0),
        destination: p(37.0, 301.0),
    }]);
    assert_eq!(stats.evicted_entries, 0, "far insert must not evict");
    let h1 = hits(&service);
    assert_eq!(service.execute(&query).transitions, baseline.transitions);
    assert_eq!(hits(&service), h1 + 1, "entry must survive far insert");

    // 2. Near transition insert: evicts, and the recomputed answer sees it.
    let stats = service.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(34.5, 35.5),
        destination: p(35.5, 34.5),
    }]);
    assert_eq!(stats.evicted_entries, 1, "near insert must evict");
    let new_id = stats.inserted_transitions[0];
    let after_near = service.execute(&query);
    assert!(after_near.contains(new_id));
    check_fresh(&service, "after near insert");

    // 3. Expiring a transition outside the result retains the entry.
    let h2 = hits(&service);
    let stats = service.apply_updates(vec![StoreUpdate::ExpireTransition(far)]);
    assert_eq!(stats.evicted_entries, 0, "expiry outside the result");
    assert_eq!(service.execute(&query).transitions, after_near.transitions);
    assert!(hits(&service) > h2, "entry must survive unrelated expiry");

    // 4. Expiring a member of the result evicts exactly that entry.
    let stats = service.apply_updates(vec![StoreUpdate::ExpireTransition(near)]);
    assert_eq!(stats.evicted_entries, 1, "expiry inside the result");
    assert!(!service.execute(&query).contains(near));
    check_fresh(&service, "after member expiry");

    // 5. A far-away route insert cannot shrink the result: retained.
    let stats = service.apply_updates(vec![StoreUpdate::InsertRoute(
        (0..4).map(|i| p(300.0 + i as f64 * 10.0, 300.0)).collect(),
    )]);
    assert_eq!(stats.evicted_entries, 0, "far route insert");
    check_fresh(&service, "after far route insert");

    // 6. A route through the result region evicts (conservatively).
    let stats = service.apply_updates(vec![StoreUpdate::InsertRoute(
        (0..8).map(|j| p(j as f64 * 10.0 + 2.0, 35.5)).collect(),
    )]);
    assert!(
        stats.evicted_entries >= 1,
        "route through the result region"
    );
    check_fresh(&service, "after near route insert");

    // 7. Removing the far ladder rung (y = 70): no live endpoint has it
    //    strictly closer than the query, so the targeted scan certifies the
    //    entry and the cache survives what used to be a full drop.
    service.execute(&query); // repopulate
    assert!(service.cache_len() > 0);
    let len_before = service.cache_len();
    let stats = service.apply_updates(vec![StoreUpdate::RemoveRoute(RouteId(7))]);
    assert_eq!(stats.targeted_route_removals, 1, "removal must be targeted");
    assert_eq!(stats.full_drops, 0);
    assert_eq!(stats.evicted_entries, 0, "far rung removal evicts nothing");
    assert_eq!(service.cache_len(), len_before);
    let h3 = hits(&service);
    assert_eq!(
        service.execute(&query).transitions,
        {
            let fresh = EngineKind::FilterRefine.build(service.routes(), service.transitions());
            fresh.execute(&query).transitions
        },
        "after far route removal"
    );
    assert_eq!(hits(&service), h3 + 1, "entry must survive the removal");

    // 8. Removing a rung adjacent to the query dirties the world for real:
    //    correctness is preserved whichever way the scan decides.
    let stats = service.apply_updates(vec![StoreUpdate::RemoveRoute(RouteId(4))]);
    assert_eq!(stats.applied, 1);
    assert_eq!(stats.full_drops + stats.targeted_route_removals, 1);
    check_fresh(&service, "after near route removal");

    // Rejected updates mutate nothing and are counted.
    let before_len = service.transitions().len();
    let stats = service.apply_updates(vec![
        StoreUpdate::InsertTransition {
            origin: p(f64::NAN, 0.0),
            destination: p(1.0, 1.0),
        },
        StoreUpdate::InsertRoute(vec![p(0.0, 0.0)]),
        StoreUpdate::ExpireTransition(TransitionId(9_999)),
        StoreUpdate::RemoveRoute(RouteId(9_999)),
    ]);
    assert_eq!(stats.applied, 0);
    assert_eq!(stats.rejected, 4);
    assert_eq!(service.transitions().len(), before_len);
}
