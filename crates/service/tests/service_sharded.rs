//! Sharding invariants: a [`ShardedService`] — SFC-partitioned shards
//! behind a footprint-pruned router — answers byte-identically to an
//! unsharded [`QueryService`] over the same data, for every shard count,
//! all four engines and both semantics. That covers one-shot batches, the
//! router's shard-skip soundness (a skipped shard provably holds no
//! candidate of the unsharded execution), subscription delta streams under
//! churn, crash recovery from the per-shard WALs, and reshard (split /
//! merge) keeping answers and durability intact.

use proptest::prelude::*;
use rknnt_core::{build_filter_set, prune_transitions, EngineKind, RknntQuery, Semantics};
use rknnt_data::{workload, CityConfig, CityGenerator, TransitionConfig, TransitionGenerator};
use rknnt_geo::Point;
use rknnt_index::{RouteId, RouteStore, TransitionId, TransitionStore};
use rknnt_rtree::RTreeConfig;
use rknnt_service::{
    EnginePolicy, QueryService, ServiceConfig, ShardedConfig, ShardedService, StorageConfig,
    StoreUpdate, SubscriptionId,
};
use std::path::PathBuf;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rknnt-sharded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_storage() -> StorageConfig {
    StorageConfig::default()
        .with_fsync(false)
        .with_segment_bytes(512)
}

/// Raw world: routes and transition endpoint pairs, so both the unsharded
/// stores and the sharded fleet are built from identical inputs (and global
/// ids line up by construction).
fn raw_world(seed: u64, transitions: usize) -> (Vec<Vec<Point>>, Vec<(Point, Point)>) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let pairs = TransitionGenerator::new(TransitionConfig::checkin_like(transitions, seed ^ 0x77))
        .generate(&city);
    (city.routes.clone(), pairs)
}

fn unsharded_stores(
    routes: &[Vec<Point>],
    pairs: &[(Point, Point)],
) -> (RouteStore, TransitionStore) {
    let (store, _) = RouteStore::bulk_build(RTreeConfig::default(), routes.to_vec());
    let transitions = TransitionStore::bulk_build(RTreeConfig::default(), pairs.to_vec());
    (store, transitions)
}

fn mixed_batch(query_routes: &[Vec<Point>]) -> Vec<RknntQuery> {
    let mut batch = Vec::new();
    for (i, route) in query_routes.iter().enumerate() {
        let k = 1 + (i % 3) * 4;
        batch.push(RknntQuery::exists(route.clone(), k));
        batch.push(RknntQuery::for_all(route.clone(), k));
        batch.push(RknntQuery::exists(route.clone(), k)); // coalesce path
    }
    batch.push(RknntQuery::exists(Vec::new(), 3));
    batch.push(RknntQuery::exists(query_routes[0].clone(), 0));
    batch
}

fn raw_results(results: &[rknnt_core::RknntResult]) -> Vec<Vec<u32>> {
    results
        .iter()
        .map(|r| r.transitions.iter().map(|t| t.raw()).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Batch parity
// ---------------------------------------------------------------------------

#[test]
fn sharded_batches_match_unsharded_for_all_engines_and_shard_counts() {
    let (routes, pairs) = raw_world(23, 2_000);
    let city = CityGenerator::new(CityConfig::small(23)).generate();
    let query_routes = workload::rknnt_queries(&city, 6, 4, 1_200.0, 23 ^ 0x3);
    let batch = mixed_batch(&query_routes);
    let (route_store, transition_store) = unsharded_stores(&routes, &pairs);

    for kind in EngineKind::ALL {
        let base = ServiceConfig::default()
            .with_workers(4)
            .with_policy(EnginePolicy::Fixed(kind));
        let unsharded = QueryService::new(route_store.clone(), transition_store.clone(), base);
        let (expected, _) = unsharded.execute_batch(&batch);
        let expected = raw_results(&expected);

        for shards in SHARD_COUNTS {
            let sharded = ShardedService::bulk_build(
                ShardedConfig::default().with_shards(shards).with_base(base),
                routes.clone(),
                pairs.clone(),
            );
            assert_eq!(sharded.shard_count(), shards);
            for pass in 0..2 {
                let (results, stats) = sharded.execute_batch(&batch);
                assert_eq!(
                    raw_results(&results),
                    expected,
                    "engine {kind} shards {shards} pass {pass}"
                );
                assert_eq!(stats.queries, batch.len());
                if pass == 1 {
                    assert_eq!(
                        stats.cache_hits,
                        batch.len(),
                        "second pass must be answered entirely from the router cache"
                    );
                }
            }
            let rs = sharded.router_stats();
            assert!(rs.executions > 0, "fresh routed executions must be counted");
            assert!(
                rs.dispatches <= rs.executions * shards as u64,
                "fan-out can never exceed the shard count"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Router skip soundness
// ---------------------------------------------------------------------------

/// Asserts the router's shard-skip certificate is sound for one world and
/// query: every non-empty shard the router would *not* consult yields zero
/// candidates when pruned with the *unsharded* filter — so skipping it
/// cannot lose a candidate of the unsharded execution — and the routed
/// answer matches a fresh unsharded engine.
fn assert_skips_sound(
    sharded: &ShardedService,
    full_routes: &RouteStore,
    full_transitions: &TransitionStore,
    query: &RknntQuery,
) -> usize {
    let mut skips = 0;
    for kind in EngineKind::ALL {
        let engine = kind.build(full_routes, full_transitions);
        let expected = engine.execute(query).transitions;
        assert_eq!(
            sharded.execute(query).transitions,
            expected,
            "routed answer diverged ({kind}, k={})",
            query.k
        );
        if query.is_degenerate() {
            assert!(sharded.planned_shards(query, kind).is_empty());
            continue;
        }
        let planned = sharded.planned_shards(query, kind);
        let outcome = build_filter_set(full_routes, &query.route, query.k);
        let use_voronoi = matches!(kind, EngineKind::Voronoi);
        for index in 0..sharded.shard_count() {
            let store = sharded.shard_service(index).unwrap().transitions();
            if store.rtree().root().is_none() || planned.contains(&index) {
                continue;
            }
            skips += 1;
            let pruned = prune_transitions(store, &outcome.filter_set, query.k, use_voronoi);
            assert!(
                pruned.candidates.is_empty(),
                "router skipped shard {index} but it holds {} candidate endpoint(s) \
                 of the unsharded execution ({kind}, k={})",
                pruned.candidates.len(),
                query.k
            );
        }
    }
    skips
}

/// Two far-apart clusters: the query and its everywhere-closer competitor
/// routes live in cluster A; cluster B has its own dominating route, so the
/// filter certifies every B-owned shard candidate-free and the router must
/// actually skip shards (not just stay vacuously sound).
#[test]
fn router_skips_certified_shards_and_loses_nothing() {
    let routes = vec![
        // Cluster A around the origin.
        vec![p(0.0, 50.0), p(500.0, 50.0), p(1_000.0, 50.0)],
        vec![p(0.0, -80.0), p(1_000.0, -80.0)],
        // Cluster B far away, with a route sitting right on its transitions.
        vec![p(15_000.0, 0.0), p(15_500.0, 0.0), p(16_000.0, 0.0)],
    ];
    let mut pairs = Vec::new();
    for i in 0..30 {
        let x = (i % 6) as f64 * 150.0;
        let y = (i / 6) as f64 * 60.0 - 120.0;
        pairs.push((p(x, y), p(x + 40.0, y + 20.0))); // cluster A
        pairs.push((p(15_000.0 + x, y * 0.2), p(15_040.0 + x, y * 0.2 + 10.0)));
        // cluster B
    }
    let (full_routes, full_transitions) = unsharded_stores(&routes, &pairs);
    let sharded =
        ShardedService::bulk_build(ShardedConfig::default().with_shards(8), routes, pairs);
    let query = RknntQuery::exists(vec![p(0.0, 0.0), p(400.0, 0.0), p(800.0, 0.0)], 1);
    let skips = assert_skips_sound(&sharded, &full_routes, &full_transitions, &query);
    assert!(
        skips > 0,
        "this world is built so the cluster-B shards are certified skippable"
    );
    assert!(
        sharded.router_stats().shards_pruned > 0,
        "execution must have recorded the skips"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random worlds, every shard count: any shard the router skips holds no
    /// candidate of the unsharded execution, and routed answers match, for
    /// all four engines and both semantics.
    #[test]
    fn skipped_shards_never_hold_candidates(
        raw_routes in prop::collection::vec(
            (-5_000.0f64..5_000.0, -5_000.0f64..5_000.0, -800.0f64..800.0, -800.0f64..800.0, 2u32..5),
            1..7,
        ),
        raw_pairs in prop::collection::vec(
            (-6_000.0f64..6_000.0, -6_000.0f64..6_000.0, -300.0f64..300.0, -300.0f64..300.0),
            0..40,
        ),
        qx in -5_000.0f64..5_000.0,
        qy in -5_000.0f64..5_000.0,
        qstep in -900.0f64..900.0,
        k in 1usize..4,
        shard_draw in 0usize..4,
        semantics_draw in 0u8..2,
    ) {
        let routes: Vec<Vec<Point>> = raw_routes
            .into_iter()
            .map(|(x, y, dx, dy, len)| {
                (0..len)
                    .map(|i| p(x + i as f64 * dx, y + i as f64 * dy))
                    .collect()
            })
            .collect();
        let pairs: Vec<(Point, Point)> = raw_pairs
            .into_iter()
            .map(|(x, y, dx, dy)| (p(x, y), p(x + dx, y + dy)))
            .collect();
        let query = RknntQuery {
            route: (0..3).map(|i| p(qx + i as f64 * qstep, qy - i as f64 * qstep)).collect(),
            k,
            semantics: if semantics_draw == 0 { Semantics::Exists } else { Semantics::ForAll },
        };
        let (full_routes, full_transitions) = unsharded_stores(&routes, &pairs);
        let sharded = ShardedService::bulk_build(
            ShardedConfig::default().with_shards(SHARD_COUNTS[shard_draw]),
            routes,
            pairs,
        );
        assert_skips_sound(&sharded, &full_routes, &full_transitions, &query);
    }
}

// ---------------------------------------------------------------------------
// Churn + subscription delta parity
// ---------------------------------------------------------------------------

/// Drives the same interleaved update/query/subscription stream through an
/// unsharded service and a sharded fleet: applied/rejected bookkeeping,
/// inserted global ids, every query answer, every maintained subscription
/// result and the full delta stream must be byte-identical.
fn run_churn_parity(kind: EngineKind, semantics: Semantics, shards: usize, seed: u64) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let pairs =
        TransitionGenerator::new(TransitionConfig::checkin_like(700, seed ^ 0x77)).generate(&city);
    let (route_store, transition_store) = unsharded_stores(&city.routes, &pairs);
    let base = ServiceConfig::default()
        .with_workers(2)
        .with_policy(EnginePolicy::Fixed(kind));
    let mut unsharded = QueryService::new(route_store.clone(), transition_store.clone(), base);
    let mut sharded = ShardedService::bulk_build(
        ShardedConfig::default().with_shards(shards).with_base(base),
        city.routes.clone(),
        pairs,
    );

    let mut live_transitions = transition_store.transition_ids();
    let mut live_routes = route_store.route_ids();
    let mut live_subs: Vec<SubscriptionId> = Vec::new();

    let stream = workload::subscription_stream(
        &city,
        &workload::SubscriptionStreamConfig::new(90, 0.3, seed ^ 0x5ab5),
    );
    let queries = workload::rknnt_queries(&city, 8, 4, 1_000.0, seed ^ 0x91);
    let mut query_cursor = 0usize;
    let mut delta_batches = 0usize;

    for (step, event) in stream.into_iter().enumerate() {
        match event {
            workload::SubscriptionEvent::Subscribe(route) => {
                let query = RknntQuery {
                    route,
                    k: 1 + step % 3,
                    semantics,
                };
                let a = unsharded.subscribe(query.clone());
                let b = sharded.subscribe(query);
                assert_eq!(a, b, "subscription ids must line up");
                assert_eq!(
                    unsharded.subscription_result(a),
                    sharded.subscription_result(b),
                    "initial subscription result diverged ({kind} {semantics:?} N={shards})"
                );
                // The advisory registration must at least be consistent with
                // the fleet: only indexes of real shards.
                let registered = sharded.subscription_shards(b).unwrap();
                assert!(registered.iter().all(|&i| i < shards));
                live_subs.push(a);
            }
            workload::SubscriptionEvent::Unsubscribe(draw) => {
                if live_subs.is_empty() {
                    continue;
                }
                let victim = live_subs.swap_remove(draw as usize % live_subs.len());
                assert_eq!(unsharded.unsubscribe(victim), sharded.unsubscribe(victim));
            }
            workload::SubscriptionEvent::Update(update_event) => {
                let update = match update_event {
                    workload::ChurnEvent::InsertTransition(origin, destination) => {
                        StoreUpdate::InsertTransition {
                            origin,
                            destination,
                        }
                    }
                    workload::ChurnEvent::ExpireTransition(draw) => {
                        if live_transitions.is_empty() {
                            continue;
                        }
                        let victim = draw as usize % live_transitions.len();
                        StoreUpdate::ExpireTransition(live_transitions.swap_remove(victim))
                    }
                    workload::ChurnEvent::InsertRoute(points) => StoreUpdate::InsertRoute(points),
                    workload::ChurnEvent::RemoveRoute(draw) => {
                        if live_routes.len() <= 4 {
                            continue;
                        }
                        let victim = draw as usize % live_routes.len();
                        StoreUpdate::RemoveRoute(live_routes.swap_remove(victim))
                    }
                    workload::ChurnEvent::Query(_) => unreachable!(),
                };
                let a = unsharded.apply_updates(vec![update.clone()]);
                let b = sharded.apply_updates(vec![update]);
                assert_eq!(a.applied, b.applied, "applied diverged at step {step}");
                assert_eq!(a.rejected, b.rejected, "rejected diverged at step {step}");
                assert_eq!(
                    a.inserted_transitions, b.inserted_transitions,
                    "global transition ids diverged at step {step}"
                );
                assert_eq!(
                    a.inserted_routes, b.inserted_routes,
                    "global route ids diverged at step {step}"
                );
                assert_eq!(
                    a.deltas, b.deltas,
                    "delta stream diverged at step {step} ({kind} {semantics:?} N={shards})"
                );
                if !a.deltas.is_empty() {
                    delta_batches += 1;
                }
                live_transitions.extend(&a.inserted_transitions);
                live_routes.extend(&a.inserted_routes);
            }
        }
        // Interleave one-shot queries so the caches stay exercised.
        if step % 5 == 0 && !queries.is_empty() {
            let query = RknntQuery {
                route: queries[query_cursor % queries.len()].clone(),
                k: 1 + step % 4,
                semantics,
            };
            query_cursor += 1;
            assert_eq!(
                unsharded.execute(&query).transitions,
                sharded.execute(&query).transitions,
                "one-shot answer diverged at step {step} ({kind} {semantics:?} N={shards})"
            );
        }
    }
    // Every surviving subscription ends with the same maintained result.
    for id in &live_subs {
        assert_eq!(
            unsharded.subscription_result(*id),
            sharded.subscription_result(*id),
            "final subscription result diverged ({kind} {semantics:?} N={shards})"
        );
    }
    // Force a guaranteed delta pair: a transition with both endpoints ON a
    // subscribed route qualifies unconditionally (distance 0, so no route
    // is strictly closer), and expiring it must emit a TransitionExpired
    // delta — both streams byte-identical.
    let watched = if let Some(id) = live_subs.first() {
        unsharded.subscription_query(*id).unwrap().route.clone()
    } else {
        let query = RknntQuery {
            route: queries[0].clone(),
            k: 1,
            semantics,
        };
        let a = unsharded.subscribe(query.clone());
        let b = sharded.subscribe(query.clone());
        assert_eq!(a, b);
        query.route
    };
    let update = StoreUpdate::InsertTransition {
        origin: watched[0],
        destination: watched[1],
    };
    let a = unsharded.apply_updates(vec![update.clone()]);
    let b = sharded.apply_updates(vec![update]);
    assert_eq!(a.inserted_transitions, b.inserted_transitions);
    assert_eq!(a.deltas, b.deltas);
    assert!(
        !a.deltas.is_empty(),
        "an on-route insert must dirty the watching subscription"
    );
    delta_batches += 1;
    let expire = StoreUpdate::ExpireTransition(a.inserted_transitions[0]);
    let a = unsharded.apply_updates(vec![expire.clone()]);
    let b = sharded.apply_updates(vec![expire]);
    assert_eq!(a.deltas, b.deltas);
    assert!(
        !a.deltas.is_empty(),
        "expiring a result member must emit a delta"
    );
    assert!(
        delta_batches > 0,
        "the stream must actually emit deltas ({kind} {semantics:?} N={shards})"
    );
}

#[test]
fn churn_and_delta_parity_filter_refine() {
    run_churn_parity(EngineKind::FilterRefine, Semantics::Exists, 4, 211);
    run_churn_parity(EngineKind::FilterRefine, Semantics::ForAll, 8, 212);
}

#[test]
fn churn_and_delta_parity_voronoi() {
    run_churn_parity(EngineKind::Voronoi, Semantics::Exists, 2, 213);
    run_churn_parity(EngineKind::Voronoi, Semantics::ForAll, 4, 214);
}

#[test]
fn churn_and_delta_parity_divide_conquer() {
    run_churn_parity(EngineKind::DivideConquer, Semantics::Exists, 8, 215);
    run_churn_parity(EngineKind::DivideConquer, Semantics::ForAll, 1, 216);
}

#[test]
fn churn_and_delta_parity_brute_force() {
    run_churn_parity(EngineKind::BruteForce, Semantics::Exists, 1, 217);
    run_churn_parity(EngineKind::BruteForce, Semantics::ForAll, 2, 218);
}

// ---------------------------------------------------------------------------
// Crash recovery from the per-shard WALs
// ---------------------------------------------------------------------------

/// Deterministic mixed update stream (splitmix64), including draws that the
/// stores reject — replay must reproduce the rejections exactly.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

fn make_updates(gen: &mut Gen, count: usize, transition_pool: usize) -> Vec<StoreUpdate> {
    let mut updates = Vec::with_capacity(count);
    for i in 0..count {
        let roll = gen.next() % 100;
        if roll < 55 {
            updates.push(StoreUpdate::InsertTransition {
                origin: p(gen.f64(0.0, 12_000.0), gen.f64(0.0, 12_000.0)),
                destination: p(gen.f64(0.0, 12_000.0), gen.f64(0.0, 12_000.0)),
            });
        } else if roll < 80 {
            let id = gen.next() % (transition_pool + i) as u64;
            updates.push(StoreUpdate::ExpireTransition(TransitionId(id as u32)));
        } else if roll < 92 {
            let len = 3 + (gen.next() % 3) as usize;
            let mut points = Vec::with_capacity(len);
            let (mut x, mut y) = (gen.f64(0.0, 11_000.0), gen.f64(0.0, 11_000.0));
            for _ in 0..len {
                points.push(p(x, y));
                x += gen.f64(200.0, 600.0);
                y += gen.f64(-300.0, 300.0);
            }
            updates.push(StoreUpdate::InsertRoute(points));
        } else {
            let id = gen.next() % 40;
            updates.push(StoreUpdate::RemoveRoute(RouteId(id as u32)));
        }
    }
    updates
}

fn assert_fleets_identical(a: &ShardedService, b: &ShardedService, label: &str) {
    assert_eq!(a.shard_count(), b.shard_count(), "{label}: shard count");
    assert_eq!(
        a.routes().export_state(),
        b.routes().export_state(),
        "{label}: planner replica diverged"
    );
    for index in 0..a.shard_count() {
        let sa = a.shard_service(index).unwrap();
        let sb = b.shard_service(index).unwrap();
        assert_eq!(
            sa.routes().export_state(),
            sb.routes().export_state(),
            "{label}: shard {index} route store diverged"
        );
        assert_eq!(
            sa.transitions().export_state(),
            sb.transitions().export_state(),
            "{label}: shard {index} transition store diverged"
        );
    }
}

fn run_sharded_recovery(kind: EngineKind, semantics: Semantics, shards: usize, seed: u64) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let pairs =
        TransitionGenerator::new(TransitionConfig::checkin_like(250, seed ^ 0x33)).generate(&city);
    let base = ServiceConfig::default()
        .with_workers(2)
        .with_policy(EnginePolicy::Fixed(kind));
    let config = ShardedConfig::default().with_shards(shards).with_base(base);

    let mut reference = ShardedService::bulk_build(config, city.routes.clone(), pairs.clone());
    let dir = temp_dir(&format!("rec-{kind}-{semantics:?}-{shards}-{seed}"));
    let mut durable = ShardedService::bulk_build(config, city.routes.clone(), pairs);
    durable.attach_storage(&dir, test_storage()).unwrap();
    assert!(durable.has_storage());

    let mut gen = Gen(seed ^ 0xD15C);
    let phase1 = make_updates(&mut gen, 25, 250);
    let phase2 = make_updates(&mut gen, 25, 300);
    let phase3 = make_updates(&mut gen, 15, 350);

    let ref1 = reference.apply_updates(phase1.clone());
    let dur1 = durable.apply_updates(phase1.clone());
    assert_eq!(ref1.applied, dur1.applied);
    assert_eq!(ref1.rejected, dur1.rejected);
    assert_eq!(
        dur1.wal_appends,
        phase1.len(),
        "the router logs every submitted update in global form"
    );
    durable.checkpoint().unwrap();

    // Standing queries on the reference across the crash window.
    let standing: Vec<RknntQuery> = workload::rknnt_queries(&city, 4, 4, 800.0, seed ^ 0x5b)
        .into_iter()
        .map(|route| RknntQuery {
            route,
            k: 2,
            semantics,
        })
        .collect();
    let ref_subs: Vec<SubscriptionId> = standing
        .iter()
        .map(|q| reference.subscribe(q.clone()))
        .collect();

    // Phase 2 in small batches, then crash (drop): shard WALs and the
    // router WAL both carry the tail.
    for chunk in phase2.chunks(4) {
        reference.apply_updates(chunk.to_vec());
        durable.apply_updates(chunk.to_vec());
    }
    drop(durable);

    let (mut recovered, _) = ShardedService::open(&dir, config, test_storage()).unwrap();
    assert!(recovered.has_storage());
    assert_eq!(recovered.shard_count(), shards, "shard count from disk");
    assert_fleets_identical(&recovered, &reference, "after recovery");

    // Probe answers byte-identical.
    let probes: Vec<RknntQuery> = workload::rknnt_queries(&city, 6, 5, 700.0, seed ^ 0x77)
        .into_iter()
        .enumerate()
        .map(|(i, route)| RknntQuery {
            route,
            k: 1 + i % 3,
            semantics,
        })
        .collect();
    let (ref_answers, _) = reference.execute_batch(&probes);
    let (rec_answers, _) = recovered.execute_batch(&probes);
    assert_eq!(
        raw_results(&ref_answers),
        raw_results(&rec_answers),
        "recovered fleet answers diverged ({kind} {semantics:?} N={shards})"
    );

    // Re-register the standing queries; results and the continuing delta
    // stream must match the never-crashed fleet.
    let rec_subs: Vec<SubscriptionId> = standing
        .iter()
        .map(|q| recovered.subscribe(q.clone()))
        .collect();
    for (a, b) in ref_subs.iter().zip(&rec_subs) {
        assert_eq!(
            reference.subscription_result(*a),
            recovered.subscription_result(*b)
        );
    }
    let mut ref3 = reference.apply_updates(phase3.clone());
    let rec3 = recovered.apply_updates(phase3);
    assert_eq!(ref3.applied, rec3.applied);
    assert_eq!(ref3.rejected, rec3.rejected);
    assert_eq!(ref3.inserted_transitions, rec3.inserted_transitions);
    assert_eq!(ref3.inserted_routes, rec3.inserted_routes);
    // The reference buffered phase-2 deltas (it had subscriptions then);
    // compare only the non-empty deltas of the shared phase-3 window.
    ref3.deltas
        .retain(|d| !d.entered.is_empty() || !d.left.is_empty());
    let rec_deltas: Vec<_> = rec3
        .deltas
        .iter()
        .filter(|d| !d.entered.is_empty() || !d.left.is_empty())
        .cloned()
        .collect();
    assert_eq!(
        ref3.deltas, rec_deltas,
        "post-recovery delta stream diverged ({kind} {semantics:?} N={shards})"
    );
    assert_fleets_identical(&recovered, &reference, "after the stream continued");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_recovery_is_deterministic_for_every_engine_and_semantics() {
    for (i, kind) in EngineKind::ALL.into_iter().enumerate() {
        for (j, semantics) in [Semantics::Exists, Semantics::ForAll]
            .into_iter()
            .enumerate()
        {
            let combo = i * 2 + j;
            run_sharded_recovery(kind, semantics, SHARD_COUNTS[combo % 4], 61 + combo as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Layout guards
// ---------------------------------------------------------------------------

#[test]
fn layout_guards_route_each_side_to_the_right_open() {
    // A sharded layout refuses a flat attach / open, naming the recovery
    // path; a flat layout refuses a sharded attach.
    let (routes, pairs) = raw_world(77, 120);
    let config = ShardedConfig::default().with_shards(3);
    let dir = temp_dir("layout");
    let mut fleet = ShardedService::bulk_build(config, routes.clone(), pairs.clone());
    fleet.attach_storage(&dir, test_storage()).unwrap();
    fleet.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(1.0, 2.0),
        destination: p(3.0, 4.0),
    }]);
    drop(fleet);

    // Flat service: both attach and open must refuse the sharded root.
    let base = ServiceConfig::default().with_workers(1);
    let mut flat = QueryService::new(Default::default(), Default::default(), base);
    let err = flat.attach_storage(&dir, test_storage()).unwrap_err();
    assert!(
        matches!(
            err,
            rknnt_service::StorageError::ShardedLayout { shards: 3, .. }
        ),
        "got {err}"
    );
    let err = match QueryService::open(&dir, base, test_storage()) {
        Err(err) => err,
        Ok(_) => panic!("flat open must refuse a sharded layout"),
    };
    assert!(
        matches!(err, rknnt_service::StorageError::ShardedLayout { .. }),
        "got {err}"
    );

    // A second fleet must refuse to attach over the live layout too.
    let mut other = ShardedService::bulk_build(config, routes, pairs);
    let err = other.attach_storage(&dir, test_storage()).unwrap_err();
    assert!(
        matches!(err, rknnt_service::StorageError::ShardedLayout { .. }),
        "got {err}"
    );
    assert!(matches!(
        other.checkpoint().unwrap_err(),
        rknnt_service::StorageError::NotAttached
    ));

    // And the sharded open on a *flat* layout is refused the same way the
    // flat attach on a sharded one is.
    let flat_dir = temp_dir("layout-flat");
    let (mut flat, _) = QueryService::open(&flat_dir, base, test_storage()).unwrap();
    flat.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(0.0, 0.0),
        destination: p(1.0, 1.0),
    }]);
    drop(flat);
    let err = other.attach_storage(&flat_dir, test_storage()).unwrap_err();
    assert!(
        matches!(err, rknnt_service::StorageError::DirectoryNotEmpty { .. }),
        "got {err}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&flat_dir).unwrap();
}

#[test]
fn open_on_a_fresh_directory_starts_an_empty_durable_fleet() {
    let dir = temp_dir("fresh");
    let config = ShardedConfig::default().with_shards(2);
    let (mut fleet, _) = ShardedService::open(&dir, config, test_storage()).unwrap();
    assert!(fleet.has_storage());
    assert_eq!(fleet.num_transitions(), 0);
    let stats = fleet.apply_updates(vec![
        StoreUpdate::InsertRoute(vec![p(0.0, 0.0), p(100.0, 0.0)]),
        StoreUpdate::InsertTransition {
            origin: p(10.0, 5.0),
            destination: p(90.0, 5.0),
        },
    ]);
    assert_eq!(stats.applied, 2);
    drop(fleet);
    let (fleet, _) = ShardedService::open(&dir, config, test_storage()).unwrap();
    assert_eq!(fleet.routes().num_routes(), 1);
    assert_eq!(fleet.num_transitions(), 1);
    let query = RknntQuery::exists(vec![p(0.0, 10.0), p(100.0, 10.0)], 1);
    assert_eq!(fleet.execute(&query).transitions, vec![TransitionId(0)]);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Reshard (split / merge)
// ---------------------------------------------------------------------------

#[test]
fn reshard_preserves_answers_subscriptions_and_durability() {
    let (routes, pairs) = raw_world(131, 900);
    let city = CityGenerator::new(CityConfig::small(131)).generate();
    let (route_store, transition_store) = unsharded_stores(&routes, &pairs);
    let base = ServiceConfig::default().with_workers(2);
    let mut unsharded = QueryService::new(route_store, transition_store, base);
    let dir = temp_dir("reshard");
    let mut fleet = ShardedService::bulk_build(
        ShardedConfig::default().with_shards(2).with_base(base),
        routes,
        pairs,
    );
    fleet.attach_storage(&dir, test_storage()).unwrap();

    // Churn a little so both live and dead global ids exist, and register a
    // standing query on both sides.
    let mut gen = Gen(0xE5);
    let updates = make_updates(&mut gen, 30, 900);
    unsharded.apply_updates(updates.clone());
    fleet.apply_updates(updates);
    let standing = RknntQuery::exists(
        workload::rknnt_queries(&city, 1, 4, 900.0, 131 ^ 0x5b)[0].clone(),
        2,
    );
    let sub_a = unsharded.subscribe(standing.clone());
    let sub_b = fleet.subscribe(standing);

    let probes: Vec<RknntQuery> = workload::rknnt_queries(&city, 6, 4, 800.0, 131 ^ 0x77)
        .into_iter()
        .enumerate()
        .map(|(i, route)| RknntQuery {
            route,
            k: 1 + i % 3,
            semantics: if i % 2 == 0 {
                Semantics::Exists
            } else {
                Semantics::ForAll
            },
        })
        .collect();
    let (expected, _) = unsharded.execute_batch(&probes);
    let expected = raw_results(&expected);

    // Split 2 -> 8, then merge 8 -> 3: ids, answers and the subscription
    // survive both, and the re-partitioned fleet keeps every item findable.
    for (shards, bits) in [(8usize, 7u32), (3, 5)] {
        fleet.reshard(shards, bits).unwrap();
        assert_eq!(fleet.shard_count(), shards);
        assert_eq!(fleet.config().grid_bits, bits);
        let (got, _) = fleet.execute_batch(&probes);
        assert_eq!(
            raw_results(&got),
            expected,
            "answers changed across reshard to N={shards}"
        );
        assert_eq!(
            fleet.subscription_result(sub_b),
            unsharded.subscription_result(sub_a),
            "subscription result changed across reshard to N={shards}"
        );
        // Every live directory entry resolves in its new shard.
        let total: usize = (0..shards)
            .map(|i| fleet.shard_service(i).unwrap().transitions().len())
            .sum();
        assert_eq!(total, fleet.num_transitions());
    }

    // The reshard rewrote the storage layout in place: a reopen recovers the
    // new topology with identical contents.
    let config_at_drop = *fleet.config();
    // Keep churning after the reshard so the reopened fleet replays a tail
    // written by the *new* topology.
    let tail = make_updates(&mut gen, 10, 950);
    unsharded.apply_updates(tail.clone());
    fleet.apply_updates(tail);
    let (expected_after, _) = unsharded.execute_batch(&probes);
    drop(fleet);
    let (reopened, _) = ShardedService::open(&dir, config_at_drop, test_storage()).unwrap();
    assert_eq!(reopened.shard_count(), 3);
    let (got, _) = reopened.execute_batch(&probes);
    assert_eq!(
        raw_results(&got),
        raw_results(&expected_after),
        "reopened resharded fleet diverged"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
