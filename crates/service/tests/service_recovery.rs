//! Crash-recovery determinism: a service recovered mid-stream — latest
//! snapshot plus partial WAL replay — must answer byte-identically to a
//! service that never crashed, for all four engines and both semantics.
//! That covers one-shot query answers, store contents (full logical state),
//! re-registered subscription results, and the deltas both services emit
//! when the update stream continues after recovery.
//!
//! Also property-tests the `StoreUpdate` WAL record codec end to end:
//! arbitrary update sequences written through a real storage directory come
//! back identical.

use proptest::prelude::*;
use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_data::{workload, CityConfig, CityGenerator, TransitionConfig, TransitionGenerator};
use rknnt_geo::Point;
use rknnt_index::{RouteId, TransitionId};
use rknnt_service::{
    EnginePolicy, QueryService, ServiceConfig, StorageConfig, StoreUpdate, SubscriptionId,
};
use std::path::PathBuf;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rknnt-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Storage tuned for tests: no fsync (durability against power loss is not
/// what these tests measure) and small segments so replay crosses segment
/// boundaries.
fn test_storage() -> StorageConfig {
    StorageConfig::default()
        .with_fsync(false)
        .with_segment_bytes(512)
}

/// Tiny deterministic generator for update streams (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

/// A deterministic mixed update stream. Expiry and removal targets are
/// drawn over a widening id range, so some updates are rejected at the
/// store boundary — replay must reproduce those rejections exactly.
fn make_updates(
    gen: &mut Gen,
    count: usize,
    transition_pool: usize,
    route_pool: usize,
) -> Vec<StoreUpdate> {
    let mut updates = Vec::with_capacity(count);
    for i in 0..count {
        let roll = gen.next() % 100;
        if roll < 50 {
            updates.push(StoreUpdate::InsertTransition {
                origin: p(gen.f64(0.0, 12_000.0), gen.f64(0.0, 12_000.0)),
                destination: p(gen.f64(0.0, 12_000.0), gen.f64(0.0, 12_000.0)),
            });
        } else if roll < 75 {
            let id = gen.next() % (transition_pool + i) as u64;
            updates.push(StoreUpdate::ExpireTransition(TransitionId(id as u32)));
        } else if roll < 90 {
            let len = 3 + (gen.next() % 3) as usize;
            let mut points = Vec::with_capacity(len);
            let (mut x, mut y) = (gen.f64(0.0, 11_000.0), gen.f64(0.0, 11_000.0));
            for _ in 0..len {
                points.push(p(x, y));
                x += gen.f64(200.0, 600.0);
                y += gen.f64(-300.0, 300.0);
            }
            updates.push(StoreUpdate::InsertRoute(points));
        } else {
            let id = gen.next() % (route_pool + i / 4 + 1) as u64;
            updates.push(StoreUpdate::RemoveRoute(RouteId(id as u32)));
        }
    }
    updates
}

fn subscription_results(service: &QueryService, ids: &[SubscriptionId]) -> Vec<Vec<TransitionId>> {
    ids.iter()
        .map(|id| service.subscription_result(*id).unwrap().to_vec())
        .collect()
}

/// The full scenario for one engine × semantics: reference service A never
/// crashes; durable service B checkpoints after phase 1, crashes (drops)
/// after phase 2; C recovers from disk and must match A exactly, including
/// when the stream continues.
fn run_recovery(kind: EngineKind, semantics: Semantics, seed: u64) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let routes = city.route_store();
    let transitions = TransitionGenerator::new(TransitionConfig::checkin_like(300, seed ^ 0x33))
        .generate_store(&city);
    let config = ServiceConfig::default()
        .with_workers(2)
        .with_policy(EnginePolicy::Fixed(kind));
    let initial_routes = routes.num_routes();

    let mut reference = QueryService::new(routes.clone(), transitions.clone(), config);
    let dir = temp_dir(&format!("{kind}-{semantics:?}-{seed}"));
    let mut durable = QueryService::new(routes, transitions, config);
    durable.attach_storage(&dir, test_storage()).unwrap();
    assert!(durable.has_storage());

    let mut gen = Gen(seed ^ 0xD15C);
    let phase1 = make_updates(&mut gen, 30, 300, initial_routes);
    let phase2 = make_updates(&mut gen, 30, 360, initial_routes + 8);
    let phase3 = make_updates(&mut gen, 20, 420, initial_routes + 16);

    // Phase 1 → checkpoint: the snapshot holds post-phase-1 state.
    let ref1 = reference.apply_updates(phase1.clone());
    let dur1 = durable.apply_updates(phase1.clone());
    assert_eq!(ref1.applied, dur1.applied);
    assert_eq!(ref1.rejected, dur1.rejected);
    assert_eq!(
        dur1.wal_appends,
        phase1.len(),
        "every submitted update is logged"
    );
    assert!(dur1.wal_bytes > 0);
    assert_eq!(ref1.wal_appends, 0, "no storage, no logging");
    durable.checkpoint().unwrap();

    // Standing queries registered on the reference before the crash window.
    let standing: Vec<RknntQuery> = workload::rknnt_queries(&city, 4, 4, 800.0, seed ^ 0x5b)
        .into_iter()
        .map(|route| RknntQuery {
            route,
            k: 2,
            semantics,
        })
        .collect();
    let ref_subs: Vec<SubscriptionId> = standing
        .iter()
        .map(|q| reference.subscribe(q.clone()))
        .collect();

    // Phase 2 → crash: logged but never checkpointed. Applied in small
    // batches so the tiny test segments rotate and replay crosses segment
    // boundaries.
    for chunk in phase2.chunks(5) {
        reference.apply_updates(chunk.to_vec());
        durable.apply_updates(chunk.to_vec());
    }
    drop(durable); // the crash: in-memory state gone, disk state stays

    // Recovery: snapshot + WAL tail replayed through the normal path.
    let (mut recovered, stats) = QueryService::open(&dir, config, test_storage()).unwrap();
    assert_eq!(
        stats.replayed_records as usize,
        phase2.len(),
        "the tail is exactly the records after the checkpoint"
    );
    assert!(!stats.torn_tail);
    assert!(stats.segments > 1, "tiny segments must have rotated");

    // Store contents: the full logical state must match the uninterrupted
    // service, dead slots and all.
    assert_eq!(
        recovered.routes().export_state(),
        reference.routes().export_state(),
        "recovered route store diverged ({kind} {semantics:?})"
    );
    assert_eq!(
        recovered.transitions().export_state(),
        reference.transitions().export_state(),
        "recovered transition store diverged ({kind} {semantics:?})"
    );

    // Query answers: byte-identical across a probe batch.
    let probes: Vec<RknntQuery> = workload::rknnt_queries(&city, 6, 5, 700.0, seed ^ 0x77)
        .into_iter()
        .enumerate()
        .map(|(i, route)| RknntQuery {
            route,
            k: 1 + i % 3,
            semantics,
        })
        .collect();
    let (ref_answers, _) = reference.execute_batch(&probes);
    let (rec_answers, _) = recovered.execute_batch(&probes);
    for (a, b) in ref_answers.iter().zip(&rec_answers) {
        assert_eq!(
            a.transitions, b.transitions,
            "recovered answer diverged ({kind} {semantics:?})"
        );
    }

    // Subscriptions: re-registering the standing queries on the recovered
    // service reproduces the live results the reference maintained.
    let rec_subs: Vec<SubscriptionId> = standing
        .iter()
        .map(|q| recovered.subscribe(q.clone()))
        .collect();
    assert_eq!(
        subscription_results(&recovered, &rec_subs),
        subscription_results(&reference, &ref_subs),
        "recovered subscription results diverged ({kind} {semantics:?})"
    );

    // The stream continues on both: applied/rejected bookkeeping, emitted
    // deltas and maintained results must stay identical.
    let mut ref3 = reference.apply_updates(phase3.clone());
    let rec3 = recovered.apply_updates(phase3);
    assert_eq!(ref3.applied, rec3.applied);
    assert_eq!(ref3.rejected, rec3.rejected);
    assert_eq!(ref3.inserted_transitions, rec3.inserted_transitions);
    assert_eq!(ref3.inserted_routes, rec3.inserted_routes);
    // The reference buffered deltas from phase 2 (it had live subscriptions
    // then); drop those — the comparable window starts at phase 3, where
    // both services carry the same subscriptions.
    ref3.deltas
        .retain(|d| !d.entered.is_empty() || !d.left.is_empty());
    let rec_deltas: Vec<_> = rec3
        .deltas
        .iter()
        .filter(|d| !d.entered.is_empty() || !d.left.is_empty())
        .cloned()
        .collect();
    assert_eq!(
        ref3.deltas, rec_deltas,
        "replayed deltas diverged ({kind} {semantics:?})"
    );
    assert_eq!(
        subscription_results(&recovered, &rec_subs),
        subscription_results(&reference, &ref_subs),
        "post-recovery maintained results diverged ({kind} {semantics:?})"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_is_deterministic_for_every_engine_and_semantics() {
    for (i, kind) in EngineKind::ALL.into_iter().enumerate() {
        for (j, semantics) in [Semantics::Exists, Semantics::ForAll]
            .into_iter()
            .enumerate()
        {
            run_recovery(kind, semantics, 41 + (i * 2 + j) as u64);
        }
    }
}

#[test]
fn torn_tail_recovers_to_the_last_committed_update() {
    // Crash mid-append: the final WAL frame is incomplete. Recovery must
    // drop exactly that update and match a reference that never saw it.
    let city = CityGenerator::new(CityConfig::small(9)).generate();
    let routes = city.route_store();
    let transitions =
        TransitionGenerator::new(TransitionConfig::checkin_like(200, 5)).generate_store(&city);
    let config = ServiceConfig::default()
        .with_workers(1)
        .with_policy(EnginePolicy::Fixed(EngineKind::Voronoi));

    let dir = temp_dir("torn");
    let mut durable = QueryService::new(routes.clone(), transitions.clone(), config);
    // Large segments: everything lands in one file whose tail we can tear.
    durable
        .attach_storage(&dir, StorageConfig::default().with_fsync(false))
        .unwrap();
    let mut gen = Gen(0xBEEF);
    let updates = make_updates(&mut gen, 12, 200, routes.num_routes());
    durable.apply_updates(updates.clone());
    drop(durable);

    // Tear the last frame: chop a couple of bytes off the single segment.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .expect("one WAL segment")
        .path();
    let bytes = std::fs::read(&segment).unwrap();
    std::fs::write(&segment, &bytes[..bytes.len() - 2]).unwrap();

    let (recovered, stats) = QueryService::open(&dir, config, test_storage()).unwrap();
    assert!(stats.torn_tail, "the torn frame must be reported");
    assert_eq!(stats.replayed_records as usize, updates.len() - 1);

    let mut reference = QueryService::new(routes, transitions, config);
    reference.apply_updates(updates[..updates.len() - 1].to_vec());
    assert_eq!(
        recovered.routes().export_state(),
        reference.routes().export_state()
    );
    assert_eq!(
        recovered.transitions().export_state(),
        reference.transitions().export_state()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_on_a_fresh_directory_starts_empty_and_durable() {
    let dir = temp_dir("fresh");
    let config = ServiceConfig::default().with_workers(1);
    let (mut service, stats) = QueryService::open(&dir, config, test_storage()).unwrap();
    assert_eq!(stats.replayed_records, 0);
    assert!(service.routes().is_empty());
    assert!(service.transitions().is_empty());
    // It logs from the first update on.
    let stats = service.apply_updates(vec![StoreUpdate::InsertRoute(vec![
        p(0.0, 0.0),
        p(100.0, 0.0),
    ])]);
    assert_eq!(stats.wal_appends, 1);
    drop(service);
    let (service, stats) = QueryService::open(&dir, config, test_storage()).unwrap();
    assert_eq!(stats.replayed_records, 1);
    assert_eq!(service.routes().num_routes(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn attach_refuses_a_directory_with_existing_state() {
    let dir = temp_dir("attach-occupied");
    let config = ServiceConfig::default().with_workers(1);
    let (mut service, _) = QueryService::open(&dir, config, test_storage()).unwrap();
    service.apply_updates(vec![StoreUpdate::InsertTransition {
        origin: p(0.0, 0.0),
        destination: p(1.0, 1.0),
    }]);
    drop(service);
    let mut other = QueryService::new(Default::default(), Default::default(), config);
    let err = other.attach_storage(&dir, test_storage()).unwrap_err();
    assert!(
        matches!(err, rknnt_service::StorageError::DirectoryNotEmpty { .. }),
        "got {err}"
    );
    // And checkpoint without storage is the typed NotAttached error.
    assert!(matches!(
        other.checkpoint().unwrap_err(),
        rknnt_service::StorageError::NotAttached
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// StoreUpdate WAL codec properties
// ---------------------------------------------------------------------------

/// Raw draw for one arbitrary update (tag + coordinates + id material).
type RawUpdate = (u8, f64, f64, f64, f64, u64);

fn to_update((tag, a, b, c, d, id): RawUpdate) -> StoreUpdate {
    match tag % 4 {
        0 => StoreUpdate::InsertTransition {
            origin: p(a, b),
            destination: p(c, d),
        },
        1 => StoreUpdate::ExpireTransition(TransitionId(id as u32)),
        2 => {
            let len = 2 + (id % 5) as usize;
            StoreUpdate::InsertRoute(
                (0..len)
                    .map(|i| p(a + i as f64 * c.abs().max(1.0), b + i as f64 * d))
                    .collect(),
            )
        }
        _ => StoreUpdate::RemoveRoute(RouteId(id as u32)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_update_sequences_roundtrip_through_a_real_wal(
        raw in prop::collection::vec(
            (0u8..8, -1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6, 0u64..u64::MAX),
            1..24,
        ),
        case in 0u64..u64::MAX,
    ) {
        let updates: Vec<StoreUpdate> = raw.into_iter().map(to_update).collect();
        // In-memory codec identity.
        for update in &updates {
            let record = update.to_wal_record();
            prop_assert_eq!(&StoreUpdate::from_wal_record(&record).unwrap(), update);
        }
        // Through an actual storage directory, batched arbitrarily.
        let dir = std::env::temp_dir().join(format!(
            "rknnt-walcodec-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut storage, _) = rknnt_storage::Storage::open(
            &dir,
            rknnt_storage::StorageConfig::default().with_fsync(false).with_segment_bytes(256),
        ).unwrap();
        let records: Vec<Vec<u8>> = updates.iter().map(StoreUpdate::to_wal_record).collect();
        for chunk in records.chunks(5) {
            storage.append(chunk).unwrap();
        }
        drop(storage);
        let (_, recovery) = rknnt_storage::Storage::open(
            &dir,
            rknnt_storage::StorageConfig::default().with_fsync(false),
        ).unwrap();
        let back: Vec<StoreUpdate> = recovery
            .tail
            .iter()
            .map(|r| StoreUpdate::from_wal_record(r).unwrap())
            .collect();
        prop_assert_eq!(back, updates);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
