//! Property test: after any random batch of store updates, the
//! [`UpdateStats`] counters must be mutually consistent with the observable
//! cache and subscription state — counters are load-bearing for the bench
//! gate and the monitoring experiments, so they may never drift from what
//! the service actually did.

use proptest::prelude::*;
use rknnt_core::{EngineKind, RknntQuery, Semantics};
use rknnt_geo::Point;
use rknnt_index::{RouteId, TransitionId};
use rknnt_service::{
    EnginePolicy, QueryService, ServiceConfig, StoreUpdate, SubscriptionId, UpdateStats,
};
use std::collections::BTreeMap;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// One raw update draw: an op selector plus coordinates / id draws, turned
/// into a concrete [`StoreUpdate`] against the live-id lists at apply time.
type RawUpdate = (u8, f64, f64, f64, f64, u64);

fn raw_updates(max: usize) -> impl Strategy<Value = Vec<RawUpdate>> {
    prop::collection::vec(
        (
            0u8..6,
            -40.0f64..120.0,
            -40.0f64..120.0,
            -40.0f64..120.0,
            -40.0f64..120.0,
            0u64..u64::MAX,
        ),
        1..max,
    )
}

/// Builds a small ladder world with a handful of live subscriptions.
fn build_service() -> (QueryService, Vec<SubscriptionId>) {
    let mut routes = rknnt_index::RouteStore::default();
    for i in 0..8 {
        let y = i as f64 * 10.0;
        routes
            .insert_route((0..8).map(|j| p(j as f64 * 10.0, y)).collect())
            .unwrap();
    }
    let mut transitions = rknnt_index::TransitionStore::default();
    for i in 0..40u32 {
        let ox = (i as f64 * 7.3) % 80.0;
        let oy = (i as f64 * 13.7) % 90.0;
        let dx = (i as f64 * 3.1 + 11.0) % 80.0;
        let dy = (i as f64 * 17.9 + 23.0) % 90.0;
        transitions.insert(p(ox, oy), p(dx, dy)).unwrap();
    }
    let mut service = QueryService::new(
        routes,
        transitions,
        ServiceConfig::default()
            .with_workers(1)
            .with_policy(EnginePolicy::Fixed(EngineKind::FilterRefine)),
    );
    let mut subs = Vec::new();
    for (route, k, semantics) in [
        (
            vec![p(5.0, 35.0), p(35.0, 35.0), p(65.0, 35.0)],
            2,
            Semantics::Exists,
        ),
        (vec![p(5.0, 15.0), p(65.0, 15.0)], 1, Semantics::ForAll),
        (
            vec![p(0.0, 55.0), p(40.0, 55.0), p(70.0, 55.0)],
            3,
            Semantics::Exists,
        ),
        (Vec::new(), 2, Semantics::Exists), // degenerate: permanently empty
    ] {
        subs.push(service.subscribe(RknntQuery {
            route,
            k,
            semantics,
        }));
    }
    (service, subs)
}

/// Resolves a raw draw into a concrete update, biased so every kind occurs:
/// 0/1 insert transitions, 2 expires, 3 inserts a route, 4 removes a route,
/// 5 is an intentionally rejected update (unknown id or bad geometry).
fn resolve(
    raw: &RawUpdate,
    live_transitions: &mut Vec<TransitionId>,
    live_routes: &mut Vec<RouteId>,
) -> StoreUpdate {
    let (op, a, b, c, d, draw) = *raw;
    match op {
        0 | 1 => StoreUpdate::InsertTransition {
            origin: p(a, b),
            destination: p(c, d),
        },
        2 if !live_transitions.is_empty() => {
            let victim = draw as usize % live_transitions.len();
            StoreUpdate::ExpireTransition(live_transitions.swap_remove(victim))
        }
        3 => StoreUpdate::InsertRoute(vec![p(a, b), p(c, d), p(a + 5.0, b + 5.0)]),
        4 if live_routes.len() > 3 => {
            let victim = draw as usize % live_routes.len();
            StoreUpdate::RemoveRoute(live_routes.swap_remove(victim))
        }
        // Rejected at the store boundary: unknown ids / non-finite points.
        _ => {
            if draw % 2 == 0 {
                StoreUpdate::ExpireTransition(TransitionId(u32::MAX - 7))
            } else {
                StoreUpdate::InsertTransition {
                    origin: p(f64::NAN, a),
                    destination: p(c, d),
                }
            }
        }
    }
}

/// Counts how many applied updates were route removals in this batch.
fn count_removals(batch: &[StoreUpdate]) -> usize {
    batch
        .iter()
        .filter(|u| matches!(u, StoreUpdate::RemoveRoute(_)))
        .count()
}

fn check_batch_invariants(
    service: &QueryService,
    stats: &UpdateStats,
    batch_len: usize,
    pre_cache_len: usize,
    pre_results: &BTreeMap<SubscriptionId, Vec<TransitionId>>,
    applied_removals: usize,
) {
    let subs = service.subscriptions();
    // Every update either applied or was rejected.
    assert_eq!(stats.applied + stats.rejected, batch_len);
    assert!(stats.inserted_transitions.len() + stats.inserted_routes.len() <= stats.applied);
    // Cache bookkeeping: apply_updates never inserts, so the pre-call
    // population is exactly split between evicted and retained.
    assert_eq!(stats.retained_entries, service.cache_len());
    assert_eq!(
        pre_cache_len,
        stats.evicted_entries + stats.retained_entries
    );
    // Every applied route removal took exactly one of the two paths.
    assert_eq!(
        stats.full_drops + stats.targeted_route_removals,
        applied_removals
    );
    // Subscription classification: each sub is dirtied at most once and
    // every dirtied sub is re-executed exactly once.
    assert_eq!(stats.subs_dirty, stats.subs_reexecuted);
    assert!(stats.subs_reexecuted <= subs);
    // Each applied update classifies every not-yet-dirty subscription
    // exactly once: at most subs per update, and no fewer than the
    // not-yet-dirty population can account for.
    let classifications = stats.subs_unaffected + stats.subs_stable + stats.subs_dirty;
    assert!(classifications <= stats.applied * subs);
    assert!(
        classifications + stats.applied.saturating_sub(1) * stats.subs_dirty
            >= stats.applied * subs,
        "classifications {} cannot be explained by {} applied updates over \
         {} subs with {} dirty marks",
        classifications,
        stats.applied,
        subs,
        stats.subs_dirty,
    );
    // Deltas: disjoint id sets, known subscriptions, and replaying them
    // over the pre-call snapshots reproduces the post-call results.
    let mut replayed = pre_results.clone();
    for delta in &stats.deltas {
        assert!(delta.entered.iter().all(|t| !delta.left.contains(t)));
        assert!(!delta.entered.is_empty() || !delta.left.is_empty());
        let result = replayed
            .get_mut(&delta.subscription)
            .expect("delta for a live subscription");
        delta.apply(result);
    }
    for (id, result) in &replayed {
        assert_eq!(
            service.subscription_result(*id).unwrap(),
            result.as_slice(),
            "delta replay must reproduce the maintained result"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counters stay consistent over single-update calls and multi-update
    /// batches, and the maintained subscription results always match a
    /// fresh engine over the final stores.
    #[test]
    fn update_stats_are_consistent_with_observable_state(
        raws in raw_updates(24),
        batched in any::<bool>(),
    ) {
        let (mut service, subs) = build_service();
        let mut live_transitions = service.transitions().transition_ids();
        let mut live_routes = service.routes().route_ids();

        // Warm the cache so evictions have something to act on.
        for id in &subs {
            if let Some(query) = service.subscription_query(*id) {
                let query = query.clone();
                let _ = service.execute(&query);
            }
        }

        let snapshot = |service: &QueryService| -> BTreeMap<SubscriptionId, Vec<TransitionId>> {
            subs.iter()
                .map(|id| (*id, service.subscription_result(*id).unwrap().to_vec()))
                .collect()
        };

        let mut pending: Vec<StoreUpdate> = Vec::new();
        for raw in &raws {
            pending.push(resolve(raw, &mut live_transitions, &mut live_routes));
            // Batched mode groups updates 3 at a time; unbatched applies
            // each immediately (exercising per-update counter equality).
            if !batched || pending.len() == 3 {
                let batch = std::mem::take(&mut pending);
                let batch_len = batch.len();
                // Removal draws always come from the live-id list, so every
                // generated removal applies — an independent ground truth
                // for the full_drops/targeted split.
                let removals = count_removals(&batch);
                let pre_cache_len = service.cache_len();
                let pre_results = snapshot(&service);
                let stats = service.apply_updates(batch);
                check_batch_invariants(
                    &service,
                    &stats,
                    batch_len,
                    pre_cache_len,
                    &pre_results,
                    removals,
                );
                live_transitions.extend(stats.inserted_transitions.iter().copied());
                live_routes.extend(stats.inserted_routes.iter().copied());
            }
        }
        if !pending.is_empty() {
            let batch = std::mem::take(&mut pending);
            let batch_len = batch.len();
            let removals = count_removals(&batch);
            let pre_cache_len = service.cache_len();
            let pre_results = snapshot(&service);
            let stats = service.apply_updates(batch);
            check_batch_invariants(
                &service,
                &stats,
                batch_len,
                pre_cache_len,
                &pre_results,
                removals,
            );
        }

        // Final ground truth: every maintained result equals a fresh
        // engine over the final stores.
        let fresh = EngineKind::BruteForce.build(service.routes(), service.transitions());
        for id in &subs {
            let query = service.subscription_query(*id).unwrap();
            prop_assert_eq!(
                service.subscription_result(*id).unwrap(),
                fresh.execute(query).transitions.as_slice()
            );
        }
    }
}
