//! The seeded-hash LRU result cache.
//!
//! Keyed on the *exact* query — route coordinates (bit-compared), `k` and
//! semantics — so a hit returns precisely the result the engines would
//! recompute. The hash function is FNV-1a seeded from the service
//! configuration rather than `std`'s per-process `RandomState`: repeated runs
//! of the same workload then touch the same buckets in the same order, which
//! keeps the throughput experiments reproducible; the seed remains
//! configurable so a deployment can still pick its own.
//!
//! Recency is tracked with an intrusive doubly-linked list over a slot
//! arena, giving O(1) lookup, touch, insert and eviction.

use crate::region::EntryRegion;
use rknnt_core::{RknntQuery, RknntResult, Semantics};
use rknnt_obs::Counter;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

/// A query route as coordinate bit patterns — the exact-identity form shared
/// by the cache key, the coalescing key and the filter-sharing key. Bit
/// comparison (rather than `f64` equality) keeps it `Eq + Hash` and treats
/// `-0.0 != 0.0` / NaNs conservatively — a miss costs a recomputation, never
/// a wrong answer.
pub(crate) fn route_bits(route: &[rknnt_geo::Point]) -> Vec<(u64, u64)> {
    route
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect()
}

/// Exact-match cache key: query route as coordinate bit patterns
/// ([`route_bits`]), `k` and semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    route_bits: Vec<(u64, u64)>,
    k: usize,
    semantics: Semantics,
}

impl CacheKey {
    /// Builds the key for a query.
    pub fn of(query: &RknntQuery) -> Self {
        CacheKey {
            route_bits: route_bits(&query.route),
            k: query.k,
            semantics: query.semantics,
        }
    }
}

/// FNV-1a, with the service's seed folded into the initial state.
pub struct SeededHasher(u64);

impl Hasher for SeededHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// `BuildHasher` producing [`SeededHasher`]s from a fixed seed.
#[derive(Debug, Clone, Copy)]
pub struct SeededState(u64);

impl BuildHasher for SeededState {
    type Hasher = SeededHasher;

    fn build_hasher(&self) -> SeededHasher {
        SeededHasher(0xcbf29ce484222325 ^ self.0)
    }
}

/// Monotonic counters exposed for observability and asserted by the
/// cache tests. A plain-value copy of the cache's [`CacheCounters`] cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Results evicted to respect the capacity bound.
    pub evictions: u64,
    /// Full invalidations (generation bumps).
    pub invalidations: u64,
    /// Entries evicted by region-scoped invalidation
    /// ([`ResultCache::evict_where`]).
    pub targeted_evictions: u64,
    /// Entries dropped by full invalidations (each invalidation adds the
    /// number of entries it cleared).
    pub invalidated_entries: u64,
}

/// The atomic counter cells the cache increments in place of ad-hoc struct
/// fields. The service registers these cells with its metrics registry, so
/// cache activity shows up in every snapshot without extra plumbing; a
/// standalone cache gets unregistered cells.
#[derive(Debug, Clone, Default)]
pub struct CacheCounters {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Results stored.
    pub insertions: Counter,
    /// LRU evictions.
    pub evictions: Counter,
    /// Full invalidations.
    pub invalidations: Counter,
    /// Entries dropped by `evict_where`.
    pub targeted_evictions: Counter,
    /// Entries dropped by full invalidations.
    pub invalidated_entries: Counter,
}

struct Slot {
    key: CacheKey,
    value: RknntResult,
    region: EntryRegion,
    prev: usize,
    next: usize,
}

/// The LRU cache itself. Not internally synchronised — the service wraps it
/// in a `Mutex` (lookups are microseconds against engine executions of
/// milliseconds, so a single lock is not the bottleneck at this scale).
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, usize, SeededState>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    counters: CacheCounters,
}

impl ResultCache {
    /// A cache holding at most `capacity` results. Capacity 0 disables
    /// storage (every lookup misses). Counts into fresh, unregistered cells.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_counters(capacity, seed, CacheCounters::default())
    }

    /// A cache counting into the given (typically registry-owned) cells.
    pub fn with_counters(capacity: usize, seed: u64, counters: CacheCounters) -> Self {
        ResultCache {
            capacity,
            map: HashMap::with_hasher(SeededState(seed)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            counters,
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            insertions: self.counters.insertions.get(),
            evictions: self.counters.evictions.get(),
            invalidations: self.counters.invalidations.get(),
            targeted_evictions: self.counters.targeted_evictions.get(),
            invalidated_entries: self.counters.invalidated_entries.get(),
        }
    }

    /// Looks up a query, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<RknntResult> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.counters.hits.inc();
                self.unlink(slot);
                self.push_front(slot);
                Some(self.slots[slot].value.clone())
            }
            None => {
                self.counters.misses.inc();
                None
            }
        }
    }

    /// Stores a result with its invalidation region, evicting the least
    /// recently used entry when full.
    pub fn insert(&mut self, key: CacheKey, value: RknntResult, region: EntryRegion) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get(&key).copied() {
            // Same query computed twice (e.g. two concurrent batches):
            // refresh the value, region and recency.
            self.slots[slot].value = value;
            self.slots[slot].region = region;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot {
                    key: key.clone(),
                    value,
                    region,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    region,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        self.counters.insertions.inc();
    }

    /// Read-only iteration over the live entries, in no particular order —
    /// used by the update path to *plan* a targeted eviction (and detect
    /// that its work budget ran out) before mutating anything.
    pub fn entries(&self) -> impl Iterator<Item = (&CacheKey, &RknntResult, &EntryRegion)> {
        self.map.values().map(|slot| {
            let s = &self.slots[*slot];
            (&s.key, &s.value, &s.region)
        })
    }

    /// Region-scoped invalidation: drops every entry for which `evict`
    /// returns `true`, leaving the rest (and their recency order) untouched.
    /// Returns the number of entries dropped.
    pub fn evict_where<F>(&mut self, mut evict: F) -> usize
    where
        F: FnMut(&CacheKey, &RknntResult, &EntryRegion) -> bool,
    {
        let victims: Vec<usize> = self
            .map
            .values()
            .copied()
            .filter(|slot| {
                let s = &self.slots[*slot];
                evict(&s.key, &s.value, &s.region)
            })
            .collect();
        for slot in &victims {
            self.unlink(*slot);
            self.map.remove(&self.slots[*slot].key);
            self.free.push(*slot);
        }
        self.counters.targeted_evictions.add(victims.len() as u64);
        victims.len()
    }

    /// Drops every entry (the generation-bump hook).
    pub fn invalidate_all(&mut self) {
        self.counters.invalidated_entries.add(self.map.len() as u64);
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.counters.invalidations.inc();
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        if victim == NIL {
            return;
        }
        self.unlink(victim);
        self.map.remove(&self.slots[victim].key);
        self.free.push(victim);
        self.counters.evictions.inc();
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;
    use rknnt_index::TransitionId;

    fn query(x: f64, k: usize) -> RknntQuery {
        RknntQuery::exists(vec![Point::new(x, 0.0), Point::new(x, 10.0)], k)
    }

    fn region() -> EntryRegion {
        EntryRegion::conservative(&query(0.0, 1))
    }

    fn result(id: u32) -> RknntResult {
        RknntResult {
            transitions: vec![TransitionId(id)],
            ..RknntResult::default()
        }
    }

    #[test]
    fn get_after_insert_roundtrips() {
        let mut cache = ResultCache::new(4, 7);
        let key = CacheKey::of(&query(1.0, 5));
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), result(3), region());
        assert_eq!(cache.get(&key).unwrap().transitions, vec![TransitionId(3)]);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn distinct_k_and_semantics_are_distinct_keys() {
        let mut cache = ResultCache::new(8, 7);
        let exists = query(1.0, 5);
        let mut forall = exists.clone();
        forall.semantics = Semantics::ForAll;
        let k9 = query(1.0, 9);
        cache.insert(CacheKey::of(&exists), result(1), region());
        assert!(cache.get(&CacheKey::of(&forall)).is_none());
        assert!(cache.get(&CacheKey::of(&k9)).is_none());
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = ResultCache::new(2, 7);
        let (a, b, c) = (
            CacheKey::of(&query(1.0, 1)),
            CacheKey::of(&query(2.0, 1)),
            CacheKey::of(&query(3.0, 1)),
        );
        cache.insert(a.clone(), result(1), region());
        cache.insert(b.clone(), result(2), region());
        // Touch `a` so `b` becomes the LRU entry.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), result(3), region());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&b).is_none(), "b was LRU and must be evicted");
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_all_empties_the_cache() {
        let mut cache = ResultCache::new(4, 7);
        for i in 0..4 {
            cache.insert(CacheKey::of(&query(i as f64, 1)), result(i), region());
        }
        assert_eq!(cache.len(), 4);
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert!(cache.get(&CacheKey::of(&query(0.0, 1))).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        // Reusable after invalidation.
        cache.insert(CacheKey::of(&query(9.0, 1)), result(9), region());
        assert!(cache.get(&CacheKey::of(&query(9.0, 1))).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = ResultCache::new(0, 7);
        let key = CacheKey::of(&query(1.0, 1));
        cache.insert(key.clone(), result(1), region());
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn reinserting_a_key_refreshes_value_and_recency() {
        let mut cache = ResultCache::new(2, 7);
        let (a, b) = (CacheKey::of(&query(1.0, 1)), CacheKey::of(&query(2.0, 1)));
        cache.insert(a.clone(), result(1), region());
        cache.insert(b.clone(), result(2), region());
        cache.insert(a.clone(), result(10), region());
        // `a` is now most recent; inserting a third key evicts `b`.
        cache.insert(CacheKey::of(&query(3.0, 1)), result(3), region());
        assert_eq!(cache.get(&a).unwrap().transitions, vec![TransitionId(10)]);
        assert!(cache.get(&b).is_none());
    }

    #[test]
    fn heavy_churn_keeps_list_and_map_consistent() {
        let mut cache = ResultCache::new(8, 42);
        for round in 0..200u32 {
            let key = CacheKey::of(&query((round % 23) as f64, 1));
            if round % 3 == 0 {
                let _ = cache.get(&key);
            }
            cache.insert(key, result(round), region());
            assert!(cache.len() <= 8);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        assert_eq!(stats.insertions - stats.evictions, cache.len() as u64);
    }

    #[test]
    fn capacity_one_insert_then_evict_keeps_list_consistent() {
        // The intrusive list degenerates to head == tail at capacity 1;
        // every insert-then-evict cycle must leave it usable.
        let mut cache = ResultCache::new(1, 7);
        let keys: Vec<CacheKey> = (0..5).map(|i| CacheKey::of(&query(i as f64, 1))).collect();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), result(i as u32), region());
            assert_eq!(cache.len(), 1, "capacity bound after insert {i}");
            // Only the newest key is present, and a hit refreshes it.
            assert_eq!(
                cache.get(key).unwrap().transitions,
                vec![TransitionId(i as u32)]
            );
            for older in &keys[..i] {
                assert!(cache.get(older).is_none(), "older key survived at cap 1");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 5);
        assert_eq!(stats.evictions, 4);
        assert_eq!(stats.insertions - stats.evictions, cache.len() as u64);
        // Re-inserting the live key refreshes rather than evicts.
        cache.insert(keys[4].clone(), result(99), region());
        assert_eq!(cache.stats().evictions, 4);
        assert_eq!(
            cache.get(&keys[4]).unwrap().transitions,
            vec![TransitionId(99)]
        );
        // Invalidate and refill: the arena and free list stay coherent.
        cache.invalidate_all();
        assert!(cache.is_empty());
        cache.insert(keys[0].clone(), result(1), region());
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&keys[0]).is_some());
    }

    #[test]
    fn capacity_zero_never_stores_and_counters_stay_consistent() {
        let mut cache = ResultCache::new(0, 7);
        for i in 0..4u32 {
            let key = CacheKey::of(&query(i as f64, 1));
            assert!(cache.get(&key).is_none());
            cache.insert(key.clone(), result(i), region());
            assert!(cache.get(&key).is_none(), "capacity 0 must not store");
            assert_eq!(cache.len(), 0);
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 8);
        // evict_where and invalidate_all are harmless no-ops.
        assert_eq!(cache.evict_where(|_, _, _| true), 0);
        cache.invalidate_all();
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn evict_where_drops_only_matching_entries() {
        let mut cache = ResultCache::new(8, 7);
        let keys: Vec<CacheKey> = (0..6).map(|i| CacheKey::of(&query(i as f64, 1))).collect();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), result(i as u32), region());
        }
        // Drop entries holding an even transition id.
        let dropped = cache.evict_where(|_, value, _| value.transitions[0].raw() % 2 == 0);
        assert_eq!(dropped, 3);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().targeted_evictions, 3);
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(cache.get(key).is_some(), i % 2 == 1, "key {i}");
        }
        // Freed slots are reusable and the recency list still works.
        for i in 10..16u32 {
            cache.insert(CacheKey::of(&query(i as f64, 1)), result(i), region());
        }
        assert_eq!(cache.len(), 8);
        assert!(cache.stats().evictions > 0, "LRU eviction still functions");
    }
}
