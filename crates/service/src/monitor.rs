//! Continuous RkNNT subscriptions: standing queries kept current across
//! [`QueryService::apply_updates`], with per-batch result deltas.
//!
//! A subscription is a registered [`RknntQuery`] whose result the service
//! maintains as the stores churn, instead of the client re-polling. Each
//! subscription carries the same [`EntryRegion`] evidence a cached result
//! does, and every applied [`StoreUpdate`] classifies each live subscription
//! three ways:
//!
//! * **Unaffected (skip)** — an exact, constant-time test shows the update
//!   cannot touch the result: the query is degenerate, or an expired
//!   transition is not a member. No geometry runs.
//! * **Certified stable (keep)** — the region's `survives_*` certificate
//!   proves the result unchanged (transition/route insert far from the
//!   footprint, route removal outside every endpoint's dominance region), or
//!   the change is *exactly* computable in place: expiring a member only
//!   removes that one id (qualification of other transitions depends only on
//!   routes), so the result and region are updated directly and a delta with
//!   [`DeltaReason::TransitionExpired`] is emitted — no re-execution.
//! * **Dirty (re-execute)** — nothing cheaper is sound. Dirty subscriptions
//!   are collected for the whole update batch and re-executed together
//!   through the same grouped batch machinery as one-shot queries, so
//!   subscriptions sharing a `(route, k)` pair share one filter
//!   construction; the diff against the previous result becomes a delta with
//!   [`DeltaReason::Reexecuted`].
//!
//! Replaying a subscription's deltas, in order, over any earlier snapshot of
//! its result always reproduces the current result — the determinism suite
//! in `tests/service_monitor.rs` asserts this against freshly built
//! post-churn services for all four engines and both semantics.
//!
//! [`QueryService::apply_updates`]: crate::QueryService::apply_updates
//! [`StoreUpdate`]: crate::StoreUpdate

use crate::metrics::ServiceMetrics;
use crate::region::EntryRegion;
use rknnt_core::{RknntQuery, RknntResult};
use rknnt_geo::{Point, Rect};
use rknnt_index::{RouteId, RouteStore, TransitionId, TransitionStore};
use rknnt_obs::EventKind;
use std::collections::BTreeMap;

/// Work budget for one subscription's route-removal certificate
/// ([`EntryRegion::survives_route_remove`]); exhausting it marks the
/// subscription dirty, which is always sound.
pub(crate) const SUB_REMOVAL_BUDGET: usize = 8_192;

/// Opaque handle to a standing query registered with
/// [`QueryService::subscribe`].
///
/// [`QueryService::subscribe`]: crate::QueryService::subscribe
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub(crate) u64);

impl SubscriptionId {
    /// The raw numeric id (stable for the lifetime of the service).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// Why a [`SubscriptionDelta`] was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaReason {
    /// A member transition expired; the result was updated in place without
    /// re-execution (the certified-stable path).
    TransitionExpired,
    /// The subscription was dirtied by one or more updates and re-executed
    /// through the batch path; the delta is the diff against its previous
    /// result.
    Reexecuted,
}

/// One incremental change to a subscription's result set.
///
/// Deltas compose: applying a subscription's deltas in emission order to any
/// earlier snapshot of its (sorted) result reproduces the current result.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionDelta {
    /// The subscription the delta belongs to.
    pub subscription: SubscriptionId,
    /// Transitions that entered the result, sorted ascending.
    pub entered: Vec<TransitionId>,
    /// Transitions that left the result, sorted ascending.
    pub left: Vec<TransitionId>,
    /// Why the result changed.
    pub reason: DeltaReason,
}

impl SubscriptionDelta {
    /// Applies the delta to a sorted result snapshot, keeping it sorted.
    pub fn apply(&self, result: &mut Vec<TransitionId>) {
        result.retain(|t| self.left.binary_search(t).is_err());
        for t in &self.entered {
            if let Err(pos) = result.binary_search(t) {
                result.insert(pos, *t);
            }
        }
    }
}

/// One standing query and its maintained state.
pub(crate) struct Subscription {
    pub(crate) query: RknntQuery,
    /// Current result, sorted ascending.
    pub(crate) result: Vec<TransitionId>,
    /// Invalidation evidence, recorded when the result was last (re)computed
    /// and kept current through in-place maintenance.
    pub(crate) region: EntryRegion,
    /// Set when an update could have changed the result; cleared by
    /// re-execution at the end of the update batch.
    dirty: bool,
}

/// The store-facing view of one applied [`crate::StoreUpdate`], used to
/// classify subscriptions. Built by `apply_updates` *after* the store
/// mutation succeeded, so classification always runs against post-update
/// stores.
pub(crate) enum UpdateEffect<'a> {
    /// A transition with these endpoints was inserted.
    TransitionInsert {
        origin: &'a Point,
        destination: &'a Point,
    },
    /// The transition `id` was removed.
    TransitionRemove { id: TransitionId },
    /// A route with this MBR was inserted.
    RouteInsert { mbr: &'a Rect },
    /// The route `id`, whose points were `points`, was removed.
    RouteRemove { id: RouteId, points: &'a [Point] },
}

/// The registry of live subscriptions. Iteration is in id order
/// (`BTreeMap`), so classification, re-execution and delta emission are
/// fully deterministic.
#[derive(Default)]
pub(crate) struct SubscriptionRegistry {
    subs: BTreeMap<u64, Subscription>,
    next_id: u64,
    /// Deltas produced outside `apply_updates` (wholesale store swaps);
    /// drained into the next `apply_updates` call's stats or by
    /// [`crate::QueryService::take_subscription_deltas`].
    pending: Vec<SubscriptionDelta>,
}

impl SubscriptionRegistry {
    pub(crate) fn insert(
        &mut self,
        query: RknntQuery,
        result: Vec<TransitionId>,
        region: EntryRegion,
    ) -> SubscriptionId {
        let id = self.next_id;
        self.next_id += 1;
        self.subs.insert(
            id,
            Subscription {
                query,
                result,
                region,
                dirty: false,
            },
        );
        SubscriptionId(id)
    }

    pub(crate) fn remove(&mut self, id: SubscriptionId) -> bool {
        self.subs.remove(&id.0).is_some()
    }

    pub(crate) fn len(&self) -> usize {
        self.subs.len()
    }

    pub(crate) fn ids(&self) -> Vec<SubscriptionId> {
        self.subs.keys().map(|id| SubscriptionId(*id)).collect()
    }

    pub(crate) fn get(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.subs.get(&id.0)
    }

    /// Ids of subscriptions currently marked dirty, in id order.
    pub(crate) fn dirty_ids(&self) -> Vec<u64> {
        self.subs
            .iter()
            .filter(|(_, sub)| sub.dirty)
            .map(|(id, _)| *id)
            .collect()
    }

    pub(crate) fn query_of(&self, id: u64) -> &RknntQuery {
        &self.subs[&id].query
    }

    /// Marks every subscription dirty (wholesale store replacement).
    pub(crate) fn mark_all_dirty(&mut self) {
        for sub in self.subs.values_mut() {
            sub.dirty = true;
        }
    }

    pub(crate) fn take_pending(&mut self) -> Vec<SubscriptionDelta> {
        std::mem::take(&mut self.pending)
    }

    pub(crate) fn push_pending(&mut self, deltas: Vec<SubscriptionDelta>) {
        self.pending.extend(deltas);
    }

    /// Classifies every live subscription against one applied update:
    /// unaffected (skip), certified stable (keep; expiry of a member is
    /// applied in place and emits a delta), or dirty (queued for batch
    /// re-execution). Subscriptions already dirty are skipped outright —
    /// they will be re-executed against the final stores anyway.
    pub(crate) fn classify_update(
        &mut self,
        effect: &UpdateEffect<'_>,
        routes: &RouteStore,
        transitions: &TransitionStore,
        metrics: &ServiceMetrics,
        deltas: &mut Vec<SubscriptionDelta>,
    ) {
        self.classify_update_with(
            effect,
            routes,
            metrics,
            deltas,
            |sub, removed, points| {
                let mut budget = SUB_REMOVAL_BUDGET;
                sub.region.survives_route_remove(
                    routes,
                    transitions,
                    &sub.result,
                    removed,
                    points,
                    &mut budget,
                )
            },
            |sub| rebuilt_region(sub, transitions),
        )
    }

    /// [`SubscriptionRegistry::classify_update`] with the two
    /// store-dependent steps abstracted out: the route-removal survival
    /// certificate and the post-expiry region rebuild. The sharded router
    /// supplies closures that AND per-shard certificates and resolve
    /// transition endpoints through its routing directory; the single-store
    /// service delegates with the plain [`TransitionStore`] versions. Both
    /// closures must be *sound* (a `false` survival / conservative region is
    /// always safe), which keeps sharded and unsharded delta streams
    /// byte-identical: a spuriously dirty subscription re-executes to an
    /// unchanged result and emits nothing.
    pub(crate) fn classify_update_with<R, B>(
        &mut self,
        effect: &UpdateEffect<'_>,
        routes: &RouteStore,
        metrics: &ServiceMetrics,
        deltas: &mut Vec<SubscriptionDelta>,
        mut route_remove_survives: R,
        mut rebuild_region: B,
    ) where
        R: FnMut(&Subscription, RouteId, &[Point]) -> bool,
        B: FnMut(&Subscription) -> EntryRegion,
    {
        let (mut unaffected, mut stable, mut dirty) = (0u64, 0u64, 0u64);
        for (id, sub) in self.subs.iter_mut() {
            if sub.dirty {
                continue;
            }
            if sub.query.is_degenerate() {
                // Constant empty result, immune to churn.
                unaffected += 1;
                continue;
            }
            match effect {
                UpdateEffect::TransitionInsert {
                    origin,
                    destination,
                } => {
                    if sub
                        .region
                        .survives_transition_insert(routes, origin, destination)
                    {
                        stable += 1;
                    } else {
                        sub.dirty = true;
                        dirty += 1;
                    }
                }
                UpdateEffect::TransitionRemove { id: expired } => {
                    match sub.result.binary_search(expired) {
                        Err(_) => unaffected += 1,
                        Ok(pos) => {
                            // Exact in-place maintenance: qualification of
                            // every other transition depends only on routes,
                            // so the result loses exactly this member.
                            sub.result.remove(pos);
                            let region = rebuild_region(&*sub);
                            sub.region = region;
                            stable += 1;
                            deltas.push(SubscriptionDelta {
                                subscription: SubscriptionId(*id),
                                entered: Vec::new(),
                                left: vec![*expired],
                                reason: DeltaReason::TransitionExpired,
                            });
                        }
                    }
                }
                UpdateEffect::RouteInsert { mbr } => {
                    if sub.region.survives_route_insert(mbr) {
                        stable += 1;
                    } else {
                        sub.dirty = true;
                        dirty += 1;
                    }
                }
                UpdateEffect::RouteRemove {
                    id: removed,
                    points,
                } => {
                    if route_remove_survives(&*sub, *removed, points) {
                        stable += 1;
                    } else {
                        sub.dirty = true;
                        dirty += 1;
                    }
                }
            }
        }
        metrics.subs_unaffected.add(unaffected);
        metrics.subs_stable.add(stable);
        metrics.subs_dirty.add(dirty);
        if unaffected + stable + dirty > 0 {
            metrics.record_event(EventKind::SubscriptionsClassified {
                unaffected: u32::try_from(unaffected).unwrap_or(u32::MAX),
                stable: u32::try_from(stable).unwrap_or(u32::MAX),
                dirty: u32::try_from(dirty).unwrap_or(u32::MAX),
            });
        }
    }

    /// Installs a re-executed result, clearing the dirty flag and emitting
    /// the diff against the previous result as a delta (none when the
    /// re-execution confirmed the old result).
    pub(crate) fn finish_reexecution(
        &mut self,
        id: u64,
        new_result: Vec<TransitionId>,
        region: EntryRegion,
        metrics: &ServiceMetrics,
        deltas: &mut Vec<SubscriptionDelta>,
    ) {
        let sub = self.subs.get_mut(&id).expect("re-executed sub must exist");
        debug_assert!(sub.dirty, "only dirty subscriptions are re-executed");
        let entered: Vec<TransitionId> = new_result
            .iter()
            .filter(|t| sub.result.binary_search(t).is_err())
            .copied()
            .collect();
        let left: Vec<TransitionId> = sub
            .result
            .iter()
            .filter(|t| new_result.binary_search(t).is_err())
            .copied()
            .collect();
        sub.result = new_result;
        sub.region = region;
        sub.dirty = false;
        metrics.subs_reexecuted.inc();
        metrics.record_event(EventKind::SubscriptionReexecuted {
            id,
            entered: u32::try_from(entered.len()).unwrap_or(u32::MAX),
            left: u32::try_from(left.len()).unwrap_or(u32::MAX),
        });
        if !entered.is_empty() || !left.is_empty() {
            deltas.push(SubscriptionDelta {
                subscription: SubscriptionId(id),
                entered,
                left,
                reason: DeltaReason::Reexecuted,
            });
        }
    }
}

/// Rebuilds a subscription's region after in-place result maintenance,
/// reusing its recorded footprint (transition churn never changes the
/// filter construction, which depends only on routes).
fn rebuilt_region(sub: &Subscription, transitions: &TransitionStore) -> EntryRegion {
    let value = RknntResult {
        transitions: sub.result.clone(),
        ..RknntResult::default()
    };
    EntryRegion::record(
        &sub.query,
        &value,
        sub.region.footprint.clone(),
        transitions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u32) -> TransitionId {
        TransitionId(raw)
    }

    #[test]
    fn delta_apply_composes_enter_and_leave() {
        let mut result = vec![id(1), id(4), id(9)];
        let delta = SubscriptionDelta {
            subscription: SubscriptionId(0),
            entered: vec![id(2), id(7)],
            left: vec![id(4)],
            reason: DeltaReason::Reexecuted,
        };
        delta.apply(&mut result);
        assert_eq!(result, vec![id(1), id(2), id(7), id(9)]);
        // Applying an expiry delta removes exactly the member.
        let expiry = SubscriptionDelta {
            subscription: SubscriptionId(0),
            entered: Vec::new(),
            left: vec![id(7)],
            reason: DeltaReason::TransitionExpired,
        };
        expiry.apply(&mut result);
        assert_eq!(result, vec![id(1), id(2), id(9)]);
        // Idempotent against ids already present/absent.
        expiry.apply(&mut result);
        assert_eq!(result, vec![id(1), id(2), id(9)]);
    }

    #[test]
    fn registry_assigns_fresh_ids_and_iterates_in_order() {
        let mut registry = SubscriptionRegistry::default();
        let query = RknntQuery::exists(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 1);
        let a = registry.insert(query.clone(), Vec::new(), EntryRegion::conservative(&query));
        let b = registry.insert(query.clone(), Vec::new(), EntryRegion::conservative(&query));
        assert_ne!(a, b);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.ids(), vec![a, b]);
        assert!(registry.remove(a));
        assert!(!registry.remove(a), "double unsubscribe must fail");
        assert_eq!(registry.len(), 1);
        // Ids are never reused.
        let c = registry.insert(query.clone(), Vec::new(), EntryRegion::conservative(&query));
        assert!(c.raw() > b.raw());
        assert_eq!(format!("{c}"), format!("sub#{}", c.raw()));
    }
}
