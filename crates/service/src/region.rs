//! Per-entry invalidation regions for the result cache.
//!
//! Every cached result carries an [`EntryRegion`]: the spatial evidence
//! needed to decide, for each incremental store update, whether the cached
//! answer could possibly change. The decision rules are *sound* — an entry
//! is only retained when the update provably cannot alter its result — and
//! lean on two facts of this workspace:
//!
//! 1. All distances are the vertex distance of Definition 3, so the
//!    [`FilterFootprint`] witness certificate exactly mirrors the strict
//!    comparisons the verification phase performs (see
//!    `rknnt_core::footprint`).
//! 2. Route *insertion* only adds "strictly closer" witnesses, so results
//!    can only shrink; route *removal* only removes witnesses, so results
//!    can only grow. Transition updates touch exactly one transition.
//!
//! Per update kind:
//!
//! * **Transition insert `(o, d)`** — the result gains the new transition
//!   only if an endpoint qualifies. Keep the entry when the footprint
//!   certifies the endpoints covered by ≥ k still-live routes (`∃`: both
//!   endpoints; `∀`: either endpoint suffices, since both must qualify).
//! * **Transition expiry** — affects exactly the entries whose result
//!   contains the expired id (qualification of other transitions depends
//!   only on routes). Exact membership test, no geometry needed.
//! * **Route insert** — can only evict transitions *from* results, which
//!   requires the new route to come strictly closer than the query to some
//!   recorded result endpoint. Keep the entry when the route's MBR stays at
//!   least [`EntryRegion::result_reach`] away from the recorded
//!   result-endpoint MBR.
//! * **Route removal** — results can grow anywhere the removed route was a
//!   load-bearing witness, which no bounded record rules out *a priori* (with
//!   k = 1 and a single far-away route, its removal changes answers
//!   arbitrarily far from the query). The universe of points that can enter
//!   a result is finite, though — the live transition endpoints — so
//!   [`EntryRegion::survives_route_remove`] walks the TR-tree, prunes every
//!   node provably outside the removed route's dominance region over the
//!   query, and re-certifies the few endpoints inside it against the
//!   footprint with the removed route excluded. Entries that cannot be
//!   certified within a work budget are evicted; when the budget runs out
//!   entirely the service falls back to the full cache drop.

use rknnt_core::{FilterFootprint, RknntQuery, RknntResult, Semantics};
use rknnt_geo::{point_route_distance_sq, Point, Rect};
use rknnt_index::{RouteId, RouteStore, TransitionId, TransitionStore};
use std::sync::Arc;

/// The invalidation evidence recorded with one cached result; see the
/// module documentation for the retention rules.
#[derive(Debug, Clone)]
pub struct EntryRegion {
    /// The query route (vertex list) the entry answers.
    pub query_points: Vec<Point>,
    /// The query's `k`.
    pub k: usize,
    /// The query's semantics.
    pub semantics: Semantics,
    /// Filter footprint reported by the engine, when one was built
    /// (Filter–Refine / Voronoi groups). `None` is handled conservatively:
    /// transition inserts always evict the entry.
    pub footprint: Option<Arc<FilterFootprint>>,
    /// MBR over both endpoints of every transition in the cached result
    /// ([`Rect::empty`] for an empty result).
    pub result_rect: Rect,
    /// Upper bound on the vertex distance from any point of
    /// [`EntryRegion::result_rect`] to the query route (0 for an empty
    /// result).
    pub result_reach: f64,
}

impl EntryRegion {
    /// A region with no footprint and no recorded result geometry: sound
    /// for any query, maximally conservative for transition inserts.
    pub fn conservative(query: &RknntQuery) -> Self {
        EntryRegion {
            query_points: query.route.clone(),
            k: query.k,
            semantics: query.semantics,
            footprint: None,
            result_rect: Rect::empty(),
            result_reach: 0.0,
        }
    }

    /// Builds the region for a freshly computed result, recording the
    /// result-endpoint MBR and its reach bound from the live stores.
    pub fn record(
        query: &RknntQuery,
        result: &RknntResult,
        footprint: Option<Arc<FilterFootprint>>,
        transitions: &rknnt_index::TransitionStore,
    ) -> Self {
        Self::record_with(query, result, footprint, |id| {
            transitions.get(id).map(|t| (t.origin, t.destination))
        })
    }

    /// [`EntryRegion::record`] over an arbitrary transition-endpoint lookup
    /// instead of a single [`TransitionStore`] — the sharded router records
    /// regions for results whose transitions live across many shard-local
    /// stores, resolving each global id through its routing directory.
    pub fn record_with<F>(
        query: &RknntQuery,
        result: &RknntResult,
        footprint: Option<Arc<FilterFootprint>>,
        lookup: F,
    ) -> Self
    where
        F: Fn(TransitionId) -> Option<(Point, Point)>,
    {
        let mut result_rect = Rect::empty();
        for id in &result.transitions {
            if let Some((origin, destination)) = lookup(*id) {
                result_rect.expand_to_point(&origin);
                result_rect.expand_to_point(&destination);
            }
        }
        // Upper bound on dist(p, Q) over p in result_rect: for the query
        // vertex q minimising it, every p is within max_dist(rect, q).
        let result_reach = if result_rect.is_empty() {
            0.0
        } else {
            query
                .route
                .iter()
                .map(|q| result_rect.max_dist(q))
                .fold(f64::INFINITY, f64::min)
        };
        EntryRegion {
            query_points: query.route.clone(),
            k: query.k,
            semantics: query.semantics,
            footprint,
            result_rect,
            result_reach,
        }
    }

    /// Whether the entry's query is degenerate (its result is the constant
    /// empty set, immune to store churn).
    fn is_degenerate(&self) -> bool {
        self.k == 0 || self.query_points.is_empty()
    }

    /// Whether the cached result provably survives inserting a transition
    /// with the given endpoints.
    pub fn survives_transition_insert(
        &self,
        routes: &RouteStore,
        origin: &Point,
        destination: &Point,
    ) -> bool {
        if self.is_degenerate() {
            return true;
        }
        let Some(footprint) = &self.footprint else {
            return false;
        };
        let live = |r| routes.route(r).is_some();
        // One covering buffer for both endpoint certificates.
        let mut covering = Vec::new();
        let mut covered = |u: &Point| {
            footprint.covers_point_with(&self.query_points, u, self.k, live, &mut covering)
        };
        match self.semantics {
            // ∃: the transition qualifies if either endpoint does, so both
            // must be certified disqualified.
            Semantics::Exists => covered(origin) && covered(destination),
            // ∀: both endpoints must qualify, so one certificate suffices.
            Semantics::ForAll => covered(origin) || covered(destination),
        }
    }

    /// Whether the cached result provably survives removing the transition
    /// `id` — it does iff the result (a sorted id list) does not contain it.
    pub fn survives_transition_remove(&self, result: &[TransitionId], id: TransitionId) -> bool {
        result.binary_search(&id).is_err()
    }

    /// Whether the cached result provably survives inserting a route whose
    /// points have the given MBR: results only shrink on route insertion,
    /// and they shrink only if the new route comes strictly closer than the
    /// query to a recorded result endpoint — impossible when the route stays
    /// `result_reach` away from the result-endpoint MBR.
    pub fn survives_route_insert(&self, route_mbr: &Rect) -> bool {
        if self.result_rect.is_empty() {
            return true;
        }
        self.result_rect.min_dist_rect(route_mbr) >= self.result_reach
    }

    /// Whether the cached result (`result`, sorted ids) provably survives
    /// removing the route `removed`, whose points were `removed_points`.
    ///
    /// Soundness argument: removing a route only *removes* closer-route
    /// witnesses, so per-endpoint closer-counts only decrease and
    /// qualification can only flip from "no" to "yes" — results only grow,
    /// and every transition already in the result stays. A transition
    /// *enters* only if some live endpoint `u` flips, which requires the
    /// removed route to have been strictly closer to `u` than the query is
    /// (otherwise `u`'s count is unchanged) *and* `u`'s remaining count to
    /// drop below `k`. This method therefore walks the TR-tree over the
    /// (finite) live endpoints, prunes every node where the removed route is
    /// provably never strictly closer than the query, and for each surviving
    /// endpoint not already in the result demands the footprint certify `k`
    /// still-live routes — the removed one excluded — strictly closer than
    /// the query. If every such endpoint is certified, no qualification flips
    /// in either direction and the result is unchanged under both semantics.
    ///
    /// `budget` bounds the work (units: nodes visited + endpoints tested +
    /// witnesses scanned); it is decremented in place and the method returns
    /// `false` (evict — always sound) once it reaches zero, letting the
    /// caller share one budget across many entries and fall back to a full
    /// drop when the scan is not paying for itself.
    pub fn survives_route_remove(
        &self,
        routes: &RouteStore,
        transitions: &TransitionStore,
        result: &[TransitionId],
        removed: RouteId,
        removed_points: &[Point],
        budget: &mut usize,
    ) -> bool {
        if self.is_degenerate() {
            return true;
        }
        let Some(footprint) = &self.footprint else {
            return false;
        };
        if removed_points.is_empty() {
            // A route with no points is infinitely far from everything and
            // can never have been a closer-route witness.
            return true;
        }
        let tree = transitions.rtree();
        let Some(root) = tree.root() else {
            return true;
        };
        let live = |r: RouteId| r != removed && routes.route(r).is_some();
        // NodeId stack + `for_each_child` instead of a `Vec<NodeRef>` per
        // internal node, and one covering buffer reused across every
        // endpoint certificate: the scan allocates O(1) per entry checked.
        let mut covering: Vec<RouteId> = Vec::new();
        let mut stack = vec![root.id()];
        while let Some(id) = stack.pop() {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            let Some(node) = tree.node_ref(id) else {
                continue;
            };
            let mbr = node.mbr();
            // Lower bound on dist²(u, removed route) over all u in the node…
            let removed_lb = removed_points
                .iter()
                .map(|p| mbr.min_dist_sq(p))
                .fold(f64::INFINITY, f64::min);
            // …and upper bound on dist²(u, Q): every u is within
            // max_dist(mbr, q) of the query vertex q minimising it.
            let query_ub = self
                .query_points
                .iter()
                .map(|q| mbr.max_dist_sq(q))
                .fold(f64::INFINITY, f64::min);
            if removed_lb >= query_ub {
                // The removed route is never strictly closer than the query
                // anywhere under this node: no endpoint here can flip.
                continue;
            }
            if !node.is_leaf() {
                node.for_each_child(|child| stack.push(child.id()));
                continue;
            }
            for entry in node.entries() {
                if *budget == 0 {
                    return false;
                }
                *budget -= 1;
                let u = &entry.point;
                let query_sq = point_route_distance_sq(u, &self.query_points);
                if point_route_distance_sq(u, removed_points) >= query_sq {
                    continue; // the removed route was not strictly closer
                }
                if result.binary_search(&entry.data.transition).is_ok() {
                    continue; // already in the result; results only grow
                }
                *budget = budget.saturating_sub(footprint.witnesses.len());
                if !footprint.covers_point_with(&self.query_points, u, self.k, live, &mut covering)
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_index::{TransitionId, TransitionStore};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn entry_with_result(result_ids: &[u32]) -> (EntryRegion, RknntResult) {
        let query = RknntQuery::exists(vec![p(0.0, 0.0), p(10.0, 0.0)], 2);
        let mut transitions = TransitionStore::default();
        let a = transitions.insert(p(1.0, 1.0), p(9.0, 1.0)).unwrap();
        let b = transitions.insert(p(2.0, 2.0), p(8.0, 2.0)).unwrap();
        let mut result = RknntResult::default();
        for id in result_ids {
            assert!([a, b].contains(&TransitionId(*id)));
            result.transitions.push(TransitionId(*id));
        }
        result.transitions.sort_unstable();
        let region = EntryRegion::record(&query, &result, None, &transitions);
        (region, result)
    }

    #[test]
    fn expiry_is_an_exact_membership_test() {
        let (region, result) = entry_with_result(&[0]);
        assert!(!region.survives_transition_remove(&result.transitions, TransitionId(0)));
        assert!(region.survives_transition_remove(&result.transitions, TransitionId(1)));
        assert!(region.survives_transition_remove(&result.transitions, TransitionId(999)));
    }

    /// A ladder world for the route-removal certificate: horizontal routes
    /// at y = 0, 10, …, 70 and a query along y = 35.
    fn ladder_world() -> (RouteStore, TransitionStore, RknntQuery) {
        let mut routes = RouteStore::default();
        for i in 0..8 {
            let y = i as f64 * 10.0;
            routes
                .insert_route((0..8).map(|j| p(j as f64 * 10.0, y)).collect())
                .unwrap();
        }
        let query = RknntQuery::exists(vec![p(5.0, 35.0), p(35.0, 35.0), p(65.0, 35.0)], 2);
        (routes, TransitionStore::default(), query)
    }

    fn recorded_region(
        routes: &RouteStore,
        transitions: &TransitionStore,
        query: &RknntQuery,
        result: &[TransitionId],
    ) -> EntryRegion {
        let footprint = Arc::new(FilterFootprint::compute(routes, &query.route, query.k));
        let value = RknntResult {
            transitions: result.to_vec(),
            ..RknntResult::default()
        };
        EntryRegion::record(query, &value, Some(footprint), transitions)
    }

    #[test]
    fn route_remove_far_from_endpoints_is_survived() {
        let (mut routes, mut transitions, query) = ladder_world();
        // One endpoint pair near the query; the removed route is the ladder
        // top (y = 70), far from both the query and every endpoint, and the
        // middle rungs keep every endpoint covered without it.
        let near = transitions.insert(p(34.0, 36.0), p(36.0, 34.0)).unwrap();
        let region = recorded_region(&routes, &transitions, &query, &[near]);
        let removed = RouteId(7);
        let removed_points: Vec<Point> = routes.route_points(removed).to_vec();
        assert!(routes.remove_route(removed));
        let mut budget = 100_000usize;
        assert!(
            region.survives_route_remove(
                &routes,
                &transitions,
                &[near],
                removed,
                &removed_points,
                &mut budget,
            ),
            "removing a far rung is certified harmless"
        );
        assert!(budget > 0);
    }

    #[test]
    fn route_remove_uncovered_endpoint_or_no_budget_evicts() {
        let (mut routes, mut transitions, query) = ladder_world();
        // An endpoint at (30, 25): exactly two routes — the rungs at y = 30
        // and y = 20, both through their (30, y) stops at distance² 25 — are
        // strictly closer than the query (distance² 125), so with k = 2 the
        // transition does not qualify and the true result is empty. Removing
        // the y = 30 rung drops the count to 1 and the transition *enters*
        // the result, so no sound certificate can keep the entry.
        let at_risk = transitions.insert(p(30.0, 25.0), p(500.0, 500.0)).unwrap();
        assert!(transitions.get(at_risk).is_some());
        let region = recorded_region(&routes, &transitions, &query, &[]);
        let removed = RouteId(3); // the y = 30 rung
        let removed_points: Vec<Point> = routes.route_points(removed).to_vec();
        assert!(routes.remove_route(removed));
        let mut budget = 100_000usize;
        assert!(
            !region.survives_route_remove(
                &routes,
                &transitions,
                &[],
                removed,
                &removed_points,
                &mut budget,
            ),
            "an endpoint whose disqualification depended on the removed \
             route must evict the entry"
        );
        // A zero budget always evicts.
        let mut empty_budget = 0usize;
        assert!(!region.survives_route_remove(
            &routes,
            &transitions,
            &[],
            removed,
            &removed_points,
            &mut empty_budget,
        ));
        // A missing footprint is conservative.
        let no_footprint = EntryRegion::conservative(&query);
        let mut budget = 100_000usize;
        assert!(!no_footprint.survives_route_remove(
            &routes,
            &transitions,
            &[],
            removed,
            &removed_points,
            &mut budget,
        ));
        // Degenerate queries survive everything.
        let degenerate = EntryRegion::conservative(&RknntQuery::exists(vec![], 2));
        assert!(degenerate.survives_route_remove(
            &routes,
            &transitions,
            &[],
            removed,
            &removed_points,
            &mut 0,
        ));
    }

    #[test]
    fn route_insert_far_from_results_is_survived() {
        let (region, _) = entry_with_result(&[0, 1]);
        assert!(region.result_reach > 0.0);
        // A route far away cannot be closer than the query to any result
        // endpoint.
        let far = Rect::new(p(1_000.0, 1_000.0), p(1_100.0, 1_100.0));
        assert!(region.survives_route_insert(&far));
        // A route on top of the result endpoints must evict.
        let near = Rect::new(p(1.0, 1.0), p(9.0, 2.0));
        assert!(!region.survives_route_insert(&near));
        // Empty results survive any route insertion (results only shrink).
        let (empty_region, _) = entry_with_result(&[]);
        assert!(empty_region.survives_route_insert(&near));
    }

    #[test]
    fn missing_footprint_is_conservative_for_transition_inserts() {
        let (region, _) = entry_with_result(&[0]);
        let routes = RouteStore::default();
        assert!(!region.survives_transition_insert(&routes, &p(1e6, 1e6), &p(1e6, 1e6)));
    }

    #[test]
    fn degenerate_entries_survive_everything() {
        let degenerate = EntryRegion::conservative(&RknntQuery::exists(vec![], 3));
        let routes = RouteStore::default();
        assert!(degenerate.survives_transition_insert(&routes, &p(0.0, 0.0), &p(1.0, 1.0)));
        let k0 = EntryRegion::conservative(&RknntQuery::exists(vec![p(0.0, 0.0)], 0));
        assert!(k0.survives_transition_insert(&routes, &p(0.0, 0.0), &p(1.0, 1.0)));
    }
}
